"""Sweep-scheduler benchmark: fused vs interleaved vs task-by-task.

Runs a mixed d=3 sweep — adaptive points whose waves drain at very
different rates plus one fixed-budget point — through the engine three
times with ``max_workers=4``:

* the **task-by-task path**: one ``run_ler`` per task, which is what
  ``run_ler_many`` did before the sweep scheduler (a draining adaptive wave
  leaves most of the pool idle until the task finishes),
* the **interleaved path**: one ``run_sweep`` over all tasks with fusion
  disabled (``fuse_tasks=1``), where every pending task's shards share the
  pool but each shard is its own dispatch, and
* the **fused path**: the same ``run_sweep`` with shard-group fusion on
  (the defaults), where compatible shards of different tasks ride one
  worker invocation (:class:`repro.stabilizer.packed.FusedProgram`).

All paths execute the *identical* shard set (same per-task child seeds,
same wave plans), so the measured differences are pure scheduling and
dispatch: the ``LerResult``s are asserted bit-identical every run, on any
host.  The fused path is timed *first*, so residual worker-cache warmth
can only bias the comparison against it.

The >= 1.3x interleaving gate — the sweep-scheduler PR's acceptance
criterion — only fires on hosts with >= 4 CPUs: on fewer cores the paths
serialise onto the same silicon and the scheduling win shrinks to
pool-overhead noise by construction.  (The fused path's own >= 2x gate
lives in ``test_fused_sweep.py``.)  The shots/sec series always lands in
``BENCH_sweep_scheduler.json`` via the BENCH artifact, so the trajectory
is on record either way.
"""

import os
import time

from repro.core.adaptation import adapt_patch
from repro.engine import Engine, EngineConfig, LerPointTask, ShotPolicy, SweepItem
from repro.engine.rng import child_stream
from repro.noise.fabrication import DefectSet
from repro.surface_code.layout import RotatedSurfaceCodeLayout

from conftest import print_series, write_bench_json

_WORKERS = 4
_SHARD_SIZE = 512
# Adaptive points: the low-p point drains its whole budget in geometrically
# growing waves while the high-p points stop after a wave or two of one to
# two shards each — waves that, run task-by-task, leave most of a 4-worker
# pool idle.  That asymmetry is the utilisation cliff interleaving fixes.
_ADAPTIVE_PS = (0.004, 0.010, 0.014, 0.018, 0.022, 0.026)
_ADAPTIVE_POLICY = ShotPolicy.adaptive(8192, min_shots=512,
                                       target_failures=50)
_FIXED_P = 0.006
_FIXED_POLICY = ShotPolicy.fixed(4096)
_GATE_SPEEDUP = 1.3


def _tasks():
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    tasks = [LerPointTask.from_patch("memory", patch, p)
             for p in _ADAPTIVE_PS]
    tasks.append(LerPointTask.from_patch("memory", patch, _FIXED_P))
    return tasks


def _items(tasks, seed):
    """The exact (task, policy, child seed) cells all paths execute."""
    policies = [_ADAPTIVE_POLICY] * len(_ADAPTIVE_PS) + [_FIXED_POLICY]
    return [SweepItem(task, policy, child_stream(seed, i))
            for i, (task, policy) in enumerate(zip(tasks, policies))]


def test_sweep_scheduler_throughput(benchmark, benchmark_seed):
    fused_engine = Engine(EngineConfig(max_workers=_WORKERS,
                                       shard_size=_SHARD_SIZE))
    plain_engine = Engine(EngineConfig(max_workers=_WORKERS,
                                       shard_size=_SHARD_SIZE,
                                       fuse_tasks=1))
    tasks = _tasks()
    items = _items(tasks, benchmark_seed)
    rows = []
    measured = {}
    fusion = {}

    def run():
        # Warm every worker's task contexts so no timed path pays
        # circuit/DEM/decoder builds (4 shards per task fan across the pool,
        # so each worker sees most tasks at least once).  Both engines share
        # one pool width, so warming either warms the silicon; warm both so
        # each engine's own backend processes exist before timing.
        fused_engine.run_ler_many(tasks, shots=4 * _SHARD_SIZE,
                                  seed=benchmark_seed + 1)
        plain_engine.run_ler_many(tasks, shots=4 * _SHARD_SIZE,
                                  seed=benchmark_seed + 1)

        start = time.perf_counter()
        fused = fused_engine.run_sweep(items)
        t_fused = time.perf_counter() - start
        fusion.update(fused_engine.last_fusion.payload())

        start = time.perf_counter()
        interleaved = plain_engine.run_sweep(items)
        t_interleaved = time.perf_counter() - start

        start = time.perf_counter()
        taskwise = [plain_engine.run_ler(it.task, policy=it.policy,
                                         seed=it.seed)
                    for it in items]
        t_taskwise = time.perf_counter() - start

        # Scheduling and fusion must be invisible in the numbers, everywhere.
        def key(rs):
            return [(r.failures, r.shots, r.num_shards) for r in rs]

        assert key(fused) == key(interleaved) == key(taskwise)

        shots = sum(r.shots for r in fused)
        measured["speedup"] = t_taskwise / t_interleaved
        measured["fused_speedup"] = t_taskwise / t_fused
        measured["shots"] = shots
        for label, seconds in (("task-by-task", t_taskwise),
                               ("interleaved", t_interleaved),
                               ("fused", t_fused)):
            rate = shots / max(seconds, 1e-9)
            measured[label] = (seconds, rate)
            rows.append((label,
                         f"{shots} shots in {seconds:6.2f}s "
                         f"= {rate:8.0f} shots/s"))
        rows.append(("interleave speedup",
                     f"{measured['speedup']:4.2f}x "
                     f"(gate {_GATE_SPEEDUP}x on >=4 CPUs)"))
        rows.append(("fused speedup", f"{measured['fused_speedup']:4.2f}x "
                     "(gated in test_fused_sweep)"))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(f"Sweep scheduler ({len(items)} tasks, "
                 f"workers={_WORKERS})", rows)

    cpus = os.cpu_count() or 1
    gated = cpus >= _WORKERS
    write_bench_json(
        "sweep_scheduler",
        [{
            "label": label,
            "shots": measured["shots"],
            "seconds": measured[label][0],
            "shots_per_sec": measured[label][1],
        } for label in ("task-by-task", "interleaved", "fused")],
        speedup=measured["speedup"],
        fused_speedup=measured["fused_speedup"],
        fusion=fusion,
        workers=_WORKERS,
        shard_size=_SHARD_SIZE,
        tasks=len(items),
        cpu_count=cpus,
        gate={"min_speedup": _GATE_SPEEDUP, "enforced": gated},
    )

    # Acceptance criterion of the sweep-scheduler PR.  Pool scheduling can
    # only win wall-clock when the workers actually have separate cores.
    if gated:
        assert measured["speedup"] >= _GATE_SPEEDUP, measured
