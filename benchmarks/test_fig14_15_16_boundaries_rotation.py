"""Benchmarks for Figs. 14-16: lattice-surgery boundaries and chiplet rotation.

* Fig. 14: a concrete example where two individually-acceptable patches lose
  seam distance when merged because their boundary deformations align.
* Fig. 15: yield under boundary standards 1-4 - the strictest standard
  (no deformation on any edge) costs the most yield.
* Fig. 16: the freedom to swap data/syndrome roles (rotate the chiplet)
  improves yield when qubit defects are present.
"""

from repro.experiments.paper import (
    figure14_merge_example,
    figure15_boundary,
    figure16_rotation,
)

from conftest import print_series


def test_fig14_merge_distance_drop(benchmark):
    result = benchmark.pedantic(figure14_merge_example, kwargs={"size": 9},
                                rounds=1, iterations=1)
    print_series("Fig. 14 - merged seam distance", result.items())
    # Each patch individually keeps a high distance...
    assert result["patch_a_distance"] >= result["merged_seam_distance"]
    # ...but the merged seam is strictly shorter than an intact seam.
    assert result["merged_seam_distance"] < result["intact_seam_distance"]


def test_fig15_boundary_standards(benchmark, benchmark_seed):
    def run():
        return figure15_boundary(
            chiplet_size=9,
            target_distance=7,
            defect_rates=(0.005, 0.01),
            samples=80,
            seed=benchmark_seed,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 15 - yield under boundary standards", result.items())

    def yields(name):
        return dict(result[name])

    for rate in (0.005, 0.01):
        unrestricted = yields("no requirement")[rate]
        strictest = yields("standard 1")[rate]
        relaxed = yields("standard 4")[rate]
        # Standard 1 is the most restrictive; standard 4 sits between it and
        # the unrestricted yield.
        assert strictest <= relaxed + 0.05
        assert relaxed <= unrestricted + 0.05


def test_fig16_rotation_freedom(benchmark, benchmark_seed):
    def run():
        return figure16_rotation(
            chiplet_sizes=(7,),
            target_distance=5,
            defect_rates=(0.005, 0.01),
            samples=100,
            seed=benchmark_seed,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 16 - yield with / without rotation", result.items())
    plain = dict(result["l=7"])
    rotated = dict(result["l=7 (rotation)"])
    for rate in (0.005, 0.01):
        # Rotation can only help (up to Monte-Carlo noise).
        assert rotated[rate] >= plain[rate] - 0.05
