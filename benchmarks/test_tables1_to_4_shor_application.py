"""Benchmarks for Tables 1-4: the Shor-2048 application case study.

Tables 1-2 estimate the fabrication cost of a 226 x 63 grid of distance-27
patches at defect rates of 0.1% and 0.3%; Tables 3-4 estimate the resulting
application fidelity.  The defect-intolerant baseline's yield is analytic, so
it is reproduced at full scale; the super-stabilizer yield and distance
distribution are Monte-Carlo estimated at reduced sample counts (and at a
reduced chiplet size by default - pass ``chiplet_size=33`` / ``39`` and more
samples to run the paper-scale version; see EXPERIMENTS.md).
"""

import pytest

from repro.chiplet.application import ShorWorkload, application_fidelity
from repro.experiments.paper import table1_and_2_resources, table3_and_4_fidelity

from conftest import print_series

#: reduced-scale workload used by default: same machine shape, smaller target
#: distance so that the chiplet Monte-Carlo stays laptop-sized.
SCALED_WORKLOAD = ShorWorkload(target_distance=13, physical_error_rate=1e-3)


def _rows(resources):
    return [
        (name,
         f"l={est.chiplet_size}",
         f"yield={est.yield_fraction:.3g}",
         f"overhead={est.overhead:.3g}",
         f"qubits={est.total_fabricated_qubits:.3g}")
        for name, est in resources.items()
    ]


@pytest.mark.parametrize("defect_rate", [0.001, 0.003])
def test_tables1_and_2_resource_estimates(benchmark, benchmark_seed, defect_rate):
    def run():
        return table1_and_2_resources(
            defect_rate=defect_rate,
            chiplet_size=15,
            workload=SCALED_WORKLOAD,
            samples=50,
            seed=benchmark_seed,
        )

    resources = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(f"Tables 1-2 - resources at defect rate {defect_rate}", _rows(resources))

    no_defect = resources["no-defect"]
    intolerant = resources["defect-intolerant"]
    super_stab = resources["super-stabilizer"]
    assert no_defect.overhead == pytest.approx(1.0)
    # The super-stabilizer approach beats the defect-intolerant baseline by a
    # large factor (45x at 0.1% and >1e5 x at 0.3% in the paper; the reduced
    # scale keeps the ordering and a substantial gap).
    assert super_stab.overhead < intolerant.overhead
    assert super_stab.total_fabricated_qubits < intolerant.total_fabricated_qubits
    # The baseline's overhead explodes as the defect rate rises.
    if defect_rate == 0.003:
        assert intolerant.overhead > 5.0
        assert super_stab.overhead < intolerant.overhead


def test_tables3_and_4_fidelity_estimates(benchmark, benchmark_seed):
    def run():
        resources = table1_and_2_resources(
            defect_rate=0.001,
            chiplet_size=15,
            workload=SCALED_WORKLOAD,
            samples=50,
            seed=benchmark_seed,
        )
        return resources, table3_and_4_fidelity(resources, workload=SCALED_WORKLOAD)

    resources, fidelities = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Tables 3-4 - application fidelity", fidelities.items())
    # The accepted super-stabilizer patches all meet (or exceed) the target
    # distance, so their fidelity is at least that of the all-at-target device.
    assert fidelities["super-stabilizer"] >= fidelities["no-defect"] - 1e-9
    assert 0.0 <= fidelities["no-defect"] <= 1.0


def test_paper_scale_ideal_fidelity_matches_quoted_value(benchmark):
    """The ideal no-defect Shor-2048 device has ~73% fidelity in the paper."""

    def run():
        return application_fidelity({27: 1.0}, ShorWorkload())

    fidelity = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Ideal no-defect Shor-2048 fidelity", [("fidelity", round(fidelity, 3))])
    assert 0.6 < fidelity < 0.85
