"""Sampler throughput benchmark: vectorised dispatch vs per-target baseline.

Measures sampling throughput (shots per second) for the defect-free d=5
memory circuit at p = 1e-3, comparing

* the **vectorised packed sampler** — compiled instruction program, fused
  noise draws, sparse/dense flip strategies (what every engine shard
  samples), and
* the **per-target baseline** — the frozen pre-vectorisation loop
  (:mod:`repro.stabilizer.reference`, shared with the bit-identity tests,
  so the vectorised sampler cannot accidentally accelerate its own
  yardstick).

This file rides the non-blocking benchmark CI job next to the decoder
throughput series, so the BENCH artifacts track both stages of the
pipeline.  The one hard assertion gates the vectorisation PR's acceptance
criterion at the **engine shard size** (4096 shots, the default
``REPRO_SHARD_SIZE``): that is the batch every worker shard actually
samples and the regime where per-target Python dispatch dominates.  Larger
batches are printed for the trajectory but not gated — at very large shot
counts both samplers converge on the shared RNG-generation floor, so the
ratio thins by construction, and per the flaky-benchmark sizing rule the
gate keeps a ~1.7x margin over the measured ratio at the gated batch
instead of chasing thin ratios at bigger ones.

The run also prints the pipeline's sample-vs-decode wall-clock split
(:class:`~repro.engine.pipeline.PipelineStats`), which is what made
sampling the next lever after the batched-decoding PR.
"""

import time

from repro.core.adaptation import adapt_patch
from repro.decoder import MatchingGraph, MwpmDecoder
from repro.engine.pipeline import DecodingPipeline
from repro.noise.circuit_noise import CircuitNoiseModel
from repro.noise.fabrication import DefectSet
from repro.stabilizer.dem import build_detector_error_model
from repro.stabilizer.packed import PackedFrameSimulator
from repro.stabilizer.reference import reference_packed_sample
from repro.surface_code.circuits import build_memory_circuit
from repro.surface_code.layout import RotatedSurfaceCodeLayout

from conftest import print_series, write_bench_json

_P = 1e-3
_DISTANCE = 5
# Gate at the engine's default shard size; record (don't gate) the larger
# trajectory batch.  Margin at the gate was ~2.6x measured vs 1.5x gated.
_GATE_SHOTS = 4096
_GATE_RATIO = 1.5
_TRAJECTORY_SHOTS = 32000


def _throughput(fn, shots):
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return shots / max(elapsed, 1e-9)


def test_sampler_throughput(benchmark, benchmark_seed):
    patch = adapt_patch(RotatedSurfaceCodeLayout(_DISTANCE), DefectSet.of())
    circuit = build_memory_circuit(patch, CircuitNoiseModel.standard(_P), _DISTANCE)
    rows = []
    series = []
    ratios = {}

    def run():
        # Warm simulator: the pipeline reuses one compiled program across
        # shards, so the steady-state cost is sampling, not compilation.
        sim = PackedFrameSimulator(circuit, seed=benchmark_seed)
        sim.sample(64)
        for shots in (_GATE_SHOTS, _TRAJECTORY_SHOTS):
            vec = _throughput(lambda: sim.reseed(benchmark_seed).sample(shots), shots)
            ref = _throughput(
                lambda: reference_packed_sample(circuit, shots, seed=benchmark_seed),
                shots)
            ratios[shots] = vec / ref
            rows.append((f"d={_DISTANCE} shots={shots}",
                         f"vectorised {vec:9.0f} shots/s, "
                         f"per-target {ref:9.0f} shots/s, "
                         f"speedup {vec / ref:5.1f}x"))
            series.append({
                "label": f"d={_DISTANCE} shots={shots}",
                "distance": _DISTANCE,
                "shots": shots,
                "vectorised_shots_per_sec": vec,
                "per_target_shots_per_sec": ref,
                "speedup": vec / ref,
            })

        # Bit-level RNG mode vs the exact double-draw stream, at both batch
        # sizes (the dedicated gate lives in test_fast_rng.py; this series
        # just keeps both modes on one trajectory artifact).
        fast = PackedFrameSimulator(circuit, seed=benchmark_seed,
                                    rng_mode="bitgen")
        fast.sample(64)
        for shots in (_GATE_SHOTS, _TRAJECTORY_SHOTS):
            exact = _throughput(lambda: sim.reseed(benchmark_seed).sample(shots),
                                shots)
            bitgen = _throughput(
                lambda: fast.reseed(benchmark_seed).sample(shots), shots)
            rows.append((f"d={_DISTANCE} shots={shots} rng",
                         f"exact {exact:9.0f} shots/s, "
                         f"bitgen {bitgen:9.0f} shots/s, "
                         f"speedup {bitgen / exact:5.1f}x"))
            series.append({
                "label": f"d={_DISTANCE} shots={shots} rng_mode",
                "distance": _DISTANCE,
                "shots": shots,
                "exact_shots_per_sec": exact,
                "bitgen_shots_per_sec": bitgen,
                "bitgen_speedup": bitgen / exact,
            })

        # Sample-vs-decode wall-clock split of one warm pipeline shard.
        dem = build_detector_error_model(circuit)
        pipeline = DecodingPipeline(circuit, MwpmDecoder(MatchingGraph(dem)))
        pipeline.run(_GATE_SHOTS, seed=benchmark_seed)  # warm decoder caches
        stats = pipeline.run(_GATE_SHOTS, seed=benchmark_seed)
        rows.append((f"pipeline split d={_DISTANCE}",
                     f"sample {stats.sample_seconds * 1e3:6.1f}ms, "
                     f"decode {stats.decode_seconds * 1e3:6.1f}ms, "
                     f"sample share {stats.sample_fraction:5.1%}"))
        series.append({
            "label": f"pipeline split d={_DISTANCE}",
            "distance": _DISTANCE,
            "shots": _GATE_SHOTS,
            "pipeline_shots_per_sec": stats.shots_per_second,
            "sample_seconds": stats.sample_seconds,
            "decode_seconds": stats.decode_seconds,
            "sample_fraction": stats.sample_fraction,
        })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(f"Sampler throughput (p={_P})", rows)
    write_bench_json("sampler_throughput", series, physical_error_rate=_P,
                     gates={"shard_size_speedup": _GATE_RATIO})

    # Acceptance criterion of the vectorised-sampler PR: a measured speedup
    # over the frozen per-target sampler at d=5, gated at shard size.
    assert ratios[_GATE_SHOTS] >= _GATE_RATIO, ratios
