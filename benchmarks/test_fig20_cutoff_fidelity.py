"""Benchmark for Fig. 20: stability-experiment cutoff-fidelity study.

Paper scale: a d = 5 patch, bad-qubit two-qubit error rates of 5-15%, good
qubit error rates swept from 0.1% to 0.9%.  Laptop scale: a width-4 stability
patch (the all-Z-boundary construction needs an even width - see
EXPERIMENTS.md), two bad-qubit rates and a coarse sweep.  The reproduced
shape: for a sufficiently bad qubit, disabling it and forming
super-stabilizers gives a lower stability failure rate than keeping it.
"""

from repro.experiments.paper import figure20_cutoff

from conftest import print_series


def test_fig20_keep_vs_disable(benchmark, benchmark_seed):
    def run():
        return figure20_cutoff(
            size=4,
            rounds=4,
            physical_error_rates=(0.003, 0.006),
            bad_qubit_error_rates=(0.05, 0.15),
            shots=1500,
            seed=benchmark_seed,
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (p.strategy, p.bad_qubit_error_rate, p.physical_error_rate,
         round(p.logical_error_rate, 4))
        for p in study.points
    ]
    print_series("Fig. 20 - stability failure rate, keep vs disable", rows)

    disable = {p.physical_error_rate: p.logical_error_rate
               for p in study.curve("disable")}
    keep_bad = {p.physical_error_rate: p.logical_error_rate
                for p in study.curve("keep", 0.15)}
    keep_ok = {p.physical_error_rate: p.logical_error_rate
               for p in study.curve("keep", 0.05)}
    # A 15% bad qubit should be (weakly) worse to keep than a 5% one.
    for p in disable:
        assert keep_bad[p] >= keep_ok[p] - 0.02
    # At the lowest good-qubit error rate, disabling a 15% qubit should not be
    # (much) worse than keeping it - this is the cutoff behaviour of Fig. 20.
    lowest = min(disable)
    assert disable[lowest] <= keep_bad[lowest] + 0.02
