"""Fused-sweep benchmark: heterogeneous task fusion vs task-by-task.

The paper's workload is sweep-shaped — many small LER points per
(d, p, layout) grid — and a 7-task d=3/d=5 mixed sweep is exactly the
regime where per-shard dispatch overhead dominates: each task plans only
one or two shards per wave, so run task-by-task a 4-worker pool idles
three workers while every dispatch re-pays its own round-trip.  Shard-group
fusion (:class:`repro.stabilizer.packed.FusedProgram`) batches compatible
shards of *different* tasks into one worker invocation, so one dispatch
advances many sweep points at once.

This benchmark times the 7-task sweep at ``workers=4`` twice:

* **task-by-task**: one ``run_ler`` per task on a fusion-disabled engine
  (``fuse_tasks=1``) — the historical baseline, and
* **fused**: one ``run_sweep`` on a default engine, where the planner
  groups pending shards up to the ``fuse_tasks``/``fuse_shots`` budgets.

Fusion is pure dispatch, so the results are asserted bit-identical — here
and across the serial / process / socket backends at worker counts 1, 2
and 4 — and the on-disk cache records are asserted byte-identical between
a fused and an unfused engine.  The >= 2x wall-clock gate (this PR's
acceptance criterion) only fires on hosts with >= 4 CPUs: on fewer cores
both paths serialise onto the same silicon.  The measured series and the
realised fusion counters always land in ``BENCH_fused_sweep.json``.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.adaptation import adapt_patch
from repro.engine import Engine, EngineConfig, LerPointTask, ShotPolicy, SweepItem
from repro.engine.rng import child_stream
from repro.noise.fabrication import DefectSet
from repro.surface_code.layout import RotatedSurfaceCodeLayout

from conftest import print_series, write_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent

_WORKERS = 4
_SHARD_SIZE = 512
# Seven mixed points: four d=3 and three d=5, each a fixed budget of one or
# two shards — small circuits, high task count, the regime where fusion
# pays (a d=9+ task saturates the pool on its own and gains nothing).
_POINTS = ((3, 0.004), (3, 0.008), (3, 0.014), (3, 0.020),
           (5, 0.006), (5, 0.010), (5, 0.014))
_SHOTS_PER_TASK = 1024
_GATE_SPEEDUP = 2.0


def _tasks():
    patches = {d: adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
               for d in sorted({d for d, _ in _POINTS})}
    return [LerPointTask.from_patch("memory", patches[d], p)
            for d, p in _POINTS]


def _items(tasks, seed):
    """The exact (task, policy, child seed) cells every path executes."""
    policy = ShotPolicy.fixed(_SHOTS_PER_TASK)
    return [SweepItem(task, policy, child_stream(seed, i))
            for i, task in enumerate(tasks)]


def _key(results):
    return [(r.failures, r.shots, r.num_shards, r.num_detectors,
             r.num_dem_errors) for r in results]


def _launch_worker():
    env = dict(os.environ)
    extra = [str(REPO_ROOT / "src")]
    if env.get("PYTHONPATH"):
        extra.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(extra)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine.worker", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT)
    line = proc.stdout.readline().strip()
    parts = line.split()
    assert parts[:1] == ["REPRO_WORKER_LISTENING"], line
    return proc, (parts[1], int(parts[2]))


@pytest.fixture(scope="module")
def worker_hosts():
    """Two localhost repro.engine.worker processes for the socket check."""
    procs, hosts = [], []
    try:
        for _ in range(2):
            proc, host = _launch_worker()
            procs.append(proc)
            hosts.append(host)
        yield tuple(hosts)
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)


def test_fused_sweep_throughput(benchmark, benchmark_seed, worker_hosts,
                                tmp_path):
    fused_engine = Engine(EngineConfig(max_workers=_WORKERS,
                                       shard_size=_SHARD_SIZE))
    plain_engine = Engine(EngineConfig(max_workers=_WORKERS,
                                       shard_size=_SHARD_SIZE,
                                       fuse_tasks=1))
    tasks = _tasks()
    items = _items(tasks, benchmark_seed)
    rows = []
    measured = {}
    fusion = {}

    def run():
        # Warm both engines' pools and task contexts so neither timed path
        # pays process spawns or circuit/DEM/decoder builds.
        fused_engine.run_ler_many(tasks, shots=4 * _SHARD_SIZE,
                                  seed=benchmark_seed + 1)
        plain_engine.run_ler_many(tasks, shots=4 * _SHARD_SIZE,
                                  seed=benchmark_seed + 1)

        # Fused first: residual cache warmth can only bias against it.
        start = time.perf_counter()
        fused = fused_engine.run_sweep(items)
        t_fused = time.perf_counter() - start
        fusion.update(fused_engine.last_fusion.payload())
        assert fused_engine.last_fusion.fused_groups > 0, \
            "benchmark never fused (vacuous comparison)"

        start = time.perf_counter()
        taskwise = [plain_engine.run_ler(it.task, policy=it.policy,
                                         seed=it.seed) for it in items]
        t_taskwise = time.perf_counter() - start

        # Fusion is pure dispatch: identical numbers, here and everywhere.
        assert _key(fused) == _key(taskwise)

        shots = sum(r.shots for r in fused)
        measured["speedup"] = t_taskwise / t_fused
        measured["shots"] = shots
        measured["reference"] = _key(fused)
        for label, seconds in (("task-by-task", t_taskwise),
                               ("fused", t_fused)):
            rate = shots / max(seconds, 1e-9)
            measured[label] = (seconds, rate)
            rows.append((label,
                         f"{shots} shots in {seconds:6.2f}s "
                         f"= {rate:8.0f} shots/s"))
        rows.append(("speedup", f"{measured['speedup']:4.2f}x "
                     f"(gate {_GATE_SPEEDUP}x on >={_WORKERS} CPUs)"))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(f"Fused sweep ({len(items)} tasks d=3/d=5, "
                 f"workers={_WORKERS})", rows)

    # ------------------------------------------------------------------
    # Bit-identity across every backend and worker count (1 / 2 / 4).
    # ------------------------------------------------------------------
    reference = measured["reference"]
    backends = {
        "serial": Engine(EngineConfig(backend="serial",
                                      shard_size=_SHARD_SIZE)),
        "process-2": Engine(EngineConfig(max_workers=2,
                                         shard_size=_SHARD_SIZE)),
        "process-4": Engine(EngineConfig(max_workers=4,
                                         shard_size=_SHARD_SIZE)),
        "socket-2": Engine(EngineConfig(backend="socket", hosts=worker_hosts,
                                        shard_size=_SHARD_SIZE)),
    }
    for name, engine in backends.items():
        assert _key(engine.run_sweep(items)) == reference, \
            f"{name} diverged under fusion"

    # ------------------------------------------------------------------
    # Cache records byte-identical: fused engine vs unfused engine.
    # ------------------------------------------------------------------
    blobs = {}
    for label, fuse_tasks in (("fused", 8), ("unfused", 1)):
        cache_dir = tmp_path / label
        engine = Engine(EngineConfig(max_workers=_WORKERS,
                                     shard_size=_SHARD_SIZE,
                                     fuse_tasks=fuse_tasks,
                                     cache_dir=str(cache_dir)))
        cold = engine.run_sweep(items)
        assert not any(r.from_cache for r in cold)
        blobs[label] = {p.relative_to(cache_dir): p.read_bytes()
                        for p in sorted(cache_dir.rglob("*.json"))}
    assert blobs["fused"] and blobs["fused"] == blobs["unfused"]

    cpus = os.cpu_count() or 1
    gated = cpus >= _WORKERS
    write_bench_json(
        "fused_sweep",
        [{
            "label": label,
            "shots": measured["shots"],
            "seconds": measured[label][0],
            "shots_per_sec": measured[label][1],
        } for label in ("task-by-task", "fused")],
        speedup=measured["speedup"],
        fusion=fusion,
        workers=_WORKERS,
        shard_size=_SHARD_SIZE,
        tasks=len(items),
        cpu_count=cpus,
        gate={"min_speedup": _GATE_SPEEDUP, "enforced": gated},
    )

    # Acceptance criterion of the task-fusion PR.  Batching dispatches can
    # only win wall-clock when the workers actually have separate cores.
    if gated:
        assert measured["speedup"] >= _GATE_SPEEDUP, measured
