"""Benchmarks for Figs. 12, 13 and 17: yield and cost per logical qubit.

Paper scale: target distance 9 (Figs. 12-13) and 17 (Fig. 17), chiplet widths
up to 19 (27 for Fig. 17), 10000 defect samples per point.  Laptop scale:
target distance 5 and 7, widths up to 11, ~60-120 samples per point.  The
reproduced shape: the defect-intolerant baseline's overhead explodes with the
defect rate while the super-stabilizer curves stay within a small factor, and
the optimal chiplet size moves upward as the defect rate grows.
"""

import pytest

from repro.experiments.paper import figure12_yield, figure13_yield, figure17_yield

from conftest import print_series


def _fmt(points):
    return [
        (f"l={p.chiplet_size}", f"f={p.defect_rate}",
         f"yield={p.yield_fraction:.2f}", f"overhead={p.overhead:.2f}")
        for p in points
    ]


def test_fig12_link_only_yield_and_cost(benchmark, benchmark_seed):
    def run():
        return figure12_yield(
            target_distance=5,
            chiplet_sizes=(5, 7, 9),
            defect_rates=(0.0, 0.005, 0.01, 0.02),
            samples=80,
            seed=benchmark_seed,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 12 - link-only defects (super-stabilizer points)",
                 _fmt(result["super-stabilizer"]))
    print_series("Fig. 12 - defect-intolerant baseline",
                 _fmt(result["defect-intolerant-baseline"]))

    points = result["super-stabilizer"]
    baseline = result["defect-intolerant-baseline"]
    by = {(p.chiplet_size, p.defect_rate): p for p in points}
    # Zero defect rate: the l = target chiplet is optimal (overhead 1).
    assert by[(5, 0.0)].overhead == pytest.approx(1.0)
    # At the highest defect rate a larger chiplet beats the baseline size.
    assert by[(7, 0.02)].overhead < max(
        b.overhead for b in baseline if b.defect_rate == 0.02
    )
    # The defect-intolerant baseline overhead grows monotonically with the rate.
    base_by_rate = sorted(baseline, key=lambda p: p.defect_rate)
    overheads = [p.overhead for p in base_by_rate]
    assert overheads == sorted(overheads)


def test_fig13_link_and_qubit_yield_and_cost(benchmark, benchmark_seed):
    def run():
        return figure13_yield(
            target_distance=5,
            chiplet_sizes=(5, 7, 9),
            defect_rates=(0.0, 0.005, 0.01),
            samples=80,
            seed=benchmark_seed,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 13 - link+qubit defects (super-stabilizer points)",
                 _fmt(result["super-stabilizer"]))

    points = {(p.chiplet_size, p.defect_rate): p for p in result["super-stabilizer"]}
    # The link+qubit model is harsher than link-only: at the same rate and
    # size the yield must not be higher than with link-only defects
    # (statistically, allow a small tolerance).
    link_only = figure12_yield(
        target_distance=5, chiplet_sizes=(7,), defect_rates=(0.01,),
        samples=80, seed=benchmark_seed,
    )["super-stabilizer"]
    assert points[(7, 0.01)].yield_fraction <= link_only[0].yield_fraction + 0.15


def test_fig17_larger_target_distance(benchmark, benchmark_seed):
    def run():
        return figure17_yield(
            target_distance=7,
            chiplet_sizes=(7, 9, 11),
            defect_rates=(0.0, 0.005, 0.01),
            samples=60,
            seed=benchmark_seed,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 17 - larger target distance (link-only)",
                 _fmt(result["super-stabilizer"]))
    points = {(p.chiplet_size, p.defect_rate): p for p in result["super-stabilizer"]}
    # The baseline-size chiplet (l = d) has a lower yield at 1% for the larger
    # code than the small-code study does, i.e. higher distances are harder.
    assert points[(7, 0.01)].yield_fraction <= 1.0
    assert points[(11, 0.01)].yield_fraction >= points[(7, 0.01)].yield_fraction - 0.1
