"""Benchmarks for Figs. 5-11: slope vs per-chiplet quality indicators.

Paper scale: l = 11, 50 defective chiplets per distance value, p swept over
[5e-4, 2e-3] with enough shots to resolve LERs below 1e-6.  Laptop scale
(defaults here): l = 5-7, a handful of chiplets, p in [4e-3, 8e-3] and a few
thousand shots - enough to show the qualitative structure: slopes grow with
the adapted code distance (Fig. 5), and the chosen indicators (distance, then
number of shortest logicals) rank chiplets better than the faulty-qubit count
(Figs. 7-11).
"""

import pytest

from repro.experiments.paper import figure5_to_10_study, figure11_postselection

from conftest import print_series


@pytest.fixture(scope="module")
def study(benchmark_seed):
    return figure5_to_10_study(
        size=5,
        defect_rate=0.03,
        num_patches=5,
        physical_error_rates=(0.004, 0.006, 0.009),
        shots=1500,
        seed=benchmark_seed,
    )


def test_fig05_slope_vs_distance(benchmark, study):
    def series():
        return {
            d: round(study.mean_slope(d), 2)
            for d in sorted(study.by_distance())
        }

    result = benchmark.pedantic(series, rounds=1, iterations=1)
    print_series("Fig. 5 - mean log-log slope by adapted code distance", result.items())
    assert result


def test_fig07_to_10_indicator_table(benchmark, study):
    def table():
        rows = []
        for rec in study.records:
            rows.append({
                "d": rec.metrics.distance,
                "log_num_shortest": rec.metrics.num_shortest,
                "disabled_fraction": round(rec.metrics.disabled_data_fraction, 3),
                "cluster_diameter": rec.metrics.largest_cluster_diameter,
                "faulty_qubits": rec.metrics.num_faulty_qubits,
                "slope": None if rec.slope is None else round(rec.slope, 2),
            })
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    print_series("Figs. 7-10 - per-chiplet indicators vs measured slope", rows)
    assert len(rows) == len(study.records)


def test_fig11_postselection_ranking(benchmark, study):
    def run():
        return figure11_postselection(study, keep_fractions=(0.4, 0.7, 1.0))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 11 - (fraction, mean slope, worst slope) per strategy",
                 result.items())
    # Both strategies must produce one row per keep fraction.
    assert len(result["chosen"]) == 3
    assert len(result["baseline"]) == 3
