"""Decoder throughput benchmark: batched pipeline vs per-shot baseline.

Measures decode throughput (shots per second) for defect-free d=3 and d=5
memory circuits at p = 1e-3, for both decoders, comparing

* the **batched pipeline path** — sparse syndrome extraction plus the
  deduplicating ``decode_fired_batch`` (what every engine shard runs), and
* the **per-shot baseline** — the historical algorithm that pays a fresh
  Dijkstra sweep and a fresh matching-graph build for every single shot
  (the frozen copy in :mod:`repro.decoder.reference`, shared with the
  bit-identity property tests, so the refactored decoder cannot
  accidentally accelerate its own baseline).

This file rides the non-blocking benchmark CI job, so the shots/sec
trajectory of future PRs is recorded in the BENCH artifacts.  The one hard
assertion is this PR's acceptance criterion: at d=5, p=1e-3, the batched
MWPM path must deliver >= 5x the per-shot baseline throughput (the margin
in practice is far larger — most shots dedup away).
"""

import time

from repro.core.adaptation import adapt_patch
from repro.decoder import MatchingGraph, MwpmDecoder, UnionFindDecoder
from repro.decoder.base import syndrome_cache_limit
from repro.decoder.reference import reference_mwpm_decode
from repro.noise.circuit_noise import CircuitNoiseModel
from repro.noise.fabrication import DefectSet
from repro.stabilizer.dem import build_detector_error_model
from repro.stabilizer.packed import PackedFrameSimulator
from repro.surface_code.circuits import build_memory_circuit
from repro.surface_code.layout import RotatedSurfaceCodeLayout

from conftest import print_series, write_bench_json

_P = 1e-3
# Engine-realistic batch sizes (shards at low p run tens of thousands of
# shots); the per-shot baseline is timed on a subsample of the same
# detector data and reported as shots/sec, which is fair because its cost
# is linear in shots while the batched path amortises across the batch.
# The d=5 batch is sized so the >=5x ratio gate keeps a wide margin under
# host load: the dedup factor grows with batch size, so when this gate
# runs thin the fix is to raise _SHOTS[5], never to lower the gate (one
# transient sub-5x reading was observed at 32000 under load).
_SHOTS = {3: 8000, 5: 64000}
_BASELINE_SHOTS = 2000


# The frozen per-shot baseline lives in repro.decoder.reference so the
# bit-identity property tests and this perf baseline measure the exact same
# historical algorithm.
def _throughput(fn, shots):
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return shots / max(elapsed, 1e-9)


def _circuit_and_detectors(distance, seed):
    patch = adapt_patch(RotatedSurfaceCodeLayout(distance), DefectSet.of())
    circuit = build_memory_circuit(patch, CircuitNoiseModel.standard(_P), distance)
    shots = _SHOTS[distance]
    samples = PackedFrameSimulator(circuit, seed=seed).sample(shots)
    return circuit, samples, shots


def test_decoder_throughput(benchmark, benchmark_seed):
    rows = []
    series = []
    speedups = {}

    def run():
        for distance in (3, 5):
            circuit, samples, shots = _circuit_and_detectors(distance, benchmark_seed)
            dem = build_detector_error_model(circuit)
            dense = samples.detectors
            fired = samples.fired_detectors()

            for name, make in (("mwpm", MwpmDecoder), ("unionfind", UnionFindDecoder)):
                graph = MatchingGraph(dem)
                decoder = make(graph)
                batched = _throughput(
                    lambda: decoder.decode_fired_batch(fired), shots)
                # Syndrome-memo health of the batched run: hits/evictions/
                # final size land in the BENCH artifact so
                # REPRO_SYNDROME_CACHE can be tuned from CI data (steady
                # evictions at a pinned memo size mean the working set of
                # distinct syndromes no longer fits).
                memo = {
                    "distinct_syndromes": decoder.decoded_syndromes,
                    "memo_hits": decoder.memo_hits,
                    "memo_evictions": decoder.memo_evictions,
                    "memo_size": decoder.memo_size,
                }

                base_shots = min(shots, _BASELINE_SHOTS)
                if name == "mwpm":
                    base_graph = MatchingGraph(dem)
                    baseline = _throughput(
                        lambda: [reference_mwpm_decode(base_graph, dense[s])
                                 for s in range(base_shots)],
                        base_shots)
                else:
                    base = make(MatchingGraph(dem))
                    baseline = _throughput(
                        lambda: [base._decode_fired(f) if f else frozenset()
                                 for f in fired[:base_shots]],
                        base_shots)

                speedup = batched / baseline
                speedups[(distance, name)] = speedup
                rows.append((f"d={distance} {name}",
                             f"batched {batched:9.0f} shots/s, "
                             f"per-shot {baseline:8.0f} shots/s, "
                             f"speedup {speedup:6.1f}x, "
                             f"memo {memo['memo_hits']} hits / "
                             f"{memo['memo_evictions']} evictions"))
                series.append({
                    "label": f"d={distance} {name}",
                    "distance": distance,
                    "decoder": name,
                    "shots": shots,
                    "batched_shots_per_sec": batched,
                    "per_shot_shots_per_sec": baseline,
                    "speedup": speedup,
                    **memo,
                })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(f"Decoder throughput (p={_P})", rows)
    write_bench_json("decoder_throughput", series, physical_error_rate=_P,
                     gates={"d3_mwpm": 5.0, "d5_mwpm": 5.0,
                            "d5_unionfind": 2.0},
                     syndrome_cache_limit=syndrome_cache_limit())

    # Acceptance criterion of the batched-decoding PR: >= 5x at p=1e-3.
    assert speedups[(3, "mwpm")] >= 5.0, speedups
    assert speedups[(5, "mwpm")] >= 5.0, speedups
    # The UF dedup path must also win clearly at low p.
    assert speedups[(5, "unionfind")] >= 2.0, speedups
