"""Fast-RNG (bitgen) sampling benchmark: bit-level noise vs exact doubles.

Measures d=5 memory-circuit sampling throughput for the two compiled
program modes of :class:`~repro.stabilizer.packed.PackedFrameSimulator`:

* ``exact`` — one float64 per (noise row, shot) from PCG64, the
  paper-exact reproduction stream every pinned count in the repo uses;
* ``bitgen`` — K=12 raw SFC64 words per noise row combined at the bit
  level into Bernoulli(m/2^12) packed draws, with residual thinning so
  any ``p`` stays exact in distribution.

Container timing noise is severe (the same exact-mode run swings ~2x
wall clock between schedulings), so the gate uses **interleaved
best-of-N**: alternate exact/bitgen timings back to back and compare the
per-mode minima.  The minimum of N runs estimates the contention-free
cost of each mode; interleaving guarantees both modes sample the same
noise environment.  Measured ratio at the gate was ~3.2x vs the 2.5x
acceptance criterion.

The second test is the statistical half of the acceptance criterion:
bitgen and exact logical-error estimates must agree within overlapping
Wilson 95% intervals — fast sampling must not move the physics.
"""

import time

from repro.analysis.stats import wilson_interval
from repro.core.adaptation import adapt_patch
from repro.decoder import MatchingGraph, MwpmDecoder
from repro.engine.pipeline import DecodingPipeline
from repro.noise.circuit_noise import CircuitNoiseModel
from repro.noise.fabrication import DefectSet
from repro.stabilizer.dem import build_detector_error_model
from repro.stabilizer.packed import PackedFrameSimulator
from repro.surface_code.circuits import build_memory_circuit
from repro.surface_code.layout import RotatedSurfaceCodeLayout

from conftest import print_series, write_bench_json

_P = 1e-3
_DISTANCE = 5
_SHOTS = 32000
#: Acceptance criterion of the fast-RNG PR: bitgen sampling ≥ 2.5x exact
#: at d=5, 32k shots.  Interleaved best-of-N measured ~3.2x.
_GATE_RATIO = 2.5
_ROUNDS = 10

# Wilson-CI equivalence point: d=3 keeps the failure count high enough for
# tight intervals at benchmark-scale shots.
_CI_DISTANCE = 3
_CI_P = 5e-3
_CI_SHOTS = 30000


def _circuit(distance, p):
    patch = adapt_patch(RotatedSurfaceCodeLayout(distance), DefectSet.of())
    return build_memory_circuit(patch, CircuitNoiseModel.standard(p), distance)


def test_bitgen_sampling_throughput(benchmark, benchmark_seed):
    circuit = _circuit(_DISTANCE, _P)
    sims = {mode: PackedFrameSimulator(circuit, seed=benchmark_seed,
                                       rng_mode=mode)
            for mode in ("exact", "bitgen")}
    for sim in sims.values():
        sim.sample(64)  # compile both programs outside the timed region

    best = {"exact": float("inf"), "bitgen": float("inf")}

    def run():
        # Interleave the two modes so scheduler noise hits both equally,
        # and keep the per-mode minimum as the contention-free estimate.
        for _ in range(_ROUNDS):
            for mode, sim in sims.items():
                sim.reseed(benchmark_seed)
                start = time.perf_counter()
                sim.sample(_SHOTS)
                best[mode] = min(best[mode],
                                 time.perf_counter() - start)

    benchmark.pedantic(run, rounds=1, iterations=1)

    exact_tps = _SHOTS / best["exact"]
    bitgen_tps = _SHOTS / best["bitgen"]
    ratio = bitgen_tps / exact_tps
    rows = [
        (f"d={_DISTANCE} shots={_SHOTS} exact",
         f"{exact_tps:9.0f} shots/s ({best['exact'] * 1e3:6.1f} ms)"),
        (f"d={_DISTANCE} shots={_SHOTS} bitgen",
         f"{bitgen_tps:9.0f} shots/s ({best['bitgen'] * 1e3:6.1f} ms)"),
        ("speedup", f"{ratio:5.2f}x (gate {_GATE_RATIO}x)"),
    ]
    print_series(f"Fast-RNG sampling throughput (p={_P})", rows)
    write_bench_json(
        "fast_rng",
        [{"label": f"d={_DISTANCE} shots={_SHOTS} {mode}",
          "distance": _DISTANCE,
          "shots": _SHOTS,
          "rng_mode": mode,
          "shots_per_sec": _SHOTS / best[mode],
          "best_seconds": best[mode]}
         for mode in ("exact", "bitgen")],
        physical_error_rate=_P,
        rounds=_ROUNDS,
        gates={"bitgen_speedup": _GATE_RATIO},
    )
    assert ratio >= _GATE_RATIO, (
        f"bitgen speedup {ratio:.2f}x below the {_GATE_RATIO}x gate "
        f"(exact {best['exact'] * 1e3:.1f} ms, "
        f"bitgen {best['bitgen'] * 1e3:.1f} ms over best-of-{_ROUNDS})")


def test_bitgen_statistical_equivalence(benchmark, benchmark_seed):
    """Bitgen LER falls inside (overlaps) the exact-mode Wilson 95% CI."""
    circuit = _circuit(_CI_DISTANCE, _CI_P)
    dem = build_detector_error_model(circuit)

    def failures(mode):
        pipeline = DecodingPipeline(circuit, MwpmDecoder(MatchingGraph(dem)),
                                    rng_mode=mode)
        return pipeline.run(_CI_SHOTS, seed=benchmark_seed).failures

    out = {}

    def run():
        out["exact"] = failures("exact")
        out["bitgen"] = failures("bitgen")

    benchmark.pedantic(run, rounds=1, iterations=1)

    lo_e, hi_e = wilson_interval(out["exact"], _CI_SHOTS)
    lo_b, hi_b = wilson_interval(out["bitgen"], _CI_SHOTS)
    print_series(
        f"Fast-RNG statistical equivalence (d={_CI_DISTANCE}, p={_CI_P})",
        [("exact", f"{out['exact']}/{_CI_SHOTS} "
                   f"CI [{lo_e:.5f}, {hi_e:.5f}]"),
         ("bitgen", f"{out['bitgen']}/{_CI_SHOTS} "
                    f"CI [{lo_b:.5f}, {hi_b:.5f}]")])
    assert max(lo_e, lo_b) <= min(hi_e, hi_b), (
        f"Wilson CIs disjoint: exact [{lo_e:.5f}, {hi_e:.5f}] vs "
        f"bitgen [{lo_b:.5f}, {hi_b:.5f}]")
