"""Shared configuration for the benchmark harness.

Every benchmark regenerates the data behind one figure or table of the paper
at laptop scale (see EXPERIMENTS.md for the scale mapping) and prints the
resulting series so the run doubles as a reproduction report.

The ``engine_config`` fixture builds the Monte-Carlo execution engine from
the environment and installs it as the process default, so the same
benchmark run exercises the serial path (no env vars), the process-pool path
(``REPRO_WORKERS=4``), or the cached path (``REPRO_CACHE=.repro-cache``)
without any edits.  LER-based benchmarks always route through the engine
(results bit-identical across worker counts); the yield Monte-Carlo paths
use the pool only when ``REPRO_WORKERS > 1`` (their serial path keeps the
legacy sequential RNG stream for seed compatibility).
"""

import json
from pathlib import Path

import pytest

from repro.engine import Engine, EngineConfig, set_default_engine
from repro.env import env_str

#: Format version of the BENCH_*.json artifacts; bump when the layout of the
#: records below changes so downstream diffing tools can tell.
#: v2: sampler_throughput grew bitgen-vs-exact rng_mode series, and the
#: fast_rng artifact joined the set.
#: v3: sweep_scheduler grew the fused series + fusion counters, and the
#: fused_sweep artifact joined the set.
BENCH_JSON_SCHEMA = 3


@pytest.fixture(scope="session")
def benchmark_seed() -> int:
    """A fixed seed so benchmark numbers are reproducible run to run."""
    return 20240427


@pytest.fixture(scope="session", autouse=True)
def engine_config() -> EngineConfig:
    """Engine configuration from REPRO_WORKERS / REPRO_CACHE / REPRO_SHARD_SIZE.

    Autouse: the configured engine becomes the process-wide default, so every
    experiment driver in the benchmark suite runs through it.
    """
    config = EngineConfig.from_env()
    set_default_engine(Engine(config))
    yield config
    set_default_engine(None)


def print_series(title: str, rows) -> None:
    """Print a small table of (label, value) rows under a title."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("   ", row)


def write_bench_json(name: str, series, **extra) -> Path:
    """Write a machine-readable ``BENCH_<name>.json`` next to the tee'd text.

    ``series`` is a list of flat dicts (one per measured configuration, with
    a ``label`` and the shots/sec numbers); ``extra`` lands at the top level
    (gates, engine knobs, host facts).  The CI benchmark job uploads these
    files in the BENCH artifact alongside the ``bench-*.txt`` transcripts,
    so the perf trajectory is diffable across PRs instead of buried in logs.
    Output directory defaults to the working directory and can be redirected
    with ``REPRO_BENCH_DIR``.
    """
    out_dir = Path(env_str("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    body = {
        "schema_version": BENCH_JSON_SCHEMA,
        "benchmark": name,
        "series": list(series),
        **extra,
    }
    path.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
