"""Shared configuration for the benchmark harness.

Every benchmark regenerates the data behind one figure or table of the paper
at laptop scale (see EXPERIMENTS.md for the scale mapping) and prints the
resulting series so the run doubles as a reproduction report.
"""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def benchmark_seed() -> int:
    """A fixed seed so benchmark numbers are reproducible run to run."""
    return 20240427


def print_series(title: str, rows) -> None:
    """Print a small table of (label, value) rows under a title."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("   ", row)
