"""Shared configuration for the benchmark harness.

Every benchmark regenerates the data behind one figure or table of the paper
at laptop scale (see EXPERIMENTS.md for the scale mapping) and prints the
resulting series so the run doubles as a reproduction report.

The ``engine_config`` fixture builds the Monte-Carlo execution engine from
the environment and installs it as the process default, so the same
benchmark run exercises the serial path (no env vars), the process-pool path
(``REPRO_WORKERS=4``), or the cached path (``REPRO_CACHE=.repro-cache``)
without any edits.  LER-based benchmarks always route through the engine
(results bit-identical across worker counts); the yield Monte-Carlo paths
use the pool only when ``REPRO_WORKERS > 1`` (their serial path keeps the
legacy sequential RNG stream for seed compatibility).
"""

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig, set_default_engine


@pytest.fixture(scope="session")
def benchmark_seed() -> int:
    """A fixed seed so benchmark numbers are reproducible run to run."""
    return 20240427


@pytest.fixture(scope="session", autouse=True)
def engine_config() -> EngineConfig:
    """Engine configuration from REPRO_WORKERS / REPRO_CACHE / REPRO_SHARD_SIZE.

    Autouse: the configured engine becomes the process-wide default, so every
    experiment driver in the benchmark suite runs through it.
    """
    config = EngineConfig.from_env()
    set_default_engine(Engine(config))
    yield config
    set_default_engine(None)


def print_series(title: str, rows) -> None:
    """Print a small table of (label, value) rows under a title."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("   ", row)
