"""Benchmarks for Figs. 18-19: overhead envelopes and distance distributions.

* Fig. 18: for each target fidelity (code distance), the minimum extra
  resource overhead achievable by choosing the chiplet size, as a function of
  the defect rate - the headline "below 3x / 6x at 1%" result, reproduced here
  at reduced scale.
* Fig. 19: the code-distance distribution of sampled chiplets, the input to
  the application-fidelity estimates of Tables 3-4.
"""

from repro.experiments.paper import figure18_envelope, figure19_distance_distribution
from repro.noise.fabrication import LINK_AND_QUBIT, LINK_ONLY

from conftest import print_series


def test_fig18_minimum_extra_overhead(benchmark, benchmark_seed):
    def run():
        return figure18_envelope(
            target_distances=(5, 7),
            chiplet_sizes_by_target={5: (5, 7, 9), 7: (7, 9, 11)},
            defect_rates=(0.002, 0.005, 0.01),
            defect_model_kind=LINK_ONLY,
            samples=60,
            seed=benchmark_seed,
        )

    envelopes = benchmark.pedantic(run, rounds=1, iterations=1)
    for target, env in envelopes.items():
        print_series(
            f"Fig. 18 - minimum extra overhead, target d={target}",
            [(f"f={rate}", f"l*={p.chiplet_size}", f"overhead={p.overhead:.2f}")
             for rate, p in env.items()],
        )
    for target, env in envelopes.items():
        overheads = [p.overhead for _, p in sorted(env.items())]
        # The envelope stays finite and within a small factor at 1% defects
        # (the paper's headline is < 3x for link-only defects at 1%).
        assert overheads[-1] < 12.0
        # And it grows (weakly) with the defect rate.
        assert overheads[-1] >= overheads[0] - 0.2


def test_fig19_distance_distribution(benchmark, benchmark_seed):
    def run():
        return figure19_distance_distribution(
            chiplet_size=11,
            defect_rate=0.003,
            defect_model_kind=LINK_AND_QUBIT,
            target_distance=7,
            samples=150,
            seed=benchmark_seed,
        )

    distribution = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 19 - code-distance distribution (l=11, f=0.3%)",
                 sorted(distribution.items()))
    assert abs(sum(distribution.values()) - 1.0) < 1e-9
    # The bulk of the distribution sits below the chiplet width and above zero,
    # with most patches keeping a distance close to the width (low defect rate).
    assert max(distribution) <= 11
    most_common = max(distribution, key=distribution.get)
    assert most_common >= 7
