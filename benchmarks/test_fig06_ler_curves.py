"""Benchmark for Fig. 6: logical vs physical error rate curves.

Paper scale: defect-free d = 5..11 and defective l = 11 patches at
p in [5e-4, 2e-3].  Laptop scale: defect-free d = 3, 5 and defective l = 5
patches at p in [3e-3, 8e-3]; the qualitative features preserved are the
ordering of the curves (larger distance = lower LER at low p) and the
exponential suppression with distance.
"""

from repro.experiments.paper import figure6_curves

from conftest import print_series


def test_fig06_ler_vs_p_curves(benchmark, benchmark_seed):
    def run():
        return figure6_curves(
            defect_free_sizes=(3, 5),
            defective_size=5,
            num_defective=1,
            defect_rate=0.02,
            physical_error_rates=(0.003, 0.005, 0.008),
            shots=2000,
            seed=benchmark_seed,
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("Fig. 6 - LER vs p", curves.items())

    d3 = dict(curves["defect-free d=3"])
    d5 = dict(curves["defect-free d=5"])
    # At the lowest sampled p the d=5 patch must not be worse than d=3
    # (exponential suppression with distance).
    assert d5[0.003] <= d3[0.003] + 0.01
    # Every curve is monotone-ish in p: highest p gives the highest LER.
    for series in curves.values():
        rates = dict(series)
        assert rates[0.008] >= rates[0.003] - 0.005
