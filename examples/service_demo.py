"""Estimation-as-a-service demo: submit over HTTP, stream waves, verify.

Runs the full service loop in one process — an in-thread JSON API, a
worker draining the queue — then proves the service contract: the numbers
that come back over HTTP are bit-identical to calling the engine directly.

    PYTHONPATH=src python examples/service_demo.py
"""

import tempfile
import threading
from pathlib import Path

from repro.core import adapt_patch
from repro.engine import Engine, EngineConfig, LerPointTask
from repro.noise import DefectSet
from repro.service import JobStore, ServiceWorker
from repro.service.api import serve
from repro.service.cli import ServiceClient
from repro.surface_code import RotatedSurfaceCodeLayout

SEED = 2024
SHOTS = 2_000
SHARD_SIZE = 512
ERROR_RATES = (0.004, 0.008, 0.012)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-demo-"))
    store = JobStore(workdir / "jobs.db")

    # 1. An API front end (ephemeral port) and a worker draining the queue.
    server = serve(store, "127.0.0.1", 0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    worker = ServiceWorker(store, cache_dir=str(workdir / "cache"))
    print(f"API listening on {host}:{port}; worker {worker.worker_id}")

    # 2. Submit a three-point d=3 memory sweep over HTTP.
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    tasks = [LerPointTask.from_patch("memory", patch, p)
             for p in ERROR_RATES]
    job = client.submit({
        "kind": "sweep",
        "tasks": [t.payload() for t in tasks],
        "shots": SHOTS,
        "seed": SEED,
        "shard_size": SHARD_SIZE,
    })
    print(f"submitted job {job['id']} (state={job['state']})")

    # An identical submission coalesces instead of running twice.
    twin = client.submit({
        "kind": "sweep",
        "tasks": [t.payload() for t in tasks],
        "shots": SHOTS,
        "seed": SEED,
        "shard_size": SHARD_SIZE,
    })
    print(f"identical submission {twin['id']} coalesced into "
          f"{twin['coalesced_into']}")

    # 3. Drain in the background while we stream wave partials.
    drainer = threading.Thread(target=worker.drain)
    drainer.start()

    def show(event):
        if event["type"] == "wave":
            print(f"  wave: item={event['item']} "
                  f"failures={event['failures']}/{event['shots']} "
                  f"CI=[{event['ci_low']:.2e}, {event['ci_high']:.2e}]")

    final = client.watch(job["id"], emit=show)
    drainer.join()
    print(f"job finished: state={final['state']}")

    # 4. The follower finished with it, without a second execution.
    twin_final = client.status(twin["id"])
    assert twin_final["state"] == "done"
    assert twin_final["result"] == final["result"]

    # 5. Bit-identity against a direct in-process engine run.
    direct = Engine(EngineConfig(shard_size=SHARD_SIZE)).run_ler_many(
        tasks, shots=SHOTS, seed=SEED)
    print(f"{'p':>8} {'service':>16} {'direct':>16}")
    for p, got, ref in zip(ERROR_RATES, final["result"]["results"], direct):
        service_ler = f"{got['failures']}/{got['shots']}"
        direct_ler = f"{ref.failures}/{ref.shots}"
        print(f"{p:>8} {service_ler:>16} {direct_ler:>16}")
        assert (got["failures"], got["shots"]) == (ref.failures, ref.shots)
    print("service results are bit-identical to the direct engine run")

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
