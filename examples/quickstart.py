#!/usr/bin/env python
"""Quickstart: adapt a surface code to a defective chiplet and measure it.

This walks the library's main pipeline end to end:

1. build a chiplet layout and sample fabrication defects,
2. adapt the rotated surface code to the defects (super-stabilizers and
   boundary deformations),
3. inspect the figures of merit the paper uses for post-selection,
4. generate the noisy syndrome-extraction circuit,
5. run the fused decoding pipeline once directly (bit-packed sampling,
   syndrome-deduplicated MWPM decoding) and show its cache statistics, and
6. run an engine-backed LER sweep: sample detectors, decode with MWPM and
   report the logical-error-rate curve, optionally sharded over a process
   pool and cached on disk.

Run with ``python examples/quickstart.py``.  Useful variations::

    python examples/quickstart.py --workers 4             # parallel sweep
    python examples/quickstart.py --cache .repro-cache    # warm the cache
    python examples/quickstart.py --cache .repro-cache    # ~instant rerun
"""

import argparse
import time
from dataclasses import replace

from repro.core import adapt_patch, evaluate_patch
from repro.decoder import MwpmDecoder
from repro.engine import DecodingPipeline, Engine, EngineConfig, LerPointTask
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT, CircuitNoiseModel
from repro.stabilizer import build_detector_error_model
from repro.surface_code import RotatedSurfaceCodeLayout, build_memory_circuit


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: REPRO_WORKERS or 1)")
    parser.add_argument("--cache", default=None,
                        help="result-cache directory (default: REPRO_CACHE or off)")
    parser.add_argument("--shots", type=int, default=20000,
                        help="Monte-Carlo shots per sweep point")
    parser.add_argument("--seed", type=int, default=7, help="root seed")
    args = parser.parse_args()

    config = EngineConfig.from_env()
    if args.workers is not None:
        config = replace(config, max_workers=args.workers)
    if args.cache is not None:
        config = replace(config, cache_dir=args.cache)
    engine = Engine(config)

    size = 7
    layout = RotatedSurfaceCodeLayout(size)
    print(f"Chiplet: {size}x{size} data qubits, "
          f"{layout.num_fabricated_qubits} fabricated qubits, "
          f"{layout.num_links} couplers")

    # 1-2. Sample fabrication defects and adapt the code.
    defect_model = DefectModel(LINK_AND_QUBIT, rate=0.01)
    defects = defect_model.sample(layout, rng=7)
    patch = adapt_patch(layout, defects)
    print(f"Defects: {defects.num_faulty_qubits} faulty qubits, "
          f"{defects.num_faulty_links} faulty links")
    print(f"Adaptation: {len(patch.disabled_data)} data qubits disabled, "
          f"{len(patch.super_stabilizers)} super-stabilizers, "
          f"{len(patch.stabilizers)} regular stabilizers")

    # 3. Figures of merit (the paper's post-selection indicators).
    metrics = evaluate_patch(patch)
    print(f"Code distance: {metrics.distance} "
          f"(X: {metrics.distance_x}, Z: {metrics.distance_z})")
    print(f"Minimum-weight logical operators: {metrics.num_shortest}")

    # 4. The noisy syndrome-extraction circuit.
    noise = CircuitNoiseModel.standard(p=0.005)
    circuit = build_memory_circuit(patch, noise)
    print(f"Circuit: {circuit.num_qubits} qubits, {len(circuit)} instructions, "
          f"{circuit.num_detectors} detectors")

    # 5. One direct run of the fused decoding pipeline.  At realistic error
    #    rates most shots collapse to a few distinct syndromes, so the
    #    deduplicating decoder does orders of magnitude less matching work
    #    than shot-by-shot decoding.
    pipeline = DecodingPipeline(circuit,
                                MwpmDecoder(build_detector_error_model(circuit)))
    stats = pipeline.run(4096, seed=args.seed)
    print(f"Pipeline: {stats.shots} shots -> {stats.failures} failures in "
          f"{stats.chunks} chunk(s); {stats.distinct_syndromes} distinct "
          f"syndromes decoded ({stats.dedup_factor:.1f} shots/decode, "
          f"{stats.empty_shots} empty shots)")

    # 6. Engine-backed LER sweep: the defective patch and the defect-free
    #    reference, across a window of physical error rates.  Shots are split
    #    into shards across the worker pool and every (task, seed) cell lands
    #    in the on-disk cache, so a rerun of this script is near-instant.
    clean = adapt_patch(layout, DefectSet.of())
    physical_error_rates = (0.002, 0.003, 0.005, 0.008)
    tasks = [LerPointTask.from_patch("memory", p_, rate)
             for p_ in (patch, clean) for rate in physical_error_rates]
    labels = [f"{name} p={rate}"
              for name in ("defective ", "defect-free")
              for rate in physical_error_rates]

    print(f"\nLER sweep: {len(tasks)} points x {args.shots} shots "
          f"(workers={config.max_workers}, shard={config.shard_size}, "
          f"cache={config.cache_dir or 'off'})")
    start = time.perf_counter()
    results = engine.run_ler_many(tasks, shots=args.shots, seed=args.seed)
    elapsed = time.perf_counter() - start

    for label, result in zip(labels, results):
        low, high = result.estimate.confidence_interval()
        origin = "cache" if result.from_cache else f"{result.num_shards} shard(s)"
        print(f"  {label}: LER {result.logical_error_rate:.4f} "
              f"(95% CI [{low:.4f}, {high:.4f}], {origin})")
    print(f"Sweep wall-clock: {elapsed:.2f} s"
          + ("" if config.cache_dir else "  (pass --cache DIR to make reruns instant)"))


if __name__ == "__main__":
    main()
