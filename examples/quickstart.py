#!/usr/bin/env python
"""Quickstart: adapt a surface code to a defective chiplet and measure it.

This walks the library's main pipeline end to end:

1. build a chiplet layout and sample fabrication defects,
2. adapt the rotated surface code to the defects (super-stabilizers and
   boundary deformations),
3. inspect the figures of merit the paper uses for post-selection,
4. generate the noisy syndrome-extraction circuit, and
5. run a small memory experiment: sample detectors, decode with MWPM, and
   report the logical error rate.

Run with ``python examples/quickstart.py``.
"""

from repro.core import adapt_patch, evaluate_patch
from repro.experiments import run_memory_experiment
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT, CircuitNoiseModel
from repro.surface_code import RotatedSurfaceCodeLayout, build_memory_circuit


def main() -> None:
    size = 7
    layout = RotatedSurfaceCodeLayout(size)
    print(f"Chiplet: {size}x{size} data qubits, "
          f"{layout.num_fabricated_qubits} fabricated qubits, "
          f"{layout.num_links} couplers")

    # 1-2. Sample fabrication defects and adapt the code.
    defect_model = DefectModel(LINK_AND_QUBIT, rate=0.01)
    defects = defect_model.sample(layout, rng=7)
    patch = adapt_patch(layout, defects)
    print(f"Defects: {defects.num_faulty_qubits} faulty qubits, "
          f"{defects.num_faulty_links} faulty links")
    print(f"Adaptation: {len(patch.disabled_data)} data qubits disabled, "
          f"{len(patch.super_stabilizers)} super-stabilizers, "
          f"{len(patch.stabilizers)} regular stabilizers")

    # 3. Figures of merit (the paper's post-selection indicators).
    metrics = evaluate_patch(patch)
    print(f"Code distance: {metrics.distance} "
          f"(X: {metrics.distance_x}, Z: {metrics.distance_z})")
    print(f"Minimum-weight logical operators: {metrics.num_shortest}")

    # 4. The noisy syndrome-extraction circuit.
    noise = CircuitNoiseModel.standard(p=0.005)
    circuit = build_memory_circuit(patch, noise)
    print(f"Circuit: {circuit.num_qubits} qubits, {len(circuit)} instructions, "
          f"{circuit.num_detectors} detectors")

    # 5. A small memory experiment (decoded with minimum-weight matching).
    result = run_memory_experiment(patch, physical_error_rate=0.005,
                                   shots=2000, seed=1)
    estimate = result.estimate
    low, high = estimate.confidence_interval()
    print(f"Logical error rate at p=0.005: {estimate.rate:.4f} "
          f"(95% CI [{low:.4f}, {high:.4f}])")

    # Compare with the defect-free patch of the same width.
    clean = adapt_patch(layout, DefectSet.of())
    clean_result = run_memory_experiment(clean, physical_error_rate=0.005,
                                         shots=2000, seed=1)
    print(f"Defect-free reference LER:       {clean_result.logical_error_rate:.4f}")


if __name__ == "__main__":
    main()
