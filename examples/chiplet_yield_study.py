#!/usr/bin/env python
"""Chiplet post-selection and resource-overhead study (Figs. 12-13, 18 style).

For a target logical-qubit quality (a defect-free distance-5 patch) this
script sweeps the fabrication defect rate and the chiplet size, estimates the
yield of post-selected chiplets, converts it into the average number of
fabricated physical qubits per logical qubit, and reports the optimal chiplet
size per defect rate - the co-design decision the paper is about.

Run with ``python examples/chiplet_yield_study.py``.  The per-chiplet
adaptation and distance evaluation dominate the run time, so ``--workers N``
fans the yield Monte-Carlo out over the engine's process pool.
"""

import argparse
from dataclasses import replace

from repro.chiplet import OverheadStudy, defect_intolerant_overhead, optimal_chiplet_size
from repro.engine import Engine, EngineConfig
from repro.noise import DefectModel, LINK_ONLY


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: REPRO_WORKERS or 1)")
    parser.add_argument("--samples", type=int, default=80,
                        help="chiplet samples per (size, rate) cell")
    args = parser.parse_args()
    config = EngineConfig.from_env()
    if args.workers is not None:
        config = replace(config, max_workers=args.workers)
    engine = Engine(config)

    target_distance = 5
    chiplet_sizes = (5, 7, 9)
    defect_rates = (0.0, 0.005, 0.01, 0.02)

    study = OverheadStudy(
        target_distance=target_distance,
        defect_model_kind=LINK_ONLY,
        chiplet_sizes=chiplet_sizes,
        defect_rates=defect_rates,
        samples=args.samples,
        seed=11,
        engine=engine,
    )
    points = study.run()

    print(f"Target: match a defect-free distance-{target_distance} patch "
          f"(link-only defect model)\n")
    header = f"{'rate':>6} | " + " | ".join(f"l={l:>2}" for l in chiplet_sizes) + " | baseline | optimal l"
    print(header)
    print("-" * len(header))
    for rate in defect_rates:
        cells = []
        for size in chiplet_sizes:
            point = next(p for p in points
                         if p.chiplet_size == size and p.defect_rate == rate)
            cells.append(f"{point.overhead:4.1f}x")
        baseline = defect_intolerant_overhead(
            target_distance, DefectModel(LINK_ONLY, rate), target_distance
        ) if rate > 0 else 1.0
        best = optimal_chiplet_size(points, rate)
        print(f"{rate:>6} | " + " | ".join(cells)
              + f" | {baseline:7.1f}x | l={best.chiplet_size} ({best.overhead:.1f}x)")

    print("\nReading: each cell is the average number of fabricated physical "
          "qubits per logical qubit,\nrelative to the ideal no-defect case. "
          "The defect-intolerant baseline explodes with the defect\nrate "
          "while the super-stabilizer approach stays within a small factor "
          "when the chiplet size\nis chosen appropriately (the paper's "
          "headline result).")


if __name__ == "__main__":
    main()
