#!/usr/bin/env python
"""Shor-2048 case study (Tables 1-4 of the paper).

Estimates what it takes to build the 226 x 63 grid of surface-code patches
needed for factoring a 2048-bit integer (Gidney & Ekera), when chiplets are
fabricated with a given defect rate:

* the ideal no-defect cost,
* the defect-intolerant baseline (only zero-defect chiplets are accepted),
* the super-stabilizer approach at a chosen chiplet size,

and the resulting application fidelity from the topological-error model.

The full paper-scale numbers use target distance 27 and chiplet widths 33-39;
that is a long Monte-Carlo run, so this example uses a scaled-down target by
default.  Pass ``--paper-scale`` for the full-size study (several minutes).

Run with ``python examples/shor_2048_estimate.py``.
"""

import argparse
from dataclasses import replace

from repro.chiplet import ShorWorkload
from repro.engine import Engine, EngineConfig
from repro.experiments.paper import table1_and_2_resources, table3_and_4_fidelity


def report(defect_rate: float, chiplet_size: int, workload: ShorWorkload,
           samples: int, engine: Engine) -> None:
    resources = table1_and_2_resources(
        defect_rate=defect_rate,
        chiplet_size=chiplet_size,
        workload=workload,
        samples=samples,
        seed=5,
        engine=engine,
    )
    fidelities = table3_and_4_fidelity(resources, workload=workload)

    print(f"\nDefect rate {defect_rate:.1%} "
          f"(target distance {workload.target_distance}, chiplet width {chiplet_size})")
    print(f"{'approach':>20} | {'l':>3} | {'yield':>9} | {'overhead':>9} | "
          f"{'qubits':>10} | fidelity")
    print("-" * 78)
    for name, est in resources.items():
        print(f"{name:>20} | {est.chiplet_size:>3} | {est.yield_fraction:>9.3g} | "
              f"{est.overhead:>9.3g} | {est.total_fabricated_qubits:>10.3g} | "
              f"{fidelities[name]:.3f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="run the full d=27 / l=33..39 study (slow)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for the yield Monte-Carlo "
                             "(default: REPRO_WORKERS or 1)")
    args = parser.parse_args()

    config = EngineConfig.from_env()
    if args.workers is not None:
        config = replace(config, max_workers=args.workers)
    engine = Engine(config)

    if args.paper_scale:
        workload = ShorWorkload()          # d = 27, 226 x 63 patches, 25e9 rounds
        cases = [(0.001, 33, 200), (0.003, 39, 200)]
    else:
        workload = ShorWorkload(target_distance=9)
        cases = [(0.001, 13, 80), (0.003, 13, 80)]

    print("Shor-2048 resource and fidelity estimates "
          f"({'paper' if args.paper_scale else 'reduced'} scale)")
    for rate, size, samples in cases:
        report(rate, size, workload, samples, engine)


if __name__ == "__main__":
    main()
