#!/usr/bin/env python
"""When should a below-par qubit be disabled?  (Sec. 6 / Fig. 20 study.)

A qubit that is merely *worse* than its neighbours poses a choice: keep it in
the code (and absorb its extra errors) or declare it faulty and pay the
super-stabilizer overhead.  This example runs the stability experiment for
both options across a range of bad-qubit error rates and reports which choice
wins at each good-qubit error rate.

Run with ``python examples/cutoff_fidelity.py``.  The sweep is a batch of
engine tasks (one per strategy/bad-rate/p cell), so ``--workers N`` runs the
cells in parallel and ``--cache DIR`` makes reruns near-instant.
"""

import argparse
from dataclasses import replace

from repro.engine import Engine, EngineConfig
from repro.experiments import run_cutoff_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: REPRO_WORKERS or 1)")
    parser.add_argument("--cache", default=None,
                        help="result-cache directory (default: REPRO_CACHE or off)")
    args = parser.parse_args()
    config = EngineConfig.from_env()
    if args.workers is not None:
        config = replace(config, max_workers=args.workers)
    if args.cache is not None:
        config = replace(config, cache_dir=args.cache)
    engine = Engine(config)

    study = run_cutoff_study(
        size=4,
        rounds=4,
        physical_error_rates=(0.002, 0.004, 0.006),
        bad_qubit_error_rates=(0.05, 0.10, 0.15),
        shots=2000,
        seed=3,
        engine=engine,
    )

    rates = sorted({p.physical_error_rate for p in study.points})
    disable = {p.physical_error_rate: p.logical_error_rate
               for p in study.curve("disable")}

    print("Stability-experiment failure rates (width-4 patch, 4 rounds)\n")
    print(f"{'good-qubit p':>12} | {'disable':>8} | " +
          " | ".join(f"keep {b:.0%}" for b in (0.05, 0.10, 0.15)))
    print("-" * 60)
    for p in rates:
        cells = []
        for bad in (0.05, 0.10, 0.15):
            keep = {q.physical_error_rate: q.logical_error_rate
                    for q in study.curve("keep", bad)}
            cells.append(f"{keep[p]:8.4f}")
        print(f"{p:>12} | {disable[p]:8.4f} | " + " | ".join(cells))

    print("\nReading: when the 'keep' column exceeds the 'disable' column, the "
          "bad qubit is past the\ncutoff and should be treated as faulty "
          "(the paper finds a cutoff around 8-10% for typical\ngood-qubit "
          "error rates).")
    for bad in (0.05, 0.10, 0.15):
        crossover = study.crossover_rate(bad)
        verdict = ("disable below p=" + format(crossover, ".3f")
                   if crossover is not None else "keep (never worse in this window)")
        print(f"  bad-qubit rate {bad:.0%}: {verdict}")


if __name__ == "__main__":
    main()
