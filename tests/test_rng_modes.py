"""Bitgen fast-RNG mode: determinism, invariances, statistics, task wiring.

The bitgen sampler draws noise as combined raw ``uint64`` words plus a
thinning correction (see :mod:`repro.stabilizer.packed`).  It is a *second*
deterministic stream, not a reordering of the exact one, so the suite pins:

* determinism per seed, and bit-identity across the fused (no-trace),
  stepwise (trace) and row-block-split execution shapes — stronger than
  exact mode, whose guarantee is only fused == stepwise;
* ghost-lane hygiene (whole-word draws never leak beyond ``shots``);
* coarse-mask probability and end-to-end channel frequencies against
  analytic values, plus Wilson-CI agreement with exact mode on a real
  surface-code LER point;
* the task-spec plumbing: ``rng_mode`` validation, content-hash and cache
  separation from exact mode, payload round-trips (``"exact"`` payloads
  omit the field, so pre-existing hashes are untouched).
"""

import numpy as np
import pytest

import repro.stabilizer.packed as packed_mod
from repro.analysis.stats import wilson_interval
from repro.core import adapt_patch
from repro.engine import Engine, EngineConfig, LerPointTask
from repro.engine.cache import ResultCache
from repro.engine.executor import ler_cache_key
from repro.engine.scheduler import ShotPolicy
from repro.engine.tasks import CutoffCellTask, task_from_payload
from repro.noise import DefectSet
from repro.service.specs import normalize_spec
from repro.stabilizer import Circuit, PackedFrameSimulator, sample_detectors_packed
from repro.stabilizer.bitpack import popcount
from repro.stabilizer.packed import (
    RNG_MODES,
    _BITGEN_K,
    _compile_bitgen_channel,
    _tail_mask,
)
from repro.surface_code import RotatedSurfaceCodeLayout


def _noisy_circuit(p=0.01) -> Circuit:
    """Every instruction family the sampler implements, bitgen-relevant."""
    c = Circuit(6)
    c.append("R", [0, 1, 2, 3])
    c.append("RX", [4, 5])
    c.append("X_ERROR", [0, 1], p)
    c.append("Z_ERROR", [4], p)
    c.append("Y_ERROR", [2], p)
    c.append("DEPOLARIZE1", [3], p)
    c.append("H", [1])
    c.append("S", [2])
    c.append("CX", [0, 3, 1, 2])
    c.append("CZ", [4, 5])
    c.append("DEPOLARIZE2", [0, 1], p)
    c.append("MR", [3])
    c.append("M", [0, 1])
    c.append("MX", [4])
    c.append("DETECTOR", [0])
    c.append("DETECTOR", [1, 2])
    c.append("M", [2])
    c.append("OBSERVABLE_INCLUDE", [3], 0)
    return c


def _d3_circuit(p=0.002) -> Circuit:
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    task = LerPointTask.from_patch("memory", patch, p)
    return task.build_circuit()


# ----------------------------------------------------------------------
# Sampler-level contracts
# ----------------------------------------------------------------------
class TestBitgenSampler:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="rng_mode"):
            PackedFrameSimulator(_noisy_circuit(), rng_mode="fast")

    def test_modes_tuple(self):
        assert RNG_MODES == ("exact", "bitgen")

    def test_deterministic_per_seed(self):
        c = _noisy_circuit()
        a = PackedFrameSimulator(c, seed=7, rng_mode="bitgen").sample(515)
        b = PackedFrameSimulator(c, seed=7, rng_mode="bitgen").sample(515)
        assert np.array_equal(a.detectors_packed, b.detectors_packed)
        assert np.array_equal(a.observables_packed, b.observables_packed)

    def test_different_seeds_differ(self):
        c = _d3_circuit(0.02)
        a = PackedFrameSimulator(c, seed=1, rng_mode="bitgen").sample(2000)
        b = PackedFrameSimulator(c, seed=2, rng_mode="bitgen").sample(2000)
        assert not np.array_equal(a.detectors_packed, b.detectors_packed)

    def test_differs_from_exact_stream(self):
        c = _d3_circuit(0.02)
        a = PackedFrameSimulator(c, seed=3, rng_mode="bitgen").sample(2000)
        b = PackedFrameSimulator(c, seed=3, rng_mode="exact").sample(2000)
        assert not np.array_equal(a.detectors_packed, b.detectors_packed)

    def test_reseed_reproduces(self):
        sim = PackedFrameSimulator(_d3_circuit(), seed=5, rng_mode="bitgen")
        a = sim.sample(700)
        b = sim.reseed(5).sample(700)
        assert np.array_equal(a.detectors_packed, b.detectors_packed)

    def test_trace_path_bit_identical(self):
        # Stepwise (trace) programs split fused channel runs per
        # instruction; the bitgen word stream is consumed per *row*, so the
        # samples must not move.  Exact mode has the same guarantee; bitgen
        # earns it through the dual-stream design.
        c = _noisy_circuit()
        fused = PackedFrameSimulator(c, seed=11, rng_mode="bitgen").sample(515)
        calls = []
        traced = PackedFrameSimulator(c, seed=11, rng_mode="bitgen").sample(
            515, trace=lambda i, inst, x, z, m: calls.append(i))
        assert calls  # the hook really fired
        assert np.array_equal(fused.detectors_packed, traced.detectors_packed)
        assert np.array_equal(fused.observables_packed,
                              traced.observables_packed)

    def test_block_split_bit_identical(self, monkeypatch):
        # Shrinking _BLOCK_BYTES forces multi-block channel execution;
        # per-row word consumption keeps the samples bit-identical.
        c = _d3_circuit(0.02)
        big = PackedFrameSimulator(c, seed=13, rng_mode="bitgen").sample(3000)
        monkeypatch.setattr(packed_mod, "_BLOCK_BYTES", 1 << 12)
        small = PackedFrameSimulator(c, seed=13, rng_mode="bitgen").sample(3000)
        assert np.array_equal(big.detectors_packed, small.detectors_packed)
        assert np.array_equal(big.observables_packed, small.observables_packed)

    @pytest.mark.parametrize("shots", [1, 63, 64, 65, 515])
    def test_ghost_lanes_stay_clear(self, shots):
        # Whole-word draws must never leak frame bits beyond `shots`.
        s = PackedFrameSimulator(_noisy_circuit(0.4), seed=17,
                                 rng_mode="bitgen").sample(shots)
        tail = _tail_mask(shots)
        for rows in (s.detectors_packed, s.observables_packed):
            if rows.size:
                assert not np.any(rows[:, -1] & ~tail)
        # popcount-based consumers therefore see real shots only.
        assert 0.0 <= s.detection_fraction() <= 1.0

    def test_sample_detectors_packed_passthrough(self):
        c = _noisy_circuit()
        a = sample_detectors_packed(c, 200, seed=19, rng_mode="bitgen")
        b = PackedFrameSimulator(c, seed=19, rng_mode="bitgen").sample(200)
        assert np.array_equal(a.detectors_packed, b.detectors_packed)


class TestBitgenStatistics:
    def test_compile_channel_p_hi_dominates(self):
        p = np.array([0.0, 1e-6, 1e-3, 0.01, 0.3, 0.5, 1.0 - 1e-9, 1.0])
        mbits, full, p_hi, ubits = _compile_bitgen_channel(p)
        assert mbits.shape == (_BITGEN_K, p.size)
        assert np.all(p_hi >= p)           # thinning can only reject
        assert np.all(p_hi - p <= 2.0 ** -_BITGEN_K + 1e-12)
        assert ubits is None               # mixed probabilities
        assert full is not None and bool(full[-1])  # p=1 saturates

    def test_compile_channel_uniform_fast_path(self):
        mbits, full, p_hi, ubits = _compile_bitgen_channel(
            np.full(7, 1e-3))
        assert ubits is not None and len(ubits) == _BITGEN_K
        assert full is None
        # The tuple is exactly the per-row bit columns.
        assert list(ubits) == [bool(b) for b in mbits[:, 0]]

    def test_coarse_mask_frequency(self):
        # X_ERROR(p) directly flips a measured-and-detected qubit: the
        # detection fraction estimates p.  0.3 exercises a dense-ish m
        # with plenty of set and clear bits at K=12.
        p, shots = 0.3, 1 << 15
        c = Circuit(1)
        c.append("R", [0])
        c.append("X_ERROR", [0], p)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        s = PackedFrameSimulator(c, seed=23, rng_mode="bitgen").sample(shots)
        got = popcount(s.detectors_packed) / shots
        assert abs(got - p) < 4 * np.sqrt(p * (1 - p) / shots)

    def test_dep1_pauli_split(self):
        # DEPOLARIZE1(p) on a measured qubit flips M iff the Pauli has an X
        # component (X or Y): detection fraction ~ 2p/3 — this pins the
        # thinning-residual Pauli arithmetic, not just the hit rate.
        p, shots = 0.3, 1 << 15
        c = Circuit(1)
        c.append("R", [0])
        c.append("DEPOLARIZE1", [0], p)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        s = PackedFrameSimulator(c, seed=29, rng_mode="bitgen").sample(shots)
        want = 2 * p / 3
        got = popcount(s.detectors_packed) / shots
        assert abs(got - want) < 4 * np.sqrt(want * (1 - want) / shots)

    def test_ler_wilson_ci_agreement(self):
        # End-to-end statistical equivalence on a real surface-code point:
        # the bitgen failure rate must land inside (an overlap of) the
        # exact-mode Wilson interval.  Fixed seeds keep this deterministic.
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        eng = Engine(EngineConfig(backend="serial"))
        shots = 30000
        cis = {}
        for mode in ("exact", "bitgen"):
            task = LerPointTask.from_patch("memory", patch, 0.005,
                                           rng_mode=mode)
            res = eng.run_ler(task, shots=shots, seed=20240427)
            cis[mode] = wilson_interval(res.failures, res.shots)
        (lo_e, hi_e), (lo_b, hi_b) = cis["exact"], cis["bitgen"]
        assert lo_e <= hi_b and lo_b <= hi_e, f"CIs disjoint: {cis}"


# ----------------------------------------------------------------------
# Task-spec plumbing: hashes, cache separation, payload round-trips
# ----------------------------------------------------------------------
def _tasks(p=0.002):
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    return (LerPointTask.from_patch("memory", patch, p),
            LerPointTask.from_patch("memory", patch, p, rng_mode="bitgen"))


class TestRngModeTaskField:
    def test_invalid_mode_rejected(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        with pytest.raises(ValueError, match="rng_mode"):
            LerPointTask.from_patch("memory", patch, 0.002, rng_mode="turbo")

    def test_content_hashes_never_collide(self):
        exact, bitgen = _tasks()
        assert exact.content_hash() != bitgen.content_hash()

    def test_exact_payload_omits_field(self):
        # Backward compatibility: every pre-existing payload/hash/cache
        # record predates rng_mode, so the default must not change them.
        exact, bitgen = _tasks()
        assert "rng_mode" not in exact.payload()
        assert bitgen.payload()["rng_mode"] == "bitgen"

    def test_payload_round_trip(self):
        exact, bitgen = _tasks()
        for t in (exact, bitgen):
            back = task_from_payload(t.kind, t.payload())
            assert back == t
            assert back.content_hash() == t.content_hash()
        legacy = exact.payload()
        assert task_from_payload("ler_point", legacy).rng_mode == "exact"

    def test_cutoff_cell_round_trip(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        task = CutoffCellTask.from_patch("memory", patch, 0.002,
                                         rng_mode="bitgen")
        assert task.payload()["rng_mode"] == "bitgen"
        back = task_from_payload("cutoff_cell", task.payload())
        assert back == task and back.strategy == "disable"
        other = CutoffCellTask.from_patch("memory", patch, 0.002)
        assert other.content_hash() != task.content_hash()

    def test_service_spec_preserves_mode(self):
        _, bitgen = _tasks()
        spec = normalize_spec({"kind": "ler", "task_kind": bitgen.kind,
                               "task": bitgen.payload(),
                               "policy": ShotPolicy.fixed(64).payload(),
                               "seed": 5})
        assert spec["task"]["rng_mode"] == "bitgen"
        rebuilt = task_from_payload(spec["task_kind"], spec["task"])
        assert rebuilt == bitgen

    def test_cache_records_never_collide(self, tmp_path):
        # Same parameters, same seed, same policy: the two modes must land
        # in *distinct* on-disk records holding their own numbers.
        exact, bitgen = _tasks()
        eng = Engine(EngineConfig(backend="serial",
                                  cache_dir=str(tmp_path)))
        r_exact = eng.run_ler(exact, shots=2000, seed=20240427)
        r_bitgen = eng.run_ler(bitgen, shots=2000, seed=20240427)

        policy = ShotPolicy.fixed(2000)
        seed = np.random.SeedSequence(20240427)
        k_exact = ler_cache_key(exact, seed, policy, eng.config.shard_size)
        k_bitgen = ler_cache_key(bitgen, seed, policy, eng.config.shard_size)
        assert k_exact != k_bitgen

        cache = ResultCache(str(tmp_path))
        rec_exact, rec_bitgen = cache.get(k_exact), cache.get(k_bitgen)
        assert rec_exact is not None and rec_bitgen is not None
        assert rec_exact["failures"] == r_exact.failures
        assert rec_bitgen["failures"] == r_bitgen.failures
        # Warm rerun of either mode replays its own record.
        assert eng.run_ler(bitgen, shots=2000,
                           seed=20240427).failures == r_bitgen.failures

    def test_exact_fixed_seed_regression_unchanged(self):
        # The paper-reproduction pin: bitgen's arrival must not move the
        # exact stream (d=3: 28 failures at p=2e-3, seed 20240427, 4000
        # shots — same count PR 3 froze).
        exact, _ = _tasks()
        eng = Engine(EngineConfig(backend="serial"))
        assert eng.run_ler(exact, shots=4000, seed=20240427).failures == 28
