"""Tests for the parallel Monte-Carlo execution engine (repro.engine).

Covers the engine's three load-bearing guarantees:

* determinism — bit-identical failure counts for ``max_workers`` 1 and 4,
  and single-shard runs identical to the legacy direct simulation;
* caching — hit/miss behaviour, schema-bump invalidation, corruption safety;
* adaptive scheduling — early stop on target failures / CI width, with the
  guaranteed minimum number of shots always honoured.
"""

import numpy as np
import pytest

from repro.analysis.stats import BinomialEstimate
from repro.core import adapt_patch
from repro.decoder.matching import MatchingGraph, MwpmDecoder
from repro.engine import (
    CutoffCellTask,
    Engine,
    EngineConfig,
    LerPointTask,
    PatchSampleTask,
    ResultCache,
    ShotPolicy,
    ShotScheduler,
    YieldTask,
    child_stream,
    seed_fingerprint,
    spawn_streams,
    task_from_payload,
)
from repro.engine.rng import from_fingerprint
from repro.experiments import run_memory_experiment, sample_defective_patches
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT
from repro.noise.circuit_noise import CircuitNoiseModel
from repro.stabilizer.dem import build_detector_error_model
from repro.stabilizer.frame import FrameSimulator
from repro.surface_code import RotatedSurfaceCodeLayout, build_memory_circuit
from repro.surface_code.layout import StabilityLayout


def d3_task(p: float = 0.01, decoder: str = "mwpm") -> LerPointTask:
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    return LerPointTask.from_patch("memory", patch, p, decoder=decoder)


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
class TestRngStreams:
    def test_child_stream_is_random_access_spawn(self):
        root = np.random.SeedSequence(42)
        spawned = np.random.SeedSequence(42).spawn(5)
        for i in (0, 2, 4):
            a = child_stream(root, i).generate_state(4)
            assert np.array_equal(a, spawned[i].generate_state(4))

    def test_spawn_streams_matches_child_stream(self):
        streams = spawn_streams(7, 3)
        for i, s in enumerate(streams):
            assert np.array_equal(s.generate_state(2),
                                  child_stream(7, i).generate_state(2))

    def test_streams_are_order_independent(self):
        late = child_stream(3, 17).generate_state(4)
        again = child_stream(3, 17).generate_state(4)
        assert np.array_equal(late, again)

    def test_fingerprint_roundtrip(self):
        seq = child_stream(123, 4)
        fp = seed_fingerprint(seq)
        rebuilt = from_fingerprint(fp)
        assert np.array_equal(seq.generate_state(4), rebuilt.generate_state(4))

    def test_unseeded_fingerprint_is_none(self):
        assert seed_fingerprint(None) is None
        assert from_fingerprint(None) is None


# ----------------------------------------------------------------------
# Task specs
# ----------------------------------------------------------------------
class TestTaskSpecs:
    def test_content_hash_is_stable_and_sensitive(self):
        a, b = d3_task(0.01), d3_task(0.01)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != d3_task(0.02).content_hash()
        assert a.content_hash() != d3_task(0.01, decoder="unionfind").content_hash()

    def test_task_rebuilds_equivalent_patch(self):
        layout = RotatedSurfaceCodeLayout(5)
        patch = adapt_patch(layout, DefectSet.of(qubits=[(5, 5)]))
        task = LerPointTask.from_patch("memory", patch, 0.01)
        rebuilt = task.patch()
        assert rebuilt.disabled_data == patch.disabled_data
        assert rebuilt.stabilizers == patch.stabilizers

    def test_unknown_decoder_rejected_eagerly(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        with pytest.raises(ValueError):
            LerPointTask.from_patch("memory", patch, 0.01, decoder="magic")

    def test_cutoff_cell_hash_differs_by_strategy(self):
        patch = adapt_patch(StabilityLayout(4), DefectSet.of())
        base = LerPointTask.from_patch("stability", patch, 0.005, rounds=3)
        fields = dict(
            experiment=base.experiment, layout_kind=base.layout_kind,
            size=base.size, faulty_qubits=base.faulty_qubits,
            faulty_links=base.faulty_links,
            physical_error_rate=base.physical_error_rate,
            rounds=base.rounds, noise=base.noise, decoder=base.decoder,
        )
        keep = CutoffCellTask(strategy="keep", bad_qubit_error_rate=0.1, **fields)
        disable = CutoffCellTask(strategy="disable", **fields)
        assert keep.content_hash() != disable.content_hash()

    def test_payload_round_trip_preserves_hash(self):
        patch = adapt_patch(StabilityLayout(4), DefectSet.of())
        base = LerPointTask.from_patch("stability", patch, 0.005, rounds=3)
        cutoff = CutoffCellTask(
            strategy="keep", bad_qubit_error_rate=0.1,
            experiment=base.experiment, layout_kind=base.layout_kind,
            size=base.size, faulty_qubits=base.faulty_qubits,
            faulty_links=base.faulty_links,
            physical_error_rate=base.physical_error_rate,
            rounds=base.rounds, noise=base.noise, decoder=base.decoder)
        tasks = [
            d3_task(0.01, decoder="unionfind"),
            base,
            cutoff,
            PatchSampleTask(size=5, defect_model_kind=LINK_AND_QUBIT,
                            defect_rate=0.02, num_patches=3, min_distance=3),
            YieldTask(chiplet_size=7, defect_model_kind=LINK_AND_QUBIT,
                      defect_rate=0.01, samples=10, target_distance=5,
                      boundary=("standard-3", True, False, None)),
        ]
        for task in tasks:
            rebuilt = task_from_payload(task.kind, task.payload())
            assert rebuilt == task
            assert rebuilt.content_hash() == task.content_hash()

    def test_task_from_payload_rejects_junk(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            task_from_payload("bogus", {})
        with pytest.raises(ValueError, match="must be an object"):
            task_from_payload("ler_point", None)
        with pytest.raises(ValueError, match="malformed"):
            task_from_payload("ler_point", {"nope": 1})


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_single_shard_matches_legacy_simulation(self):
        """Default engine path == the historical direct FrameSimulator path."""
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        circuit = build_memory_circuit(patch, CircuitNoiseModel.standard(0.01), 3)
        dem = build_detector_error_model(circuit)
        decoder = MwpmDecoder(MatchingGraph(dem))
        samples = FrameSimulator(circuit, seed=9).sample(400)
        legacy = decoder.decode_batch(samples.detectors).logical_error_count(
            samples.observables)

        result = run_memory_experiment(patch, 0.01, shots=400, seed=9)
        assert result.failures == legacy

    @pytest.mark.parametrize("workers", [1, 4])
    def test_sharded_runs_are_worker_count_invariant(self, workers):
        engine = Engine(EngineConfig(max_workers=workers, shard_size=64))
        result = engine.run_ler(d3_task(), shots=512, seed=7)
        assert result.num_shards == 8
        # Reference values from a serial run; the parametrised parallel run
        # must reproduce them bit for bit.
        serial = Engine(EngineConfig(max_workers=1, shard_size=64)).run_ler(
            d3_task(), shots=512, seed=7)
        assert result.failures == serial.failures
        assert result.shots == serial.shots

    def test_run_ler_many_parallel_matches_serial(self):
        tasks = [d3_task(p) for p in (0.005, 0.01, 0.02)]
        serial = Engine(EngineConfig(max_workers=1)).run_ler_many(
            tasks, shots=300, seed=5)
        parallel = Engine(EngineConfig(max_workers=4)).run_ler_many(
            tasks, shots=300, seed=5)
        assert [r.failures for r in serial] == [r.failures for r in parallel]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_patch_sampling_is_worker_count_invariant(self, workers):
        model = DefectModel(LINK_AND_QUBIT, 0.03)
        engine = Engine(EngineConfig(max_workers=workers))
        patches = sample_defective_patches(5, model, 3, seed=11,
                                           min_distance=3, engine=engine)
        assert len(patches) == 3
        reference = sample_defective_patches(
            5, model, 3, seed=11, min_distance=3,
            engine=Engine(EngineConfig(max_workers=1)))
        assert [p.defects for p in patches] == [p.defects for p in reference]


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_returns_identical_numbers(self, tmp_path):
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        first = engine.run_ler(d3_task(), shots=300, seed=3)
        second = engine.run_ler(d3_task(), shots=300, seed=3)
        assert not first.from_cache
        assert second.from_cache
        assert second.failures == first.failures
        assert second.shots == first.shots

    def test_different_seed_or_shots_misses(self, tmp_path):
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        engine.run_ler(d3_task(), shots=300, seed=3)
        assert not engine.run_ler(d3_task(), shots=300, seed=4).from_cache
        assert not engine.run_ler(d3_task(), shots=400, seed=3).from_cache

    def test_unseeded_runs_are_never_cached(self, tmp_path):
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        engine.run_ler(d3_task(), shots=200, seed=None)
        assert len(ResultCache(tmp_path)) == 0

    def test_schema_bump_invalidates(self, tmp_path):
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        engine.run_ler(d3_task(), shots=300, seed=3)
        cache = ResultCache(tmp_path)
        keys = list(cache.keys())
        assert len(keys) == 1
        # Same files read under a bumped schema version: all misses.
        bumped = ResultCache(tmp_path, schema_version=cache.schema_version + 1)
        assert bumped.get(keys[0]) is None
        assert cache.get(keys[0]) is not None

    def test_corrupt_record_is_a_miss(self, tmp_path):
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        engine.run_ler(d3_task(), shots=300, seed=3)
        cache = ResultCache(tmp_path)
        key = next(iter(cache.keys()))
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        rerun = engine.run_ler(d3_task(), shots=300, seed=3)
        assert not rerun.from_cache  # recomputed, not crashed

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        cache.put("cd" * 32, {"x": 2})
        assert len(cache) == 2
        assert cache.invalidate("ab" * 32)
        assert not cache.invalidate("ab" * 32)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_foreign_files_are_invisible(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        # Files a co-located service (or an editor) might drop in the tree:
        (tmp_path / "service.db").write_bytes(b"SQLite format 3\x00")
        (tmp_path / "service.db-wal").write_bytes(b"wal")
        (tmp_path / "ab" / "notes.json").write_text("{}")      # non-hex stem
        (tmp_path / "ab" / f"{'cd' * 32}.json").write_text("{}")  # wrong dir
        (tmp_path / "README").write_text("hands off")
        assert list(cache.keys()) == ["ab" * 32]
        assert len(cache) == 1
        assert cache.get("ab" * 32)["x"] == 1
        # clear() removes only our record and leaves foreign files alone.
        assert cache.clear() == 1
        assert (tmp_path / "service.db").exists()
        assert (tmp_path / "ab" / "notes.json").exists()
        assert (tmp_path / "ab" / f"{'cd' * 32}.json").exists()

    def test_torn_write_is_invisible_until_replaced(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        # A writer killed mid-put leaves only a tmp file, never a torn
        # record under the final name.
        orphan = tmp_path / "ab" / "tmp1234.tmp"
        orphan.write_text('{"x": 2, "schema_')
        assert list(cache.keys()) == ["ab" * 32]
        assert cache.get("ab" * 32) == {"x": 1,
                                        "schema_version": cache.schema_version}
        assert cache.clear() == 1
        assert not orphan.exists()  # clear sweeps the orphan

    def test_patch_sampling_uses_cache(self, tmp_path):
        model = DefectModel(LINK_AND_QUBIT, 0.03)
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        first = sample_defective_patches(5, model, 2, seed=1, min_distance=3,
                                         engine=engine)
        assert len(ResultCache(tmp_path)) == 1
        second = sample_defective_patches(5, model, 2, seed=1, min_distance=3,
                                          engine=engine)
        assert [p.defects for p in first] == [p.defects for p in second]


# ----------------------------------------------------------------------
# Adaptive scheduler
# ----------------------------------------------------------------------
class TestShotScheduler:
    def test_fixed_policy_plans_everything_in_one_wave(self):
        sched = ShotScheduler(ShotPolicy.fixed(1000), shard_size=256)
        wave = sched.next_wave()
        assert [n for _, n in wave] == [256, 256, 256, 232]
        assert [i for i, _ in wave] == [0, 1, 2, 3]
        sched.record(5, 1000)
        assert sched.next_wave() == []

    def test_early_stop_on_target_failures(self):
        policy = ShotPolicy.adaptive(10**6, min_shots=100, target_failures=50)
        sched = ShotScheduler(policy, shard_size=100)
        sched.record(60, sum(n for _, n in sched.next_wave()))
        assert sched.should_stop()
        assert sched.next_wave() == []
        assert sched.shots_done == 100

    def test_minimum_shots_guaranteed_even_with_failures(self):
        policy = ShotPolicy.adaptive(10**6, min_shots=400, target_failures=1)
        sched = ShotScheduler(policy, shard_size=100)
        wave = sched.next_wave()
        # First wave covers the guaranteed minimum, not less.
        assert sum(n for _, n in wave) == 400
        sched.record(10, 200)  # partial bookkeeping below the minimum
        assert not sched.should_stop()
        sched.record(0, 200)
        assert sched.should_stop()

    def test_runs_to_max_without_failures(self):
        policy = ShotPolicy.adaptive(1000, min_shots=100, target_failures=10)
        sched = ShotScheduler(policy, shard_size=1000)
        total = 0
        while True:
            wave = sched.next_wave()
            if not wave:
                break
            shots = sum(n for _, n in wave)
            total += shots
            sched.record(0, shots)
        assert total == 1000

    def test_waves_grow_geometrically(self):
        policy = ShotPolicy.adaptive(10_000, min_shots=100, target_failures=10**9)
        sched = ShotScheduler(policy, shard_size=10_000)
        sizes = []
        for _ in range(4):
            wave = sched.next_wave()
            shots = sum(n for _, n in wave)
            sizes.append(shots)
            sched.record(0, shots)
        assert sizes == [100, 200, 400, 800]

    def test_rel_ci_halfwidth_stop(self):
        policy = ShotPolicy.adaptive(10**9, min_shots=100,
                                     target_failures=None,
                                     target_rel_halfwidth=0.5)
        sched = ShotScheduler(policy, shard_size=10**6)
        sched.next_wave()
        sched.record(80, 100)  # plentiful failures: CI is tight
        assert sched.should_stop()

    def test_adaptive_engine_run_stops_early_at_high_p(self):
        engine = Engine(EngineConfig(shard_size=128))
        policy = ShotPolicy.adaptive(10_000, min_shots=256, target_failures=20)
        result = engine.run_ler(d3_task(0.03), policy=policy, seed=1)
        assert result.failures >= 20
        assert 256 <= result.shots < 10_000

    def test_adaptive_engine_run_exhausts_budget_at_low_p(self):
        engine = Engine(EngineConfig(shard_size=512))
        policy = ShotPolicy.adaptive(1024, min_shots=512, target_failures=10**6)
        result = engine.run_ler(d3_task(0.001), policy=policy, seed=1)
        assert result.shots == 1024

    def test_adaptive_runs_are_worker_count_invariant(self):
        policy = ShotPolicy.adaptive(4096, min_shots=256, target_failures=25)
        runs = [
            Engine(EngineConfig(max_workers=w, shard_size=128)).run_ler(
                d3_task(0.02), policy=policy, seed=13)
            for w in (1, 4)
        ]
        assert runs[0].failures == runs[1].failures
        assert runs[0].shots == runs[1].shots


# ----------------------------------------------------------------------
# Cost estimation: pinned to the scheduler's own wave arithmetic
# ----------------------------------------------------------------------
class TestEstimatedCost:
    """``ShotPolicy.estimated_cost`` must equal what a real ``ShotScheduler``
    run would do — these tests drive one independently and compare."""

    @staticmethod
    def drive(policy, shard_size, expected_rate=0.0):
        """Total shots of a scheduler fed ``expected_rate`` failures."""
        sched = ShotScheduler(policy, shard_size)
        credited = 0
        while True:
            wave = sched.next_wave()
            if not wave:
                return sched.shots_done
            shots = sum(n for _, n in wave)
            expected = int(expected_rate * (sched.shots_done + shots))
            failures = min(max(expected - credited, 0), shots)
            credited += failures
            sched.record(failures, shots)

    @pytest.mark.parametrize("shots, shard", [(1000, 256), (4096, 4096),
                                              (100, 256), (5000, 999)])
    def test_fixed_policy_costs_exactly_its_budget(self, shots, shard):
        policy = ShotPolicy.fixed(shots)
        assert policy.estimated_cost(shard) == self.drive(policy, shard)
        assert policy.estimated_cost(shard) == shots

    def test_adaptive_zero_rate_runs_to_max(self):
        policy = ShotPolicy.adaptive(10_000, min_shots=100,
                                     target_failures=10)
        assert policy.estimated_cost(512) == self.drive(policy, 512)
        assert policy.estimated_cost(512) == 10_000

    @pytest.mark.parametrize("rate", [0.005, 0.02, 0.1])
    def test_adaptive_expected_rate_stops_early(self, rate):
        policy = ShotPolicy.adaptive(10**6, min_shots=100,
                                     target_failures=20)
        cost = policy.estimated_cost(256, rate)
        assert cost == self.drive(policy, 256, rate)
        assert 100 <= cost < 10**6  # early stop, above the guaranteed floor

    def test_higher_rate_never_costs_more(self):
        policy = ShotPolicy.adaptive(10**5, min_shots=100, target_failures=20)
        costs = [policy.estimated_cost(256, r)
                 for r in (0.0, 0.001, 0.01, 0.1)]
        assert costs == sorted(costs, reverse=True)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ShotPolicy.fixed(100).estimated_cost(256, -0.1)


# ----------------------------------------------------------------------
# Engine odds and ends
# ----------------------------------------------------------------------
class TestEngineApi:
    def test_requires_exactly_one_budget_spec(self):
        engine = Engine(EngineConfig())
        with pytest.raises(ValueError):
            engine.run_ler(d3_task())
        with pytest.raises(ValueError):
            engine.run_ler(d3_task(), shots=10, policy=ShotPolicy.fixed(10))

    def test_from_env_parses_variables(self):
        cfg = EngineConfig.from_env({"REPRO_WORKERS": "3",
                                     "REPRO_CACHE": "/tmp/x",
                                     "REPRO_SHARD_SIZE": "99"})
        assert cfg == EngineConfig(max_workers=3, shard_size=99,
                                   cache_dir="/tmp/x")
        assert EngineConfig.from_env({}) == EngineConfig()

    def test_estimate_matches_counts(self):
        engine = Engine(EngineConfig())
        result = engine.run_ler(d3_task(0.02), shots=300, seed=2)
        assert result.estimate == BinomialEstimate(result.failures, 300)
        mem = result.to_memory_result()
        assert mem.failures == result.failures
        assert mem.shots == 300
        assert mem.decoder == "mwpm"
