"""Tests for the reference CHP tableau simulator."""

import numpy as np
import pytest

from repro.stabilizer import Circuit, TableauSimulator


class TestGates:
    def test_reset_then_measure_is_zero(self):
        sim = TableauSimulator(1, seed=0)
        sim.reset_z(0)
        assert sim.measure_z(0) is False

    def test_x_flip_measured(self):
        sim = TableauSimulator(1, seed=0)
        sim.reset_z(0)
        sim.x_gate(0)
        assert sim.measure_z(0) is True

    def test_plus_state_x_measurement_deterministic(self):
        sim = TableauSimulator(1, seed=0)
        sim.reset_x(0)
        assert sim.measure_x(0) is False

    def test_plus_state_z_measurement_random(self):
        outcomes = set()
        for seed in range(20):
            sim = TableauSimulator(1, seed=seed)
            sim.reset_x(0)
            outcomes.add(sim.measure_z(0))
        assert outcomes == {True, False}

    def test_bell_pair_correlated(self):
        for seed in range(10):
            sim = TableauSimulator(2, seed=seed)
            sim.reset_z(0)
            sim.reset_z(1)
            sim.h(0)
            sim.cx(0, 1)
            a = sim.measure_z(0)
            b = sim.measure_z(1)
            assert a == b

    def test_ghz_parity(self):
        for seed in range(10):
            sim = TableauSimulator(3, seed=seed)
            for q in range(3):
                sim.reset_z(q)
            sim.h(0)
            sim.cx(0, 1)
            sim.cx(1, 2)
            results = [sim.measure_z(q) for q in range(3)]
            assert len(set(results)) == 1

    def test_cz_equivalent_to_hadamard_conjugated_cx(self):
        sim = TableauSimulator(2, seed=1)
        sim.reset_x(0)
        sim.reset_x(1)
        sim.cz(0, 1)
        sim.cz(0, 1)
        # CZ twice is identity: both qubits still in |+>.
        assert sim.measure_x(0) is False
        assert sim.measure_x(1) is False

    def test_s_gate_squares_to_z(self):
        sim = TableauSimulator(1, seed=0)
        sim.reset_x(0)
        sim.s(0)
        sim.s(0)
        # S^2 = Z maps |+> to |->.
        assert sim.measure_x(0) is True

    def test_num_qubits_must_be_positive(self):
        with pytest.raises(ValueError):
            TableauSimulator(0)


class TestCircuitExecution:
    def test_measurement_record_indices(self):
        c = Circuit(2)
        c.append("R", [0, 1])
        c.append("X", [1])
        c.append("M", [0, 1])
        c.append("DETECTOR", [0])
        c.append("DETECTOR", [1])
        res = TableauSimulator(2, seed=0).run(c)
        assert res.detectors == [False, True]
        assert res.measurements == [False, True]

    def test_reset_does_not_pollute_record(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("R", [0])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        res = TableauSimulator(1, seed=0).run(c)
        assert len(res.measurements) == 1

    def test_mr_resets(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("X", [0])
        c.append("MR", [0])
        c.append("M", [0])
        c.append("DETECTOR", [1])
        res = TableauSimulator(1, seed=0).run(c)
        assert res.measurements == [True, False]
        assert res.detectors == [False]

    def test_observable_accumulation(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("X", [0])
        c.append("M", [0])
        c.append("OBSERVABLE_INCLUDE", [0], 0)
        res = TableauSimulator(1, seed=0).run(c)
        assert res.observables == [True]

    def test_noise_channels_ignored(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("X_ERROR", [0], 1.0)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        res = TableauSimulator(1, seed=0).run(c)
        assert res.detectors == [False]

    def test_all_detectors_zero_helper(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        assert TableauSimulator(1, seed=0).run(c).all_detectors_zero()


class TestAgreementWithFrameSimulator:
    def test_random_clifford_circuit_detector_determinism_agrees(self):
        """Circuits whose detectors the frame simulator treats as deterministic
        must indeed be deterministic according to the exact simulator."""
        rng = np.random.default_rng(12)
        for trial in range(5):
            c = Circuit(4)
            c.append("R", [0, 1, 2, 3])
            for _ in range(12):
                kind = rng.integers(0, 3)
                if kind == 0:
                    c.append("H", [int(rng.integers(0, 4))])
                elif kind == 1:
                    a, b = rng.choice(4, size=2, replace=False)
                    c.append("CX", [int(a), int(b)])
                else:
                    c.append("X", [int(rng.integers(0, 4))])
            # Measure twice and compare: always a valid detector.
            c.append("M", [0, 1, 2, 3])
            c.append("MR", [0, 1, 2, 3])
            res = TableauSimulator(4, seed=trial).run(c)
            # Z-basis measurement after reset-only Clifford circuit without H
            # may be random; we only check the simulator runs and records.
            assert len(res.measurements) == 8
