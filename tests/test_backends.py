"""Tests for the pluggable execution backends.

The load-bearing contract: **where a shard runs is invisible in the
numbers**.  A fixed-seed sweep must produce bit-identical merged results —
and byte-identical on-disk cache records — under the serial backend, the
process-pool backend at any width, and the socket backend against any
number of localhost workers, including every cache warm/cold permutation.
Plus the infrastructure semantics: broken process pools are evicted and
rebuilt (a worker OOM-kill must not poison every later run), remote job
errors keep connections alive, and dead fleets fail fast instead of
hanging.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import adapt_patch
from repro.engine import (
    Engine,
    EngineConfig,
    LerPointTask,
    ShotPolicy,
    SweepItem,
    YieldTask,
)
from repro.engine.backends import (
    BackendError,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    create_backend,
)
from repro.engine.backends import process as process_backend
from repro.engine.executor import _run_ler_shard
from repro.noise import DefectSet, LINK_AND_QUBIT
from repro.surface_code import RotatedSurfaceCodeLayout

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Localhost worker fleet (two real `python -m repro.engine.worker` procs)
# ----------------------------------------------------------------------
def _launch_worker():
    env = dict(os.environ)
    # The worker must resolve pickled-by-reference functions: repro itself,
    # plus this test module (for the _identity/_raise_value_error helpers).
    extra = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    if env.get("PYTHONPATH"):
        extra.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(extra)
    # The wire allowlist admits repro/numpy only; grant this test module
    # so the workers will unpickle the helpers above.
    env["REPRO_WIRE_ALLOW"] = "test_backends"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine.worker", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT)
    line = proc.stdout.readline().strip()
    parts = line.split()
    assert parts[:1] == ["REPRO_WORKER_LISTENING"], line
    return proc, (parts[1], int(parts[2]))


@pytest.fixture(scope="module")
def worker_hosts():
    """Two localhost repro.engine.worker processes, shared by the module."""
    procs, hosts = [], []
    try:
        for _ in range(2):
            proc, host = _launch_worker()
            procs.append(proc)
            hosts.append(host)
        yield tuple(hosts)
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)


def _engines(worker_hosts, **kwargs):
    """One engine per backend under test (socket uses both workers)."""
    return {
        "serial": Engine(EngineConfig(backend="serial", **kwargs)),
        "process-2": Engine(EngineConfig(max_workers=2, **kwargs)),
        "process-4": Engine(EngineConfig(max_workers=4, **kwargs)),
        "socket-2": Engine(EngineConfig(backend="socket",
                                        hosts=worker_hosts, **kwargs)),
    }


def d3_task(p: float = 0.01) -> LerPointTask:
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    return LerPointTask.from_patch("memory", patch, p)


def ler_tuple(r):
    return (r.failures, r.shots, r.num_shards, r.num_detectors,
            r.num_dem_errors)


def yield_tuple(r):
    return (r.samples, r.accepted, r.distance_counts,
            r.accepted_distance_counts)


def mixed_items():
    return [
        SweepItem(d3_task(0.005),
                  ShotPolicy.adaptive(2048, min_shots=128,
                                      target_failures=15), 1),
        SweepItem(d3_task(0.01), ShotPolicy.fixed(640), 2),
        SweepItem(d3_task(0.02), ShotPolicy.fixed(64), 3),
    ]


def yield_task(samples=60):
    return YieldTask(chiplet_size=7, defect_model_kind=LINK_AND_QUBIT,
                     defect_rate=0.01, samples=samples, target_distance=5)


# ----------------------------------------------------------------------
# Parity: every backend produces bit-identical numbers
# ----------------------------------------------------------------------
class TestBackendParity:
    def test_mixed_sweep_bit_identical_across_all_backends(self, worker_hosts):
        """LER sweep (adaptive + fixed cells) across serial / process 2 and 4
        / socket with two localhost workers: one set of numbers."""
        outcomes = {}
        for name, engine in _engines(worker_hosts, shard_size=128).items():
            outcomes[name] = [ler_tuple(r)
                              for r in engine.run_sweep(mixed_items())]
        assert len({tuple(v) for v in outcomes.values()}) == 1, outcomes

    def test_yield_task_bit_identical_across_all_backends(self, worker_hosts):
        outcomes = {}
        for name, engine in _engines(worker_hosts).items():
            outcomes[name] = yield_tuple(engine.run_yield(yield_task(),
                                                          seed=11))
        assert len({str(v) for v in outcomes.values()}) == 1, outcomes

    def test_mixed_ler_and_yield_sweep_through_one_socket_engine(
            self, worker_hosts):
        """The acceptance scenario: LER + yield work through SocketBackend
        in one engine matches the serial reference for both task kinds."""
        serial = Engine(EngineConfig(backend="serial", shard_size=128))
        sock = Engine(EngineConfig(backend="socket", hosts=worker_hosts,
                                   shard_size=128))
        ler_ref = [ler_tuple(r) for r in serial.run_sweep(mixed_items())]
        yield_ref = yield_tuple(serial.run_yield(yield_task(), seed=7))
        assert [ler_tuple(r) for r in sock.run_sweep(mixed_items())] == ler_ref
        assert yield_tuple(sock.run_yield(yield_task(), seed=7)) == yield_ref

    def test_patch_sampling_bit_identical_serial_vs_socket(self, worker_hosts):
        from repro.engine import PatchSampleTask

        task = PatchSampleTask(size=5, defect_model_kind=LINK_AND_QUBIT,
                               defect_rate=0.02, num_patches=4)
        serial = Engine(EngineConfig(backend="serial"))
        sock = Engine(EngineConfig(backend="socket", hosts=worker_hosts))
        ref = serial.sample_patches(task, seed=13)
        got = sock.sample_patches(task, seed=13)
        assert ([sorted(p.defects.faulty_qubits) for p in got]
                == [sorted(p.defects.faulty_qubits) for p in ref])


# ----------------------------------------------------------------------
# Parity: cache records are backend-invariant (warm/cold permutations)
# ----------------------------------------------------------------------
class TestBackendCacheParity:
    def test_cache_records_byte_identical_across_backends(self, worker_hosts,
                                                          tmp_path):
        """A cold run under each backend writes byte-for-byte the same
        record files: same keys (backend excluded from the key), same
        content (results backend-invariant)."""
        from dataclasses import replace

        blobs = {}
        for name, engine in _engines(worker_hosts, shard_size=128).items():
            cache_dir = tmp_path / name
            engine = Engine(replace(engine.config, cache_dir=str(cache_dir)))
            results = engine.run_sweep(mixed_items())
            assert not any(r.from_cache for r in results)
            engine.run_yield(yield_task(), seed=11)
            blobs[name] = {
                p.relative_to(cache_dir): p.read_bytes()
                for p in sorted(cache_dir.rglob("*.json"))
            }
        reference = blobs.pop("serial")
        assert reference  # the sweep + yield run really wrote records
        for name, blob in blobs.items():
            assert blob == reference, f"{name} cache diverged from serial"

    def test_cold_socket_run_warms_serial_run(self, worker_hosts, tmp_path):
        """Cross-backend warm hits: results computed by the socket fleet
        answer a later serial engine from cache, and vice versa."""
        sock = Engine(EngineConfig(backend="socket", hosts=worker_hosts,
                                   shard_size=128, cache_dir=str(tmp_path)))
        serial = Engine(EngineConfig(backend="serial", shard_size=128,
                                     cache_dir=str(tmp_path)))
        cold = sock.run_sweep(mixed_items())
        warm = serial.run_sweep(mixed_items())
        assert all(r.from_cache for r in warm)
        assert [ler_tuple(r) for r in cold] == [ler_tuple(r) for r in warm]

    def test_partially_warm_socket_sweep(self, worker_hosts, tmp_path):
        """Warm one item serially, then sweep everything over the fleet:
        hits resolve up front, only misses travel to the workers."""
        serial = Engine(EngineConfig(backend="serial", shard_size=128,
                                     cache_dir=str(tmp_path)))
        items = mixed_items()
        serial.run_sweep([items[1]])
        sock = Engine(EngineConfig(backend="socket", hosts=worker_hosts,
                                   shard_size=128, cache_dir=str(tmp_path)))
        results = sock.run_sweep(mixed_items())
        assert [r.from_cache for r in results] == [False, True, False]
        ref = Engine(EngineConfig(backend="serial",
                                  shard_size=128)).run_sweep(mixed_items())
        assert [ler_tuple(r) for r in results] == [ler_tuple(r) for r in ref]


# ----------------------------------------------------------------------
# ProcessPoolBackend: broken-pool eviction and rebuild
# ----------------------------------------------------------------------
def _kill_worker_process() -> None:
    """Simulate a worker OOM-kill: die without cleanup, breaking the pool."""
    os._exit(13)


def _identity(x):
    return x


class TestBrokenPoolRecovery:
    def test_broken_pool_is_evicted_and_next_run_succeeds(self):
        """Regression: a worker death used to poison the _POOLS registry —
        every later run reused the broken pool and failed forever."""
        engine = Engine(EngineConfig(max_workers=2))
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            engine.starmap(_kill_worker_process, [() for _ in range(4)])
        # The poisoned pool must be gone from the registry...
        assert 2 not in process_backend._POOLS
        # ...and the very next run (same engine!) gets a fresh pool.
        task = d3_task()
        out = engine.starmap(_run_ler_shard, [(task, 1, 64), (task, 2, 64)])
        assert len(out) == 2

    def test_submit_on_stale_broken_pool_rebuilds_transparently(self):
        """A pool broken *outside* any backend call (so note_failure never
        ran and the registry is stale) is replaced on the next submit
        instead of raising forever."""
        from concurrent.futures.process import BrokenProcessPool

        pool = process_backend._get_pool(2)
        fut = pool.submit(_kill_worker_process)
        with pytest.raises(BrokenProcessPool):
            fut.result(timeout=60)
        assert process_backend._POOLS[2] is pool  # stale corpse registered
        backend = ProcessPoolBackend(2)
        assert backend.submit(_identity, (42,)).result(timeout=60) == 42
        assert process_backend._POOLS[2] is not pool

    def test_sweep_failure_still_cancels_and_pool_survives(self):
        engine = Engine(EngineConfig(max_workers=2))
        task = d3_task()
        jobs = [(task, 1, 64), (task, 2, -1)] + [(task, i, 64)
                                                 for i in range(3, 20)]
        with pytest.raises(ValueError):
            engine.starmap(_run_ler_shard, jobs)
        out = engine.starmap(_run_ler_shard, [(task, 1, 64), (task, 2, 64)])
        assert len(out) == 2


# ----------------------------------------------------------------------
# SocketBackend failure semantics
# ----------------------------------------------------------------------
def _raise_value_error(message):
    raise ValueError(message)


class TestSocketBackendSemantics:
    def test_remote_job_error_propagates_and_connection_survives(
            self, worker_hosts):
        backend = SocketBackend(worker_hosts)
        try:
            with pytest.raises(ValueError, match="boom"):
                backend.map(_raise_value_error, [("boom",)])
            # The connection kept serving: a healthy job still runs.
            assert backend.map(_identity, [(7,), (8,)]) == [7, 8]
        finally:
            backend.shutdown()

    def test_dead_fleet_fails_fast_not_hangs(self):
        # A port from the dynamic range with nothing listening on it.
        backend = SocketBackend([("127.0.0.1", 1)],
                                connect_retries=2, retry_delay=0.05)
        with pytest.raises(BackendError):
            backend.map(_identity, [(1,)])

    def test_backend_heals_after_shutdown(self, worker_hosts):
        backend = SocketBackend(worker_hosts)
        try:
            assert backend.map(_identity, [(1,)]) == [1]
            backend.shutdown()
            # Reuse after shutdown reconnects lazily.
            assert backend.map(_identity, [(2,)]) == [2]
        finally:
            backend.shutdown()

    def test_incompatible_peer_fails_fast_without_retries(self):
        """A peer that speaks the wrong protocol is a deterministic
        mismatch: one handshake must settle it, not 40 reconnects."""
        import socket as socket_mod
        import threading
        import time

        server = socket_mod.socket()
        server.bind(("127.0.0.1", 0))
        server.listen()

        def http_impostor():
            while True:
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                conn.recv(64)
                conn.sendall(b"HTTP/1.1 400 Bad Request\r\n\r\n..bye..")
                conn.close()

        threading.Thread(target=http_impostor, daemon=True).start()
        backend = SocketBackend([server.getsockname()],
                                connect_retries=40, retry_delay=0.25)
        try:
            start = time.monotonic()
            with pytest.raises(BackendError, match="not a compatible"):
                backend.map(_identity, [(1,)])
            # 40 retries x 0.25s would be ~10s; fail-fast stays well under.
            assert time.monotonic() - start < 5.0
        finally:
            backend.shutdown()
            server.close()


# ----------------------------------------------------------------------
# Construction / configuration
# ----------------------------------------------------------------------
class TestBackendConstruction:
    def test_process_with_one_worker_resolves_to_serial(self):
        assert isinstance(create_backend("process", max_workers=1),
                          SerialBackend)
        assert isinstance(create_backend("process", max_workers=3),
                          ProcessPoolBackend)
        assert isinstance(create_backend("serial", max_workers=8),
                          SerialBackend)

    def test_socket_requires_hosts(self):
        with pytest.raises(ValueError):
            create_backend("socket")
        backend = create_backend("socket", hosts=[("h", 1), ("h", 2)])
        assert isinstance(backend, SocketBackend)
        assert backend.parallel_slots == 2
        assert backend.inline_single_shard is False

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_backend("mainframe")
        with pytest.raises(ValueError):
            EngineConfig(backend="mainframe")
        with pytest.raises(ValueError):
            EngineConfig(backend="socket")  # no hosts

    def test_engine_config_from_env_reads_backend_and_hosts(self):
        env = {"REPRO_BACKEND": "socket",
               "REPRO_HOSTS": "hostA:7931, hostB:7932"}
        config = EngineConfig.from_env(env)
        assert config.backend == "socket"
        assert config.hosts == (("hostA", 7931), ("hostB", 7932))
        assert Engine(config).parallel_slots == 2

    def test_engine_parallel_slots_follow_backend(self):
        assert Engine(EngineConfig()).parallel_slots == 1
        assert Engine(EngineConfig(max_workers=4)).parallel_slots == 4
        assert Engine(EngineConfig(backend="serial",
                                   max_workers=4)).parallel_slots == 1

    def test_submit_shards_streams_slot_result_pairs(self, worker_hosts):
        """The streaming primitive behind map(): every job's result comes
        back tagged with its slot, once each, on every backend."""
        jobs = [(n,) for n in (10, 11, 12, 13, 14)]
        for backend in (SerialBackend(), ProcessPoolBackend(2),
                        SocketBackend(worker_hosts)):
            pairs = list(backend.submit_shards(_identity, jobs))
            assert sorted(pairs) == [(0, 10), (1, 11), (2, 12), (3, 13),
                                     (4, 14)], type(backend).__name__
            if isinstance(backend, SocketBackend):
                backend.shutdown()

    def test_process_shutdown_leaves_shared_pool_alone(self):
        """Two engines share one registry pool per worker count: one
        backend's shutdown() must not cancel the other's in-flight work."""
        a, b = ProcessPoolBackend(2), ProcessPoolBackend(2)
        assert a.map(_identity, [(1,), (2,)]) == [1, 2]
        pool = process_backend._POOLS[2]
        a.shutdown()
        assert process_backend._POOLS.get(2) is pool  # still registered
        assert b.map(_identity, [(3,), (4,)]) == [3, 4]

    def test_serial_map_stops_at_first_failure(self):
        calls = []

        def record(x):
            calls.append(x)
            if x == 2:
                raise RuntimeError("stop")
            return x

        backend = SerialBackend()
        with pytest.raises(RuntimeError):
            backend.map(record, [(1,), (2,), (3,)])
        assert calls == [1, 2]  # job 3 never ran


# ----------------------------------------------------------------------
# Worker protocol (in-process server, no subprocess)
# ----------------------------------------------------------------------
class TestWorkerProtocol:
    def test_in_process_serve_round_trip(self, monkeypatch):
        import threading

        from repro.engine import worker as worker_mod

        # In-process server shares this environment; admit the test module
        # through the wire allowlist for the _identity helper.
        monkeypatch.setenv("REPRO_WIRE_ALLOW", "test_backends")

        ready = threading.Event()
        bound = []
        t = threading.Thread(target=worker_mod.serve,
                             kwargs={"port": 0, "ready_event": ready,
                                     "bound": bound},
                             daemon=True)
        t.start()
        assert ready.wait(timeout=10)
        backend = SocketBackend([tuple(bound[0])])
        try:
            assert backend.map(_identity, [(n,) for n in range(5)]) == list(range(5))
        finally:
            backend.shutdown()

    def test_handshake_rejects_non_worker_peer(self):
        import socket as socket_mod
        import threading

        from repro.engine.backends.wire import ProtocolError, handshake

        server = socket_mod.socket()
        server.bind(("127.0.0.1", 0))
        server.listen()

        def bad_peer():
            conn, _ = server.accept()
            conn.recv(64)
            conn.sendall(b"HTTP/1.1 400 Bad Request\r\n")
            conn.close()

        threading.Thread(target=bad_peer, daemon=True).start()
        client = socket_mod.create_connection(server.getsockname(), timeout=5)
        try:
            with pytest.raises(ProtocolError):
                handshake(client)
        finally:
            client.close()
            server.close()

    def test_restricted_unpickler_rejects_foreign_globals(self):
        """A crafted frame naming os.system dies before any construction."""
        import pickle

        from repro.engine.backends.wire import ProtocolError, restricted_loads

        # Hand-written pickle: GLOBAL os.system, argument, REDUCE. Built
        # from opcodes (not pickle.dumps) so the test documents the exact
        # gadget shape the allowlist must stop.
        gadget = b"cos\nsystem\n(S'echo owned'\ntR."
        with pytest.raises(ProtocolError, match="os.system"):
            restricted_loads(gadget)

        class Sneaky:
            def __reduce__(self):
                import subprocess
                return (subprocess.call, (["true"],))

        with pytest.raises(ProtocolError, match="subprocess"):
            restricted_loads(pickle.dumps(Sneaky()))

    def test_restricted_unpickler_accepts_protocol_traffic(self):
        """Everything the real protocol ships still round-trips."""
        import pickle

        import numpy as np

        from repro.engine.backends.wire import restricted_loads
        from repro.engine.executor import _run_ler_shard
        from repro.engine.rng import as_seed_sequence

        messages = [
            ("call", _run_ler_shard, ("task-stand-in",
                                      as_seed_sequence(7), 64)),
            ("ok", (3, 8, 12)),
            ("err", RuntimeError("worker-side error")),
            ("ok", np.arange(5)),
        ]
        for msg in messages:
            out = restricted_loads(
                pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL))
            assert out[0] == msg[0]

    def test_unpicklable_worker_error_is_reported_faithfully(self):
        from repro.engine.worker import _portable_error

        class Evil(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        try:
            raise Evil("original message")
        except Evil as exc:
            portable = _portable_error(exc)
        assert isinstance(portable, RuntimeError)
        assert "original message" in str(portable)

        plain = ValueError("fine")
        assert _portable_error(plain) is plain
