"""Tests for the stabilizer-circuit IR."""

import pytest

from repro.stabilizer.circuit import Circuit, Instruction, MeasurementTracker


class TestInstruction:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            Instruction("FOO", (0,))

    def test_two_qubit_gate_needs_even_targets(self):
        with pytest.raises(ValueError):
            Instruction("CX", (0, 1, 2))

    def test_noise_probability_range(self):
        with pytest.raises(ValueError):
            Instruction("X_ERROR", (0,), 1.5)

    def test_target_pairs(self):
        inst = Instruction("CX", (0, 1, 2, 3))
        assert inst.target_pairs() == [(0, 1), (2, 3)]


class TestCircuit:
    def test_num_qubits_grows_with_targets(self):
        c = Circuit()
        c.append("H", [5])
        assert c.num_qubits == 6

    def test_measurement_counting(self):
        c = Circuit(2)
        c.append("M", [0, 1])
        c.append("MR", [0])
        assert c.num_measurements == 3

    def test_detector_validates_measurement_indices(self):
        c = Circuit(1)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        with pytest.raises(ValueError):
            c.append("DETECTOR", [5])

    def test_observable_validates_measurement_indices(self):
        c = Circuit(1)
        c.append("M", [0])
        with pytest.raises(ValueError):
            c.append("OBSERVABLE_INCLUDE", [3], 0)

    def test_observable_count(self):
        c = Circuit(1)
        c.append("M", [0])
        c.append("OBSERVABLE_INCLUDE", [0], 2)
        assert c.num_observables == 3

    def test_cx_identical_qubits_rejected(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.append("CX", [1, 1])

    def test_without_noise_strips_channels(self):
        c = Circuit(2)
        c.append("H", [0])
        c.append("DEPOLARIZE1", [0], 0.01)
        c.append("CX", [0, 1])
        c.append("DEPOLARIZE2", [0, 1], 0.01)
        c.append("M", [0, 1])
        c.append("DETECTOR", [0, 1])
        clean = c.without_noise()
        assert clean.noise_channel_count() == 0
        assert clean.num_detectors == 1
        assert clean.num_measurements == 2

    def test_counts(self):
        c = Circuit(3)
        c.append("H", [0, 1])
        c.append("H", [2])
        assert c.count("H") == 2
        assert c.count_targets("H") == 3

    def test_detectors_and_observables_views(self):
        c = Circuit(1)
        c.append("M", [0])
        c.append("M", [0])
        c.append("DETECTOR", [0, 1])
        c.append("OBSERVABLE_INCLUDE", [1], 0)
        assert c.detectors() == [(0, 1)]
        assert c.observables() == {0: [1]}

    def test_validate_catches_future_reference(self):
        c = Circuit(1)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        # Corrupt the circuit by hand to simulate a builder bug.
        c.instructions.insert(0, Instruction("DETECTOR", (0,)))
        with pytest.raises(ValueError):
            c.validate()

    def test_str_and_repr(self):
        c = Circuit(2)
        c.append("CX", [0, 1])
        c.append("DEPOLARIZE2", [0, 1], 0.001)
        text = str(c)
        assert "CX 0 1" in text
        assert "DEPOLARIZE2" in text
        assert "qubits=2" in repr(c)

    def test_len_and_iter(self):
        c = Circuit(1)
        c.append("H", [0])
        c.append("M", [0])
        assert len(c) == 2
        assert [i.name for i in c] == ["H", "M"]


class TestMeasurementTracker:
    def test_record_and_get(self):
        t = MeasurementTracker()
        first = t.record(("a", 0))
        second = t.record(("a", 1))
        assert (first, second) == (0, 1)
        assert t.get(("a", 1)) == 1
        assert t.total == 2

    def test_history(self):
        t = MeasurementTracker()
        t.record("x")
        t.record("x")
        assert t.all("x") == [0, 1]
        assert t.has("x") and not t.has("y")
