"""Tests for the application estimator, statistics and fitting helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BinomialEstimate,
    combine_estimates,
    fit_ler_ansatz,
    fit_loglog_slope,
    wilson_interval,
)
from repro.chiplet import (
    ShorWorkload,
    application_fidelity,
    estimate_defect_intolerant_resources,
    estimate_no_defect_resources,
    estimate_super_stabilizer_resources,
    topological_error_rate,
)
from repro.noise import DefectModel, LINK_AND_QUBIT


class TestTopologicalError:
    def test_rate_decreases_with_distance(self):
        assert topological_error_rate(9) < topological_error_rate(5)

    def test_rate_at_threshold_is_prefactor(self):
        assert topological_error_rate(9, 1e-2) == pytest.approx(0.1)

    def test_zero_distance_fails(self):
        assert topological_error_rate(0) == 1.0

    def test_paper_quoted_ideal_fidelity(self):
        """The ideal d=27 Shor-2048 device has ~73% fidelity in the paper."""
        fid = application_fidelity({27: 1.0}, ShorWorkload())
        assert 0.6 < fid < 0.85

    def test_low_distance_distribution_gives_zero_fidelity(self):
        fid = application_fidelity({15: 1.0}, ShorWorkload())
        assert fid < 1e-6

    def test_higher_distance_gives_higher_fidelity(self):
        base = application_fidelity({27: 1.0}, ShorWorkload())
        better = application_fidelity({29: 1.0}, ShorWorkload())
        assert better > base

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            application_fidelity({}, ShorWorkload())


class TestResourceEstimates:
    WORKLOAD = ShorWorkload(target_distance=9)

    def test_no_defect_estimate(self):
        est = estimate_no_defect_resources(self.WORKLOAD)
        assert est.overhead == pytest.approx(1.0)
        assert est.yield_fraction == 1.0
        assert est.total_fabricated_qubits == 161 * self.WORKLOAD.num_patches

    def test_defect_intolerant_estimate(self):
        model = DefectModel(LINK_AND_QUBIT, 0.003)
        est = estimate_defect_intolerant_resources(model, self.WORKLOAD)
        assert 0 < est.yield_fraction < 1
        assert est.overhead > 1.0

    def test_super_stabilizer_estimate(self):
        model = DefectModel(LINK_AND_QUBIT, 0.003)
        est = estimate_super_stabilizer_resources(
            model, chiplet_size=11, workload=self.WORKLOAD, samples=30, seed=0)
        assert est.chiplet_size == 11
        assert est.overhead >= 1.0
        assert abs(sum(est.distance_distribution.values()) - 1.0) < 1e-9 or \
            not est.distance_distribution

    def test_fidelity_of_estimate_uses_distribution(self):
        est = estimate_no_defect_resources(ShorWorkload())
        assert est.fidelity() == pytest.approx(application_fidelity({27: 1.0}))


class TestStats:
    def test_wilson_interval_contains_point_estimate(self):
        low, high = wilson_interval(10, 100)
        assert low < 0.1 < high

    def test_wilson_interval_degenerate(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_binomial_estimate(self):
        est = BinomialEstimate(failures=3, shots=100)
        assert est.rate == pytest.approx(0.03)
        assert est.standard_error > 0
        assert "3/100" in str(est)
        with pytest.raises(ValueError):
            BinomialEstimate(failures=5, shots=0)

    def test_combine_estimates(self):
        merged = combine_estimates(BinomialEstimate(1, 10), BinomialEstimate(3, 30))
        assert merged.failures == 4 and merged.shots == 40

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=50))
    @settings(max_examples=50)
    def test_wilson_interval_is_a_valid_interval(self, k, extra):
        n = k + extra
        low, high = wilson_interval(k, n)
        assert 0.0 <= low <= k / n <= high <= 1.0


class TestFitting:
    def test_slope_fit_recovers_power_law(self):
        ps = [0.001, 0.002, 0.004, 0.008]
        lers = [1e-6 * (p / 0.001) ** 2.5 for p in ps]
        fit = fit_loglog_slope(ps, lers)
        assert fit.slope == pytest.approx(2.5, rel=1e-6)
        assert fit.num_points == 4
        assert fit.predict(0.001) == pytest.approx(1e-6, rel=1e-6)

    def test_zero_ler_points_are_dropped(self):
        fit = fit_loglog_slope([0.001, 0.002, 0.004], [0.0, 1e-5, 4e-5])
        assert fit.num_points == 2

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([0.001, 0.002], [0.0, 0.0])
        with pytest.raises(ValueError):
            fit_loglog_slope([0.0, 0.001], [1e-5, 1e-4])

    def test_ansatz_fit(self):
        ps = [0.001, 0.002, 0.004]
        distance = 5
        lers = [0.3 * (10 * p) ** (0.5 * distance) for p in ps]
        alpha, _ = fit_ler_ansatz(ps, lers, distance)
        assert alpha == pytest.approx(0.5, rel=1e-6)

    @given(st.floats(min_value=0.5, max_value=4.0),
           st.floats(min_value=-16.0, max_value=-2.0))
    @settings(max_examples=40)
    def test_slope_fit_roundtrip_property(self, slope, log_prefactor):
        ps = [0.001, 0.002, 0.005, 0.01]
        lers = [math.exp(log_prefactor) * p ** slope for p in ps]
        if any(l <= 0 for l in lers):
            return
        fit = fit_loglog_slope(ps, lers)
        assert fit.slope == pytest.approx(slope, rel=1e-6)
