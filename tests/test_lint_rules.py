"""Unit tests for the repro.lint rule modules.

Each rule gets paired good/bad fixtures run through
:func:`repro.lint.lint_source` — the same entry point the directory pass
uses, so pragma handling and path exemptions are exercised for real.  R006
(repo-level, semi-static) is tested against synthetic task classes via
:func:`repro.lint.rules_hash.check_task_class`.
"""

import dataclasses
import hashlib
import json
import textwrap

from repro.lint import lint_source
from repro.lint.rules_hash import check_task_class


def findings(source, path="src/repro/example.py", rules=None):
    return lint_source(textwrap.dedent(source), path, rules=rules)


def rule_ids(source, path="src/repro/example.py", rules=None):
    return [f.rule for f in findings(source, path, rules=rules)]


# ----------------------------------------------------------------------
# R001 — no global-state RNG
# ----------------------------------------------------------------------
class TestR001Rng:
    def test_flags_numpy_global_samplers(self):
        assert rule_ids("""
            import numpy as np
            x = np.random.rand(3)
        """) == ["R001"]

    def test_flags_numpy_random_via_from_import(self):
        assert rule_ids("""
            from numpy import random
            y = random.normal(0.0, 1.0)
        """) == ["R001"]

    def test_flags_unseeded_default_rng(self):
        assert rule_ids("""
            import numpy as np
            rng = np.random.default_rng()
        """) == ["R001"]

    def test_seeded_default_rng_is_fine(self):
        assert rule_ids("""
            import numpy as np
            def run(seed):
                return np.random.default_rng(seed).random()
        """) == []

    def test_flags_stdlib_random(self):
        ids = rule_ids("""
            import random
            v = random.random()
        """)
        assert "R001" in ids

    def test_seedsequence_machinery_is_fine(self):
        assert rule_ids("""
            import numpy as np
            ss = np.random.SeedSequence(7)
            gen = np.random.Generator(np.random.PCG64(ss))
        """) == []

    def test_rng_module_is_exempt(self):
        assert rule_ids("""
            import numpy as np
            x = np.random.rand(3)
        """, path="src/repro/engine/rng.py") == []


# ----------------------------------------------------------------------
# R002 — no raw REPRO_* environment reads
# ----------------------------------------------------------------------
class TestR002Env:
    def test_flags_os_getenv(self):
        assert rule_ids("""
            import os
            cache = os.getenv("REPRO_CACHE")
        """) == ["R002"]

    def test_flags_environ_get(self):
        assert rule_ids("""
            import os
            cache = os.environ.get("REPRO_CACHE", ".cache")
        """) == ["R002"]

    def test_flags_environ_subscript_read(self):
        assert rule_ids("""
            import os
            workers = os.environ["REPRO_WORKERS"]
        """) == ["R002"]

    def test_flags_membership_probe(self):
        assert rule_ids("""
            import os
            if "REPRO_CACHE" in os.environ:
                pass
        """) == ["R002"]

    def test_non_repro_variables_are_fine(self):
        assert rule_ids("""
            import os
            home = os.environ.get("HOME")
            path = os.getenv("PATH")
        """) == []

    def test_validated_readers_are_fine(self):
        assert rule_ids("""
            from repro.env import env_int, env_str
            cache = env_str("REPRO_CACHE")
            workers = env_int("REPRO_WORKERS", 1, minimum=1)
        """) == []

    def test_env_module_is_exempt(self):
        assert rule_ids("""
            import os
            raw = os.environ.get("REPRO_CACHE")
        """, path="src/repro/env.py") == []

    def test_writes_are_fine(self):
        # Tests setting up an environment is not a *read* of a knob.
        assert rule_ids("""
            import os
            os.environ["REPRO_WORKERS"] = "4"
        """) == []


# ----------------------------------------------------------------------
# R003 — no wall-clock/nondeterminism in hash-ish contexts
# ----------------------------------------------------------------------
class TestR003Time:
    def test_flags_time_in_cache_key(self):
        assert rule_ids("""
            import time
            def cache_key(task):
                return f"{task}-{time.time()}"
        """) == ["R003"]

    def test_flags_uuid_in_payload(self):
        assert rule_ids("""
            import uuid
            def payload(self):
                return {"id": str(uuid.uuid4())}
        """) == ["R003"]

    def test_flags_builtin_hash_in_content_hash(self):
        assert rule_ids("""
            def content_hash(self):
                return hash(self.name)
        """) == ["R003"]

    def test_time_outside_hash_context_is_fine(self):
        # Timing a run is fine; only identity-bearing contexts are checked.
        assert rule_ids("""
            import time
            def run(shots):
                t0 = time.perf_counter()
                return time.perf_counter() - t0
        """) == []

    def test_hashlib_in_hash_context_is_fine(self):
        assert rule_ids("""
            import hashlib
            import json
            def content_hash(self):
                body = json.dumps(self.payload(), sort_keys=True)
                return hashlib.sha256(body.encode()).hexdigest()
        """) == []


# ----------------------------------------------------------------------
# R004 — no order-dependent iteration of unordered iterables
# ----------------------------------------------------------------------
class TestR004Order:
    def test_flags_for_over_set_call(self):
        assert rule_ids("""
            def emit(xs, out):
                for x in set(xs):
                    out.append(x)
        """) == ["R004"]

    def test_flags_list_of_set(self):
        assert rule_ids("""
            def collect(xs):
                return list(set(xs))
        """) == ["R004"]

    def test_flags_iterdir_loop(self):
        assert rule_ids("""
            def scan(root):
                return [p.name for p in root.iterdir()]
        """) == ["R004"]

    def test_flags_os_listdir(self):
        assert rule_ids("""
            import os
            def scan(root):
                return tuple(os.listdir(root))
        """) == ["R004"]

    def test_sorted_wrap_is_fine(self):
        assert rule_ids("""
            def collect(xs, root):
                a = sorted(set(xs))
                b = [p.name for p in sorted(root.iterdir())]
                return a, b
        """) == []

    def test_order_free_consumers_are_fine(self):
        assert rule_ids("""
            def stats(xs):
                return len(set(xs)), sum(set(xs)), max(set(xs))
        """) == []

    def test_set_comprehension_consumer_is_fine(self):
        # The consumer is itself a set: no order leaks out.
        assert rule_ids("""
            def dedupe(xs):
                return {x + 1 for x in set(xs)}
        """) == []


# ----------------------------------------------------------------------
# R005 — mutable defaults; unlocked module-state mutation under threads
# ----------------------------------------------------------------------
class TestR005State:
    def test_flags_mutable_default_list(self):
        assert rule_ids("""
            def accumulate(x, acc=[]):
                acc.append(x)
                return acc
        """) == ["R005"]

    def test_flags_mutable_default_dict_call(self):
        assert rule_ids("""
            def register(name, registry=dict()):
                registry[name] = True
        """) == ["R005"]

    def test_none_default_is_fine(self):
        assert rule_ids("""
            def accumulate(x, acc=None):
                acc = [] if acc is None else acc
                acc.append(x)
                return acc
        """) == []

    def test_flags_unlocked_registry_mutation_in_threaded_module(self):
        assert rule_ids("""
            import threading
            _REGISTRY = {}
            def put(key, value):
                _REGISTRY[key] = value
        """) == ["R005"]

    def test_locked_registry_mutation_is_fine(self):
        assert rule_ids("""
            import threading
            _REGISTRY = {}
            _REGISTRY_LOCK = threading.Lock()
            def put(key, value):
                with _REGISTRY_LOCK:
                    _REGISTRY[key] = value
        """) == []

    def test_unthreaded_module_is_not_checked_for_state(self):
        # No threading import: module-per-process assumption holds.
        assert rule_ids("""
            _REGISTRY = {}
            def put(key, value):
                _REGISTRY[key] = value
        """) == []

    def test_flags_mutating_method_without_lock(self):
        assert rule_ids("""
            import threading
            _JOBS = []
            def enqueue(job):
                _JOBS.append(job)
        """) == ["R005"]


# ----------------------------------------------------------------------
# Pragmas and the R000 meta-rule
# ----------------------------------------------------------------------
class TestPragmas:
    def test_line_pragma_suppresses_with_justification(self):
        assert rule_ids("""
            import numpy as np
            x = np.random.rand(3)  # repro-lint: ignore[R001] -- fixture data
        """) == []

    def test_pragma_without_justification_is_r000(self):
        ids = rule_ids("""
            import numpy as np
            x = np.random.rand(3)  # repro-lint: ignore[R001]
        """)
        # The unjustified pragma both fails (R000) and does not suppress.
        assert ids == ["R000", "R001"]

    def test_pragma_only_suppresses_named_rule(self):
        ids = rule_ids("""
            import os
            v = os.getenv("REPRO_X")  # repro-lint: ignore[R001] -- wrong rule
        """)
        assert ids == ["R002"]

    def test_file_ignore_pragma_covers_whole_file(self):
        assert rule_ids("""
            # repro-lint: file-ignore[R001] -- frozen reference fixture
            import numpy as np
            a = np.random.rand(3)
            b = np.random.rand(4)
        """) == []

    def test_malformed_pragma_is_r000(self):
        ids = rule_ids("""
            x = 1  # repro-lint: ignore -- missing rule list
        """)
        assert ids == ["R000"]

    def test_syntax_error_reports_r000(self):
        ids = rule_ids("def broken(:\n    pass\n")
        assert ids == ["R000"]


# ----------------------------------------------------------------------
# R006 — content-hash completeness (synthetic task classes)
# ----------------------------------------------------------------------
def _canon_hash(payload):
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class GoodTask:
    shots: int = 100
    decoder: str = "mwpm"

    def payload(self):
        return {"shots": self.shots, "decoder": self.decoder}

    def content_hash(self):
        return _canon_hash(self.payload())

    @classmethod
    def from_payload(cls, payload):
        return cls(shots=payload["shots"], decoder=payload["decoder"])


@dataclasses.dataclass(frozen=True)
class HashOmittedTask:
    """``decoder`` changes the computation but never reaches the hash."""

    shots: int = 100
    decoder: str = "mwpm"

    def payload(self):
        return {"shots": self.shots}  # decoder forgotten

    def content_hash(self):
        return _canon_hash(self.payload())

    @classmethod
    def from_payload(cls, payload):
        return cls(shots=payload["shots"])


@dataclasses.dataclass(frozen=True)
class DroppedOnRebuildTask:
    """``decoder`` is hashed but from_payload silently discards it."""

    shots: int = 100
    decoder: str = "mwpm"

    def payload(self):
        return {"shots": self.shots, "decoder": self.decoder}

    def content_hash(self):
        return _canon_hash(self.payload())

    @classmethod
    def from_payload(cls, payload):
        return cls(shots=payload["shots"])  # decoder dropped


class TestR006HashCompleteness:
    def test_complete_class_is_clean(self):
        assert check_task_class(GoodTask, GoodTask()) == []

    def test_hash_omitted_field_is_flagged(self):
        found = check_task_class(HashOmittedTask, HashOmittedTask())
        assert len(found) == 1
        assert found[0].rule == "R006"
        assert "decoder" in found[0].message
        assert "content hash" in found[0].message

    def test_field_dropped_on_rebuild_is_flagged(self):
        found = check_task_class(DroppedOnRebuildTask, DroppedOnRebuildTask())
        assert any("round-trip" in f.message for f in found)

    def test_real_registry_passes(self):
        # The shipped task registry must satisfy its own invariant.
        from repro.engine.tasks import TASK_KINDS  # noqa: F401
        from repro.lint.rules_hash import _sample_tasks

        for sample in _sample_tasks():
            assert check_task_class(type(sample), sample) == [], \
                f"{type(sample).__name__} failed hash-completeness"
