"""Syndrome-memo LRU, decode fanout, and on-disk memo persistence.

Three decode-side behaviours ride the fast-RNG PR:

* the cross-batch syndrome memo evicts least-recently-used (hits refresh
  recency) instead of FIFO, so hot syndromes survive long varied sweeps;
* batches with many unknown syndromes can fan ``_decode_fired`` across a
  thread pool (``REPRO_DECODE_FANOUT``) with bit-identical results *and*
  counters;
* the memo round-trips through the content-addressed on-disk cache
  (keyed by task hash + decoder name), so a restarted worker's first
  shard starts warm (``memo_size > 0`` before any decode).
"""

import numpy as np
import pytest

import repro.engine.executor as ex
from repro.core import adapt_patch
from repro.decoder.base import BatchDecoderBase, decode_fanout_threshold
from repro.engine import LerPointTask
from repro.engine.cache import ResultCache
from repro.engine.pipeline import (
    DecodingPipeline,
    memo_cache_key,
    memo_persist_enabled,
    memo_preload,
)
from repro.noise import DefectSet
from repro.surface_code import RotatedSurfaceCodeLayout


class CountingDecoder(BatchDecoderBase):
    """Deterministic fake decoder: parity = {min fired index}."""

    num_observables = 2

    def __init__(self):
        super().__init__()
        self.calls = []

    def _decode_fired(self, fired):
        self.calls.append(fired)
        return frozenset({min(fired) % self.num_observables})


def _task(p=0.003, decoder="mwpm"):
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    return LerPointTask.from_patch("memory", patch, p, decoder=decoder)


@pytest.fixture(autouse=True)
def _clean_memo_state(monkeypatch):
    """Isolate each test from ambient cache config and warm task memos."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_MEMO_PERSIST", raising=False)
    monkeypatch.delenv("REPRO_DECODE_FANOUT", raising=False)
    memo_preload(None)
    ex._TASK_MEMO.clear()
    yield
    memo_preload(None)
    ex._TASK_MEMO.clear()


# ----------------------------------------------------------------------
# LRU eviction
# ----------------------------------------------------------------------
class TestLruMemo:
    def test_hit_refreshes_recency(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "2")
        dec = CountingDecoder()
        dec.decode_fired((1,))          # memo: {1}
        dec.decode_fired((2,))          # memo: {1, 2}
        dec.decode_fired((1,))          # hit refreshes (1) -> {2, 1}
        dec.decode_fired((3,))          # evicts (2), the true LRU entry
        assert dec.memo_evictions == 1
        assert (1,) in dec._syndrome_memo      # survived thanks to the hit
        assert (2,) not in dec._syndrome_memo  # FIFO would have kept this
        dec.decode_fired((1,))
        assert dec.calls.count((1,)) == 1      # never re-decoded

    def test_fifo_regression_shape(self, monkeypatch):
        # Without an interleaved hit, LRU degenerates to FIFO order.
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "2")
        dec = CountingDecoder()
        for key in ((1,), (2,), (3,)):
            dec.decode_fired(key)
        assert (1,) not in dec._syndrome_memo
        assert dec.memo_evictions == 1

    def test_eviction_counter_semantics(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "3")
        dec = CountingDecoder()
        for i in range(10):
            dec.decode_fired((i,))
        assert dec.memo_evictions == 7
        assert dec.memo_size == 3


# ----------------------------------------------------------------------
# Export / import
# ----------------------------------------------------------------------
class TestMemoExportImport:
    def test_round_trip(self):
        a = CountingDecoder()
        for key in ((1,), (2, 5), (3,)):
            a.decode_fired(key)
        b = CountingDecoder()
        assert b.import_memo(a.export_memo()) == 3
        assert b._syndrome_memo == a._syndrome_memo
        b.decode_fired((2, 5))
        assert b.calls == []            # pure memo hit, no decode
        assert b.memo_hits == 1

    def test_import_respects_limit_keeps_hottest(self, monkeypatch):
        a = CountingDecoder()
        for i in range(6):
            a.decode_fired((i,))
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "2")
        b = CountingDecoder()
        assert b.import_memo(a.export_memo()) == 2
        # export is coldest-first, so the hottest tail survives.
        assert set(b._syndrome_memo) == {(4,), (5,)}

    def test_import_skips_malformed(self):
        b = CountingDecoder()
        entries = [[[1], [0]], "garbage", [[2], [1]], [[], [0]]]
        assert b.import_memo(entries) == 2
        assert set(b._syndrome_memo) == {(1,), (2,)}

    def test_import_disabled_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "0")
        b = CountingDecoder()
        assert b.import_memo([[[1], [0]]]) == 0
        assert b.memo_size == 0


# ----------------------------------------------------------------------
# Decode fanout
# ----------------------------------------------------------------------
class TestDecodeFanout:
    def test_env_validation(self):
        assert decode_fanout_threshold(env={}) == 0
        assert decode_fanout_threshold(env={"REPRO_DECODE_FANOUT": "8"}) == 8
        with pytest.raises(ValueError, match="REPRO_DECODE_FANOUT"):
            decode_fanout_threshold(env={"REPRO_DECODE_FANOUT": "-1"})
        with pytest.raises(ValueError, match="REPRO_DECODE_FANOUT"):
            decode_fanout_threshold(env={"REPRO_DECODE_FANOUT": "many"})

    def test_fanned_batch_bit_identical(self, monkeypatch):
        # A real d=3 pipeline run with aggressive fanout must reproduce the
        # serial failures AND the serial memo/counter bookkeeping.
        task = _task(0.01)
        circuit = task.build_circuit()

        def run():
            ex._TASK_MEMO.clear()
            pipeline, _ = ex._context_for(task)
            stats = pipeline.run(4000, seed=20240427)
            dec = pipeline.decoder
            return (stats.failures, stats.distinct_syndromes,
                    stats.memo_hits, dec.memo_size, dec.decoded_syndromes)

        serial = run()
        monkeypatch.setenv("REPRO_DECODE_FANOUT", "1")
        fanned = run()
        assert fanned == serial
        assert circuit.num_detectors > 0  # sanity: real decode happened

    def test_fanout_only_above_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECODE_FANOUT", "3")
        dec = CountingDecoder()
        out = dec.decode_fired_batch([(1,), (2,)])
        assert out == [frozenset({1}), frozenset({0})]
        assert dec.decoded_syndromes == 2


# ----------------------------------------------------------------------
# On-disk persistence
# ----------------------------------------------------------------------
class TestMemoPersistence:
    def test_persist_and_preload_cycle(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        task = _task()
        circuit = task.build_circuit()

        def pipeline_for():
            from repro.decoder.matching import MatchingGraph, MwpmDecoder
            from repro.stabilizer.dem import build_detector_error_model
            graph = MatchingGraph(build_detector_error_model(circuit))
            return DecodingPipeline(circuit, MwpmDecoder(graph))

        p1 = pipeline_for()
        assert p1.attach_memo_store(cache, task.content_hash(),
                                    task.decoder) == 0
        p1.run(4000, seed=20240427)
        assert p1.persist_memo() is True
        assert p1.persist_memo() is False      # unchanged since last save
        size = p1.decoder.memo_size
        assert size > 0

        # A brand-new pipeline (fresh process stand-in) starts warm: the
        # memo is populated before any shard has been decoded.
        p2 = pipeline_for()
        assert p2.decoder.memo_size == 0
        imported = p2.attach_memo_store(cache, task.content_hash(),
                                        task.decoder)
        assert imported == size
        assert p2.preloaded_memo_entries == size
        assert p2.decoder.memo_size == size
        assert p2.decoder.decoded_syndromes == 0

        # Identical numbers either way (decoding is a pure function).
        s1 = pipeline_for().run(4000, seed=20240427)
        s2 = p2.run(4000, seed=20240427)
        assert s2.failures == s1.failures
        assert s2.distinct_syndromes < s1.distinct_syndromes  # warm start

    def test_memo_keys_are_decoder_scoped(self, tmp_path):
        h = "a" * 64
        assert memo_cache_key(h, "mwpm") != memo_cache_key(h, "unionfind")
        assert memo_cache_key(h, "mwpm") != memo_cache_key("b" * 64, "mwpm")

    def test_context_for_roundtrip_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        task = _task()
        p1, _ = ex._context_for(task)
        p1.run(4000, seed=20240427)
        # _run_ler_shard persists after every shard; emulate one shard.
        f1 = ex._run_ler_shard(task, np.random.SeedSequence(1), 1000)
        ex._TASK_MEMO.clear()
        p2, _ = ex._context_for(task)
        assert p2.preloaded_memo_entries > 0
        assert p2.decoder.memo_size > 0      # warm before the first shard
        # Bit-identity: the warm pipeline reproduces the cold shard result.
        ex._TASK_MEMO[task.content_hash()] = (p2, 0)
        f2 = ex._run_ler_shard(task, np.random.SeedSequence(1), 1000)
        assert f2[0] == f1[0]

    def test_memo_preload_override_beats_env(self, tmp_path, monkeypatch):
        override = tmp_path / "override"
        task = _task()
        memo_preload(str(override))
        p1, _ = ex._context_for(task)
        p1.run(2000, seed=3)
        assert p1.persist_memo() is True
        ex._TASK_MEMO.clear()
        key = memo_cache_key(task.content_hash(), task.decoder)
        assert ResultCache(str(override)).get(key) is not None

    def test_persistence_gate(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_MEMO_PERSIST", "0")
        assert memo_persist_enabled() is False
        task = _task()
        p1, _ = ex._context_for(task)
        p1.run(2000, seed=3)
        assert p1.persist_memo() is False    # never attached
        key = memo_cache_key(task.content_hash(), task.decoder)
        assert ResultCache(str(tmp_path)).get(key) is None

    def test_unionfind_memo_isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        mwpm, uf = _task(), _task(decoder="unionfind")
        pm, _ = ex._context_for(mwpm)
        pm.run(2000, seed=5)
        pm.persist_memo()
        cache = ResultCache(str(tmp_path))
        assert cache.get(memo_cache_key(mwpm.content_hash(), "mwpm"))
        assert cache.get(memo_cache_key(uf.content_hash(),
                                        "unionfind")) is None
