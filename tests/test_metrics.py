"""Tests for the patch figures of merit (distance, operator counts, clusters)."""

import pytest

from repro.core import (
    adapt_patch,
    build_chain_graph,
    code_distance,
    evaluate_patch,
    num_shortest_logicals,
)
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT
from repro.surface_code import RotatedSurfaceCodeLayout


@pytest.fixture(scope="module")
def defect_free_5():
    return adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of())


class TestDefectFreeDistances:
    @pytest.mark.parametrize("d", [3, 5, 7, 9, 11])
    def test_distance_equals_width(self, d):
        patch = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
        assert code_distance(patch, "X") == d
        assert code_distance(patch, "Z") == d

    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_shortest_logical_count_grows_with_size(self, d):
        smaller = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
        larger = adapt_patch(RotatedSurfaceCodeLayout(d + 2), DefectSet.of())
        assert num_shortest_logicals(larger, "X") > num_shortest_logicals(smaller, "X")

    def test_counts_symmetric_between_directions(self, defect_free_5):
        assert num_shortest_logicals(defect_free_5, "X") == \
            num_shortest_logicals(defect_free_5, "Z")

    def test_invalid_error_type_rejected(self, defect_free_5):
        with pytest.raises(ValueError):
            build_chain_graph(defect_free_5, "Y")


class TestDefectivePatchMetrics:
    def test_central_data_defect_reduces_distance_by_one(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        metrics = evaluate_patch(patch)
        assert metrics.distance_x == 4
        assert metrics.distance_z == 4
        assert metrics.distance == 4

    def test_defective_patch_has_fewer_shortest_logicals_than_same_d_defect_free(self):
        """The paper's explanation for why defective patches with the same d
        outperform defect-free ones: fewer minimum-weight logical operators."""
        defective = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        reference = adapt_patch(RotatedSurfaceCodeLayout(4), DefectSet.of())
        d_metrics = evaluate_patch(defective)
        r_metrics = evaluate_patch(reference)
        assert d_metrics.distance == r_metrics.distance == 4
        assert d_metrics.num_shortest < r_metrics.num_shortest

    def test_anisotropic_distance_possible(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(9), DefectSet.of(qubits=[(3, 1)]))
        metrics = evaluate_patch(patch)
        assert metrics.distance == min(metrics.distance_x, metrics.distance_z)
        assert metrics.distance_x != metrics.distance_z

    def test_more_defects_never_raise_distance(self):
        layout = RotatedSurfaceCodeLayout(9)
        one = evaluate_patch(adapt_patch(layout, DefectSet.of(qubits=[(9, 9)])))
        two = evaluate_patch(adapt_patch(layout, DefectSet.of(qubits=[(9, 9), (5, 5)])))
        assert two.distance <= one.distance

    def test_metrics_fields_populated(self):
        layout = RotatedSurfaceCodeLayout(7)
        defects = DefectModel(LINK_AND_QUBIT, 0.03).sample(layout, rng=5)
        metrics = evaluate_patch(adapt_patch(layout, defects))
        assert metrics.num_faulty_qubits == defects.num_faulty_qubits
        assert metrics.num_faulty_links == defects.num_faulty_links
        assert 0.0 <= metrics.disabled_data_fraction <= 1.0
        assert metrics.largest_cluster_diameter >= 0.0

    def test_invalid_patch_reports_zero_distance(self):
        layout = RotatedSurfaceCodeLayout(5)
        patch = adapt_patch(layout, DefectSet.of())
        patch.valid = False
        metrics = evaluate_patch(patch)
        assert metrics.distance == 0
        assert not metrics.valid

    def test_num_shortest_uses_limiting_direction(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(9), DefectSet.of(qubits=[(3, 1)]))
        metrics = evaluate_patch(patch)
        if metrics.distance_x < metrics.distance_z:
            assert metrics.num_shortest == metrics.num_shortest_x
        elif metrics.distance_z < metrics.distance_x:
            assert metrics.num_shortest == metrics.num_shortest_z


class TestChainGraph:
    def test_shortest_path_qubits_length_matches_distance(self, defect_free_5):
        graph = build_chain_graph(defect_free_5, "X")
        path = graph.shortest_path_qubits()
        assert len(path) == graph.shortest_path_length() == 5

    def test_path_avoidance(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        graph = build_chain_graph(patch, "Z")
        avoid = {d for g in patch.gauge_operators for d in g.data}
        path = graph.shortest_path_qubits(avoid=avoid)
        assert path is not None
        assert not (set(path) & avoid)

    def test_path_count_at_least_one_when_path_exists(self, defect_free_5):
        graph = build_chain_graph(defect_free_5, "X")
        assert graph.shortest_path_count() >= 1

    def test_graph_counts_match_module_functions(self, defect_free_5):
        graph = build_chain_graph(defect_free_5, "X")
        assert graph.shortest_path_length() == code_distance(defect_free_5, "X")
        assert graph.shortest_path_count() == num_shortest_logicals(defect_free_5, "X")
