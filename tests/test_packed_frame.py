"""Packed vs unpacked frame simulation: instruction-by-instruction agreement.

The packed simulator must consume the RNG stream exactly like the unpacked
one and hold a bit-identical frame after **every** instruction — that is
what makes the pipeline's tallies bit-identical to the legacy path.  The
``trace`` hooks on both simulators expose the frame after each instruction.

Since the vectorised dispatch landed, the suite additionally pins the
simulator against the frozen per-target loop in
:mod:`repro.stabilizer.reference` — for every instruction family, on both
flip-mask strategies (sparse below ``_SPARSE_P_MAX``, dense above), on the
fused no-trace path and the stepwise trace path, and on circuits with
duplicate targets and chained two-qubit pairs (the fancy-indexing hazard
cases).
"""

import numpy as np
import pytest

from repro.stabilizer import (
    Circuit,
    FrameSimulator,
    PackedFrameSimulator,
    sample_detectors,
    sample_detectors_packed,
)
from repro.stabilizer.bitpack import (
    num_words,
    pack_bits,
    pack_rows,
    popcount,
    unpack_bits,
)
from repro.stabilizer.packed import _SPARSE_P_MAX
from repro.stabilizer.reference import reference_packed_sample


def _noisy_circuit(p=0.1) -> Circuit:
    """Exercise every instruction the simulators implement."""
    c = Circuit(6)
    c.append("R", [0, 1, 2, 3])
    c.append("RX", [4, 5])
    c.append("X_ERROR", [0, 1], p)
    c.append("Z_ERROR", [4], p)
    c.append("Y_ERROR", [2], p)
    c.append("DEPOLARIZE1", [3], p)
    c.append("H", [1])
    c.append("S", [2])
    c.append("X", [0])
    c.append("Z", [5])
    c.append("CX", [0, 3, 1, 2])
    c.append("CZ", [4, 5])
    c.append("DEPOLARIZE2", [0, 1], p)
    c.append("TICK")
    c.append("MR", [3])
    c.append("M", [0, 1])
    c.append("MX", [4])
    c.append("DETECTOR", [0])
    c.append("DETECTOR", [1, 2])
    c.append("M", [2])
    c.append("OBSERVABLE_INCLUDE", [4], 0)
    c.append("OBSERVABLE_INCLUDE", [3], 1)
    return c


def _memory_circuit(distance=3, p=0.005):
    from repro.core.adaptation import adapt_patch
    from repro.noise.circuit_noise import CircuitNoiseModel
    from repro.noise.fabrication import DefectSet
    from repro.surface_code.circuits import build_memory_circuit
    from repro.surface_code.layout import RotatedSurfaceCodeLayout

    patch = adapt_patch(RotatedSurfaceCodeLayout(distance), DefectSet.of())
    return build_memory_circuit(patch, CircuitNoiseModel.standard(p), distance)


class TestBitpack:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 200])
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        bits = rng.random(n) < 0.4
        packed = pack_bits(bits)
        assert packed.shape == (num_words(n),)
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_bits(packed, n), bits)
        assert popcount(packed) == int(bits.sum())

    def test_roundtrip_matrix(self):
        rng = np.random.default_rng(0)
        bits = rng.random((5, 130)) < 0.5
        assert np.array_equal(unpack_bits(pack_bits(bits), 130), bits)

    def test_padding_bits_are_zero(self):
        packed = pack_bits(np.ones(3, dtype=bool))
        assert popcount(packed) == 3

    @pytest.mark.parametrize("shape", [(1,), (17,), (5, 9), (3, 1), (128,)])
    def test_popcount_fast_path_matches_fallback(self, shape):
        """The np.bitwise_count fast path (numpy >= 2.0) and the
        unpackbits fallback must count bit-identically on any word
        pattern, including all-ones and empty words."""
        from repro.stabilizer import bitpack

        rng = np.random.default_rng(42)
        words = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        words.flat[0] = 0
        words.flat[-1] = np.uint64(2**64 - 1)
        expected = bitpack._popcount_unpack(np.ascontiguousarray(words))
        assert popcount(words) == expected
        if bitpack._HAS_BITWISE_COUNT:
            assert int(np.bitwise_count(words).sum()) == expected

    def test_popcount_fallback_used_when_bitwise_count_missing(self, monkeypatch):
        """Pre-2.0 numpy takes the unpackbits path and counts identically."""
        from repro.stabilizer import bitpack

        words = np.random.default_rng(7).integers(0, 2**64, size=33,
                                                  dtype=np.uint64)
        with_fast = popcount(words)
        monkeypatch.setattr(bitpack, "_HAS_BITWISE_COUNT", False)
        assert popcount(words) == with_fast

    @pytest.mark.parametrize("n", [1, 63, 64, 65, 130])
    def test_pack_rows_matches_per_row_pack_bits(self, n):
        rng = np.random.default_rng(n)
        bits = rng.random((7, n)) < 0.3
        rows = pack_rows(bits)
        assert rows.shape == (7, num_words(n))
        assert rows.dtype == np.uint64
        for i in range(7):
            assert np.array_equal(rows[i], pack_bits(bits[i])), i
        assert np.array_equal(unpack_bits(rows, n), bits)

    def test_pack_rows_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_rows(np.ones(8, dtype=bool))
        with pytest.raises(ValueError):
            pack_rows(np.ones((2, 3, 4), dtype=bool))


class TestInstructionByInstructionAgreement:
    @pytest.mark.parametrize("shots", [1, 7, 64, 130])
    def test_full_gate_set(self, shots):
        circuit = _noisy_circuit()
        packed_states = []
        unpacked_states = []
        PackedFrameSimulator(circuit, seed=99).sample(
            shots, trace=lambda i, inst, x, z, m: packed_states.append(
                (i, inst.name, x, z, m)))
        FrameSimulator(circuit, seed=99).sample(
            shots, trace=lambda i, inst, x, z, m: unpacked_states.append(
                (i, inst.name, x, z, m)))
        assert len(packed_states) == len(circuit) == len(unpacked_states)
        for (i, name, px, pz, pm), (_, _, ux, uz, um) in zip(
                packed_states, unpacked_states):
            assert np.array_equal(px, ux), f"X frame diverged after {i}:{name}"
            assert np.array_equal(pz, uz), f"Z frame diverged after {i}:{name}"
            assert np.array_equal(pm, um), f"measurement record diverged after {i}:{name}"

    def test_memory_circuit_agreement(self):
        circuit = _memory_circuit()
        for shots in (1, 64, 257):
            unpacked = FrameSimulator(circuit, seed=7).sample(shots)
            packed = PackedFrameSimulator(circuit, seed=7).sample(shots)
            assert np.array_equal(unpacked.detectors, packed.detectors)
            assert np.array_equal(unpacked.observables, packed.observables)


class TestPackedSamples:
    def test_shapes_and_views(self):
        circuit = _memory_circuit()
        samples = sample_detectors_packed(circuit, shots=70, seed=3)
        assert samples.num_shots == 70
        assert samples.detectors.shape == (70, circuit.num_detectors)
        assert samples.observables.shape == (70, circuit.num_observables)
        legacy = samples.to_detector_samples()
        assert np.array_equal(legacy.detectors, samples.detectors)

    def test_sparse_extraction_matches_dense(self):
        circuit = _memory_circuit(p=0.01)
        samples = sample_detectors_packed(circuit, shots=150, seed=5)
        dense = samples.detectors
        fired = samples.fired_detectors()
        assert len(fired) == 150
        for s in range(150):
            assert fired[s] == tuple(np.flatnonzero(dense[s]))
        # Windowed extraction (word-unaligned boundaries).
        window = samples.fired_detectors(67, 131)
        for i, s in enumerate(range(67, 131)):
            assert window[i] == tuple(np.flatnonzero(dense[s]))
        obs_window = samples.flipped_observables(1, 150)
        dense_obs = samples.observables
        for i, s in enumerate(range(1, 150)):
            assert obs_window[i] == tuple(np.flatnonzero(dense_obs[s]))

    def test_detection_fraction_matches_dense(self):
        circuit = _memory_circuit(p=0.01)
        samples = sample_detectors_packed(circuit, shots=100, seed=6)
        dense = sample_detectors(circuit, shots=100, seed=6)
        assert samples.detection_fraction() == pytest.approx(
            dense.detection_fraction())

    def test_range_validation(self):
        circuit = _memory_circuit()
        samples = sample_detectors_packed(circuit, shots=10, seed=1)
        with pytest.raises(ValueError):
            samples.fired_detectors(5, 11)
        assert samples.fired_detectors(4, 4) == []

    @pytest.mark.parametrize("shots", [63, 64, 65])
    def test_sparse_extraction_at_word_boundaries(self, shots):
        """Shot counts straddling the 64-bit word edge, including windows
        that start past word 0 (``word_lo > 0``)."""
        circuit = _memory_circuit(p=0.02)
        samples = sample_detectors_packed(circuit, shots=shots, seed=shots)
        dense = samples.detectors
        assert samples.fired_detectors() == [
            tuple(np.flatnonzero(dense[s])) for s in range(shots)]
        windows = [(0, shots), (0, 63), (shots - 1, shots), (shots, shots)]
        if shots >= 65:
            windows += [(64, shots), (64, 65), (63, 65)]
        for start, stop in windows:
            got = samples.fired_detectors(start, stop)
            assert got == [tuple(np.flatnonzero(dense[s]))
                           for s in range(start, stop)], (start, stop)

    def test_windows_past_first_word(self):
        circuit = _memory_circuit(p=0.02)
        samples = sample_detectors_packed(circuit, shots=200, seed=3)
        dense_obs = samples.observables
        for start, stop in [(64, 128), (65, 129), (128, 200), (129, 191)]:
            got = samples.flipped_observables(start, stop)
            assert got == [tuple(np.flatnonzero(dense_obs[s]))
                           for s in range(start, stop)], (start, stop)


class TestZeroShotContract:
    """``sample(0)`` is representable in engine shard math: both simulators
    return an empty sample instead of raising; negatives still raise."""

    def test_packed_zero_shots_empty(self):
        circuit = _memory_circuit()
        samples = PackedFrameSimulator(circuit, seed=1).sample(0)
        assert samples.num_shots == 0
        assert samples.detectors_packed.shape == (circuit.num_detectors, 0)
        assert samples.observables_packed.shape == (circuit.num_observables, 0)
        assert samples.detectors.shape == (0, circuit.num_detectors)
        assert samples.fired_detectors() == []
        assert samples.flipped_observables() == []
        assert samples.detection_fraction() == 0.0

    def test_unpacked_zero_shots_empty(self):
        circuit = _memory_circuit()
        samples = FrameSimulator(circuit, seed=1).sample(0)
        assert samples.num_shots == 0
        assert samples.detectors.shape == (0, circuit.num_detectors)
        assert samples.observables.shape == (0, circuit.num_observables)

    def test_zero_shots_consume_no_rng_state(self):
        circuit = _noisy_circuit()
        plain = PackedFrameSimulator(circuit, seed=8).sample(33)
        sim = PackedFrameSimulator(circuit, seed=8)
        sim.sample(0)
        after_empty = sim.sample(33)
        assert np.array_equal(plain.detectors_packed, after_empty.detectors_packed)

    @pytest.mark.parametrize("make", [PackedFrameSimulator, FrameSimulator])
    def test_negative_shots_raise(self, make):
        with pytest.raises(ValueError):
            make(_noisy_circuit()).sample(-1)


def _duplicate_target_circuit(p=0.2) -> Circuit:
    """Duplicate targets and chained pairs: every fancy-indexing hazard.

    Sequential per-target semantics (the unpacked simulator) are the ground
    truth; buffered fancy indexing would silently drop or misorder these
    updates without the dedup/grouping logic.
    """
    c = Circuit(5)
    c.append("R", [0, 1, 2, 3, 4])
    c.append("X_ERROR", [0, 0, 1], p)          # duplicate noise target
    c.append("Y_ERROR", [2, 2], p)             # even dup: flips may cancel
    c.append("DEPOLARIZE1", [3, 3, 0], p)
    c.append("H", [1, 1, 2])                   # even dup = identity on 1
    c.append("S", [2, 2, 0])
    c.append("CX", [0, 1, 1, 2, 2, 3])         # chained pairs (RAW hazards)
    c.append("CZ", [0, 1, 1, 2])               # chained CZ
    c.append("CX", [0, 1, 2, 3, 0, 4])         # qubit 0 controls twice
    c.append("DEPOLARIZE2", [0, 1, 1, 2], p)   # pair chain shares qubit 1
    c.append("M", [0, 0, 1])                   # repeated measurement
    c.append("MR", [2, 2])                     # repeated measure-reset
    c.append("MX", [4, 4])
    c.append("DETECTOR", [0, 1])
    c.append("DETECTOR", [])                   # empty detector: all-zero row
    c.append("DETECTOR", [3, 4, 3])            # duplicate measurement ref
    c.append("OBSERVABLE_INCLUDE", [5, 5, 6], 0)
    return c


class TestVectorisedAgainstFrozenReference:
    """The vectorised dispatch must be bit-identical to the frozen
    per-target loop for every instruction family, on both flip-mask
    strategies and both execution paths (fused and stepwise)."""

    # p values on both sides of the sparse/dense strategy threshold.
    PS = [0.004, _SPARSE_P_MAX, 0.05, 0.3]

    @pytest.mark.parametrize("p", PS)
    @pytest.mark.parametrize("shots", [1, 63, 64, 65, 130])
    def test_fused_path_matches_reference(self, p, shots):
        circuit = _noisy_circuit(p)
        got = PackedFrameSimulator(circuit, seed=17).sample(shots)
        want = reference_packed_sample(circuit, shots, seed=17)
        assert np.array_equal(got.detectors_packed, want.detectors_packed)
        assert np.array_equal(got.observables_packed, want.observables_packed)

    @pytest.mark.parametrize("p", [0.004, 0.3])
    def test_stepwise_trace_matches_reference_per_instruction(self, p):
        circuit = _noisy_circuit(p)
        got, want = [], []
        PackedFrameSimulator(circuit, seed=23).sample(
            70, trace=lambda i, inst, x, z, m: got.append((i, inst.name, x, z, m)))
        reference_packed_sample(
            circuit, 70, seed=23,
            trace=lambda i, inst, x, z, m: want.append((i, inst.name, x, z, m)))
        assert len(got) == len(want) == len(circuit)
        for (i, name, px, pz, pm), (_, _, rx, rz, rm) in zip(got, want):
            assert np.array_equal(px, rx), f"X diverged after {i}:{name}"
            assert np.array_equal(pz, rz), f"Z diverged after {i}:{name}"
            assert np.array_equal(pm, rm), f"meas diverged after {i}:{name}"

    @pytest.mark.parametrize("p", PS)
    @pytest.mark.parametrize("shots", [1, 64, 130])
    def test_duplicate_targets_and_chained_pairs(self, p, shots):
        circuit = _duplicate_target_circuit(p)
        got = PackedFrameSimulator(circuit, seed=31).sample(shots)
        want = reference_packed_sample(circuit, shots, seed=31)
        unpacked = FrameSimulator(circuit, seed=31).sample(shots)
        assert np.array_equal(got.detectors_packed, want.detectors_packed)
        assert np.array_equal(got.observables_packed, want.observables_packed)
        assert np.array_equal(got.detectors, unpacked.detectors)
        assert np.array_equal(got.observables, unpacked.observables)

    def test_memory_circuit_matches_reference_at_low_p(self):
        circuit = _memory_circuit(p=0.001)
        got = PackedFrameSimulator(circuit, seed=41).sample(300)
        want = reference_packed_sample(circuit, 300, seed=41)
        assert np.array_equal(got.detectors_packed, want.detectors_packed)
        assert np.array_equal(got.observables_packed, want.observables_packed)

    @pytest.mark.parametrize("name,targets,arg", [
        ("DEPOLARIZE2", (0, 1, 2, 3), 0.015060604154043557),  # clip-edge p
        ("X_ERROR", (0, 1, 2), 0.004),
        ("Z_ERROR", (0, 2), 0.004),
        ("Y_ERROR", (1,), 0.004),
        ("DEPOLARIZE1", (0, 1, 2), 0.004),
        ("DEPOLARIZE2", (0, 1, 2, 3), 0.004),
        ("X_ERROR", (0, 1, 2), 0.4),
        ("DEPOLARIZE1", (0, 1, 2), 0.4),
        ("DEPOLARIZE2", (0, 1, 2, 3), 0.4),
        ("H", (0, 1, 2), 0.0),
        ("S", (1, 2), 0.0),
        ("CX", (0, 1, 2, 3), 0.0),
        ("CZ", (0, 3), 0.0),
        ("R", (0, 1), 0.0),
        ("RX", (2,), 0.0),
    ])
    def test_single_instruction_families(self, name, targets, arg):
        """One instruction of each family after a noisy warm-up frame."""
        c = Circuit(4)
        c.append("R", [0, 1, 2, 3])
        c.append("DEPOLARIZE1", [0, 1, 2, 3], 0.5)  # populate the frame
        c.append(name, targets, arg)
        c.append("M", [0, 1, 2, 3])
        c.append("DETECTOR", [0])
        c.append("DETECTOR", [1, 2])
        c.append("OBSERVABLE_INCLUDE", [3], 0)
        got = PackedFrameSimulator(c, seed=5).sample(130)
        want = reference_packed_sample(c, 130, seed=5)
        assert np.array_equal(got.detectors_packed, want.detectors_packed)
        assert np.array_equal(got.observables_packed, want.observables_packed)


class _ConstantRng:
    """Stub generator: every draw returns one fixed value (fills ``out=``)."""

    def __init__(self, value):
        self.value = value

    def random(self, size=None, out=None):
        if out is not None:
            out[...] = self.value
            return out
        return np.full(size, self.value)


class TestDepolarize2ClipEdge:
    """A draw within 1 ulp below p can round ``r / (p/15)`` to exactly 15.0;
    the frozen reference clips the Pauli code to 14 (Z⊗Z) and the vectorised
    kernels must match instead of silently dropping the error."""

    P_EDGE = 0.015060604154043557

    @pytest.mark.parametrize("scale", [1, 2])  # sparse (p <= 0.02) and dense
    def test_edge_draw_applies_zz(self, scale):
        p = self.P_EDGE * scale
        r = float(np.nextafter(p, 0))
        assert r < p and r / (p / 15) == 15.0  # the FP edge this test pins
        c = Circuit(2)
        c.append("R", [0, 1])
        c.append("DEPOLARIZE2", [0, 1], p)
        c.append("MX", [0, 1])  # X-basis measurement records the Z frame
        c.append("DETECTOR", [0])
        c.append("DETECTOR", [1])
        sim = PackedFrameSimulator(c, seed=0)
        sim.rng = _ConstantRng(r)
        got = sim.sample(1)
        assert got.fired_detectors() == [(0, 1)]
