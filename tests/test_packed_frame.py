"""Packed vs unpacked frame simulation: instruction-by-instruction agreement.

The packed simulator must consume the RNG stream exactly like the unpacked
one and hold a bit-identical frame after **every** instruction — that is
what makes the pipeline's tallies bit-identical to the legacy path.  The
``trace`` hooks on both simulators expose the frame after each instruction.
"""

import numpy as np
import pytest

from repro.stabilizer import (
    Circuit,
    FrameSimulator,
    PackedFrameSimulator,
    sample_detectors,
    sample_detectors_packed,
)
from repro.stabilizer.bitpack import num_words, pack_bits, popcount, unpack_bits


def _noisy_circuit(p=0.1) -> Circuit:
    """Exercise every instruction the simulators implement."""
    c = Circuit(6)
    c.append("R", [0, 1, 2, 3])
    c.append("RX", [4, 5])
    c.append("X_ERROR", [0, 1], p)
    c.append("Z_ERROR", [4], p)
    c.append("Y_ERROR", [2], p)
    c.append("DEPOLARIZE1", [3], p)
    c.append("H", [1])
    c.append("S", [2])
    c.append("X", [0])
    c.append("Z", [5])
    c.append("CX", [0, 3, 1, 2])
    c.append("CZ", [4, 5])
    c.append("DEPOLARIZE2", [0, 1], p)
    c.append("TICK")
    c.append("MR", [3])
    c.append("M", [0, 1])
    c.append("MX", [4])
    c.append("DETECTOR", [0])
    c.append("DETECTOR", [1, 2])
    c.append("M", [2])
    c.append("OBSERVABLE_INCLUDE", [4], 0)
    c.append("OBSERVABLE_INCLUDE", [3], 1)
    return c


def _memory_circuit(distance=3, p=0.005):
    from repro.core.adaptation import adapt_patch
    from repro.noise.circuit_noise import CircuitNoiseModel
    from repro.noise.fabrication import DefectSet
    from repro.surface_code.circuits import build_memory_circuit
    from repro.surface_code.layout import RotatedSurfaceCodeLayout

    patch = adapt_patch(RotatedSurfaceCodeLayout(distance), DefectSet.of())
    return build_memory_circuit(patch, CircuitNoiseModel.standard(p), distance)


class TestBitpack:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 200])
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        bits = rng.random(n) < 0.4
        packed = pack_bits(bits)
        assert packed.shape == (num_words(n),)
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_bits(packed, n), bits)
        assert popcount(packed) == int(bits.sum())

    def test_roundtrip_matrix(self):
        rng = np.random.default_rng(0)
        bits = rng.random((5, 130)) < 0.5
        assert np.array_equal(unpack_bits(pack_bits(bits), 130), bits)

    def test_padding_bits_are_zero(self):
        packed = pack_bits(np.ones(3, dtype=bool))
        assert popcount(packed) == 3


class TestInstructionByInstructionAgreement:
    @pytest.mark.parametrize("shots", [1, 7, 64, 130])
    def test_full_gate_set(self, shots):
        circuit = _noisy_circuit()
        packed_states = []
        unpacked_states = []
        PackedFrameSimulator(circuit, seed=99).sample(
            shots, trace=lambda i, inst, x, z, m: packed_states.append(
                (i, inst.name, x, z, m)))
        FrameSimulator(circuit, seed=99).sample(
            shots, trace=lambda i, inst, x, z, m: unpacked_states.append(
                (i, inst.name, x, z, m)))
        assert len(packed_states) == len(circuit) == len(unpacked_states)
        for (i, name, px, pz, pm), (_, _, ux, uz, um) in zip(
                packed_states, unpacked_states):
            assert np.array_equal(px, ux), f"X frame diverged after {i}:{name}"
            assert np.array_equal(pz, uz), f"Z frame diverged after {i}:{name}"
            assert np.array_equal(pm, um), f"measurement record diverged after {i}:{name}"

    def test_memory_circuit_agreement(self):
        circuit = _memory_circuit()
        for shots in (1, 64, 257):
            unpacked = FrameSimulator(circuit, seed=7).sample(shots)
            packed = PackedFrameSimulator(circuit, seed=7).sample(shots)
            assert np.array_equal(unpacked.detectors, packed.detectors)
            assert np.array_equal(unpacked.observables, packed.observables)


class TestPackedSamples:
    def test_shapes_and_views(self):
        circuit = _memory_circuit()
        samples = sample_detectors_packed(circuit, shots=70, seed=3)
        assert samples.num_shots == 70
        assert samples.detectors.shape == (70, circuit.num_detectors)
        assert samples.observables.shape == (70, circuit.num_observables)
        legacy = samples.to_detector_samples()
        assert np.array_equal(legacy.detectors, samples.detectors)

    def test_sparse_extraction_matches_dense(self):
        circuit = _memory_circuit(p=0.01)
        samples = sample_detectors_packed(circuit, shots=150, seed=5)
        dense = samples.detectors
        fired = samples.fired_detectors()
        assert len(fired) == 150
        for s in range(150):
            assert fired[s] == tuple(np.flatnonzero(dense[s]))
        # Windowed extraction (word-unaligned boundaries).
        window = samples.fired_detectors(67, 131)
        for i, s in enumerate(range(67, 131)):
            assert window[i] == tuple(np.flatnonzero(dense[s]))
        obs_window = samples.flipped_observables(1, 150)
        dense_obs = samples.observables
        for i, s in enumerate(range(1, 150)):
            assert obs_window[i] == tuple(np.flatnonzero(dense_obs[s]))

    def test_detection_fraction_matches_dense(self):
        circuit = _memory_circuit(p=0.01)
        samples = sample_detectors_packed(circuit, shots=100, seed=6)
        dense = sample_detectors(circuit, shots=100, seed=6)
        assert samples.detection_fraction() == pytest.approx(
            dense.detection_fraction())

    def test_range_validation(self):
        circuit = _memory_circuit()
        samples = sample_detectors_packed(circuit, shots=10, seed=1)
        with pytest.raises(ValueError):
            samples.fired_detectors(5, 11)
        assert samples.fired_detectors(4, 4) == []

    def test_shots_must_be_positive(self):
        with pytest.raises(ValueError):
            PackedFrameSimulator(_noisy_circuit()).sample(0)
