"""Tests for the rotated surface-code and stability-patch layouts."""

import pytest

from repro.stabilizer.pauli import PauliString, batch_commutes
from repro.surface_code import RotatedSurfaceCodeLayout, StabilityLayout, plaquette_kind


def _check_paulis(layout):
    index = {d: i for i, d in enumerate(layout.data_qubits)}
    out = []
    for check in layout.checks:
        out.append(PauliString.from_sparse(
            len(index), {index[d]: check.kind for d in check.data}))
    return out, index


class TestGeometry:
    @pytest.mark.parametrize("d", [2, 3, 5, 7, 9, 11, 13])
    def test_counts(self, d):
        layout = RotatedSurfaceCodeLayout(d)
        assert layout.num_data_qubits == d * d
        assert len(layout.checks) == d * d - 1
        assert layout.num_fabricated_qubits == 2 * d * d - 1
        assert layout.num_links == 4 * d * (d - 1)

    @pytest.mark.parametrize("d", [3, 5, 7, 9])
    def test_every_data_qubit_in_both_check_types(self, d):
        layout = RotatedSurfaceCodeLayout(d)
        for data, checks in layout.checks_containing.items():
            kinds = {c.kind for c in checks}
            assert kinds == {"X", "Z"}, f"{data} only touches {kinds}"

    @pytest.mark.parametrize("d", [3, 5, 7, 9])
    def test_all_checks_commute(self, d):
        paulis, _ = _check_paulis(RotatedSurfaceCodeLayout(d))
        assert batch_commutes(paulis)

    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_check_weights(self, d):
        layout = RotatedSurfaceCodeLayout(d)
        weights = sorted(c.weight for c in layout.checks)
        assert set(weights) <= {2, 4}
        assert weights.count(2) == 2 * (d - 1)

    def test_plaquette_kind_checkerboard(self):
        assert plaquette_kind((2, 2)) == "X"
        assert plaquette_kind((4, 2)) == "Z"
        assert plaquette_kind((4, 4)) == "X"
        with pytest.raises(ValueError):
            plaquette_kind((1, 2))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            RotatedSurfaceCodeLayout(1)

    def test_is_data_is_ancilla(self):
        layout = RotatedSurfaceCodeLayout(3)
        assert layout.is_data((1, 1))
        assert not layout.is_ancilla((1, 1))
        assert layout.is_ancilla((2, 2))
        assert not layout.is_data((2, 2))

    def test_links_touch_valid_pairs(self):
        layout = RotatedSurfaceCodeLayout(5)
        for data, anc in layout.links:
            assert layout.is_data(data)
            assert layout.is_ancilla(anc)
            assert abs(data[0] - anc[0]) == 1 and abs(data[1] - anc[1]) == 1

    def test_side_of(self):
        layout = RotatedSurfaceCodeLayout(5)
        assert set(layout.side_of((1, 1))) == {"top", "left"}
        assert layout.side_of((5, 5)) == []
        assert layout.side_of((9, 5)) == ["right"]


class TestLogicalOperators:
    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_logical_x_commutes_with_all_z_checks(self, d):
        layout = RotatedSurfaceCodeLayout(d)
        paulis, index = _check_paulis(layout)
        xl = PauliString.from_sparse(
            len(index), {index[q]: "X" for q in layout.logical_x_support()})
        for check, pauli in zip(layout.checks, paulis):
            if check.kind == "Z":
                assert xl.commutes_with(pauli)

    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_logical_z_commutes_with_all_x_checks(self, d):
        layout = RotatedSurfaceCodeLayout(d)
        paulis, index = _check_paulis(layout)
        zl = PauliString.from_sparse(
            len(index), {index[q]: "Z" for q in layout.logical_z_support()})
        for check, pauli in zip(layout.checks, paulis):
            if check.kind == "X":
                assert zl.commutes_with(pauli)

    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_logicals_anticommute_and_have_weight_d(self, d):
        layout = RotatedSurfaceCodeLayout(d)
        index = {q: i for i, q in enumerate(layout.data_qubits)}
        xl = PauliString.from_sparse(
            len(index), {index[q]: "X" for q in layout.logical_x_support()})
        zl = PauliString.from_sparse(
            len(index), {index[q]: "Z" for q in layout.logical_z_support()})
        assert xl.anticommutes_with(zl)
        assert xl.weight() == d
        assert zl.weight() == d

    def test_boundary_sides(self):
        layout = RotatedSurfaceCodeLayout(3)
        sides = layout.boundary_sides()
        assert sides["top"] == "X" and sides["left"] == "Z"


class TestStabilityLayout:
    @pytest.mark.parametrize("d", [2, 4, 6, 8])
    def test_product_of_z_checks_is_identity(self, d):
        layout = StabilityLayout(d)
        index = {q: i for i, q in enumerate(layout.data_qubits)}
        product = PauliString.identity(len(index))
        for check in layout.checks:
            if check.kind == "Z":
                product = product * PauliString.from_sparse(
                    len(index), {index[q]: "Z" for q in check.data})
        assert product.is_identity()

    @pytest.mark.parametrize("d", [4, 6])
    def test_all_checks_commute(self, d):
        paulis, _ = _check_paulis(StabilityLayout(d))
        assert batch_commutes(paulis)

    def test_every_data_qubit_in_exactly_two_z_checks(self):
        layout = StabilityLayout(6)
        for data, checks in layout.checks_containing.items():
            assert sum(1 for c in checks if c.kind == "Z") == 2

    def test_boundaries_all_z(self):
        assert set(StabilityLayout(4).boundary_sides().values()) == {"Z"}

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            StabilityLayout(5)

    def test_no_logical_operators_exposed(self):
        with pytest.raises(NotImplementedError):
            StabilityLayout(4).logical_x_support()
