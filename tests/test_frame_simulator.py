"""Tests for the vectorised Pauli-frame sampler."""

import pytest

from repro.stabilizer import Circuit, FrameSimulator, sample_detectors


def _repetition_circuit(p: float) -> Circuit:
    """Three-qubit bit-flip repetition code, one round, with parity detectors."""
    c = Circuit(5)
    c.append("R", [0, 1, 2, 3, 4])
    c.append("X_ERROR", [0, 1, 2], p)
    c.append("CX", [0, 3, 1, 4])
    c.append("CX", [1, 3, 2, 4])
    c.append("M", [3, 4])
    c.append("DETECTOR", [0])
    c.append("DETECTOR", [1])
    c.append("M", [0, 1, 2])
    c.append("OBSERVABLE_INCLUDE", [2], 0)
    return c


class TestBasics:
    def test_negative_shots_raise(self):
        with pytest.raises(ValueError):
            FrameSimulator(_repetition_circuit(0.0)).sample(-1)

    def test_zero_shots_yield_empty_sample(self):
        circuit = _repetition_circuit(0.01)
        samples = FrameSimulator(circuit, seed=0).sample(0)
        assert samples.num_shots == 0
        assert samples.detectors.shape == (0, circuit.num_detectors)
        assert samples.observables.shape == (0, circuit.num_observables)

    def test_zero_noise_gives_zero_detectors(self):
        samples = sample_detectors(_repetition_circuit(0.0), shots=64, seed=0)
        assert not samples.detectors.any()
        assert not samples.observables.any()

    def test_shapes(self):
        samples = sample_detectors(_repetition_circuit(0.01), shots=10, seed=0)
        assert samples.detectors.shape == (10, 2)
        assert samples.observables.shape == (10, 1)
        assert samples.num_shots == 10
        assert samples.num_detectors == 2
        assert samples.num_observables == 1

    def test_certain_error_flips_everything(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("X_ERROR", [0], 1.0)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        c.append("OBSERVABLE_INCLUDE", [0], 0)
        samples = sample_detectors(c, shots=32, seed=1)
        assert samples.detectors.all()
        assert samples.observables.all()

    def test_z_error_invisible_to_z_measurement(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("Z_ERROR", [0], 1.0)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        samples = sample_detectors(c, shots=16, seed=1)
        assert not samples.detectors.any()

    def test_z_error_visible_to_x_measurement(self):
        c = Circuit(1)
        c.append("RX", [0])
        c.append("Z_ERROR", [0], 1.0)
        c.append("MX", [0])
        c.append("DETECTOR", [0])
        samples = sample_detectors(c, shots=16, seed=1)
        assert samples.detectors.all()

    def test_hadamard_swaps_error_type(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("Z_ERROR", [0], 1.0)
        c.append("H", [0])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        samples = sample_detectors(c, shots=16, seed=2)
        assert samples.detectors.all()

    def test_cx_propagates_x_error_to_target(self):
        c = Circuit(2)
        c.append("R", [0, 1])
        c.append("X_ERROR", [0], 1.0)
        c.append("CX", [0, 1])
        c.append("M", [1])
        c.append("DETECTOR", [0])
        samples = sample_detectors(c, shots=16, seed=3)
        assert samples.detectors.all()

    def test_reset_clears_errors(self):
        c = Circuit(1)
        c.append("X_ERROR", [0], 1.0)
        c.append("R", [0])
        c.append("M", [0])
        c.append("DETECTOR", [0])
        samples = sample_detectors(c, shots=16, seed=4)
        assert not samples.detectors.any()

    def test_y_error_flips_both_bases(self):
        c = Circuit(2)
        c.append("R", [0])
        c.append("RX", [1])
        c.append("Y_ERROR", [0, 1], 1.0)
        c.append("M", [0])
        c.append("MX", [1])
        c.append("DETECTOR", [0])
        c.append("DETECTOR", [1])
        samples = sample_detectors(c, shots=8, seed=5)
        assert samples.detectors.all()


class TestStatistics:
    def test_single_qubit_error_rate_matches(self):
        p = 0.2
        c = Circuit(1)
        c.append("R", [0])
        c.append("X_ERROR", [0], p)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        samples = sample_detectors(c, shots=20000, seed=6)
        rate = samples.detectors.mean()
        assert abs(rate - p) < 0.02

    def test_depolarize1_flip_rate(self):
        # X or Y components flip a Z measurement: probability 2p/3.
        p = 0.3
        c = Circuit(1)
        c.append("R", [0])
        c.append("DEPOLARIZE1", [0], p)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        samples = sample_detectors(c, shots=30000, seed=7)
        assert abs(samples.detectors.mean() - 2 * p / 3) < 0.02

    def test_depolarize2_marginal_flip_rate(self):
        # Each qubit is flipped (X or Y component) by 8 of the 15 components.
        p = 0.3
        c = Circuit(2)
        c.append("R", [0, 1])
        c.append("DEPOLARIZE2", [0, 1], p)
        c.append("M", [0, 1])
        c.append("DETECTOR", [0])
        c.append("DETECTOR", [1])
        samples = sample_detectors(c, shots=30000, seed=8)
        expected = 8 * p / 15
        assert abs(samples.detectors[:, 0].mean() - expected) < 0.02
        assert abs(samples.detectors[:, 1].mean() - expected) < 0.02

    def test_repetition_code_observable_tracks_majority_failure(self):
        p = 0.1
        samples = sample_detectors(_repetition_circuit(p), shots=20000, seed=9)
        # The raw observable (qubit 2 flip) should fire at about rate p.
        assert abs(samples.observables.mean() - p) < 0.02

    def test_detection_fraction_reports_mean(self):
        samples = sample_detectors(_repetition_circuit(0.5), shots=2000, seed=10)
        assert 0.2 < samples.detection_fraction() < 0.8

    def test_noiseless_check_helper(self):
        assert FrameSimulator(_repetition_circuit(0.01)).sample_noiseless_check()
