"""Tests for syndrome-extraction circuit generation.

The key soundness property - every detector and every observable annotation
is deterministic in the absence of noise - is verified with the independent
CHP tableau simulator for a representative set of patches (defect-free,
super-stabilizer, boundary-deformed, stability).
"""

import pytest

from repro.core import adapt_patch
from repro.noise import CircuitNoiseModel, DefectSet
from repro.stabilizer import FrameSimulator, TableauSimulator
from repro.surface_code import (
    CircuitBuildError,
    RotatedSurfaceCodeLayout,
    StabilityLayout,
    SyndromeCircuitBuilder,
    build_memory_circuit,
    build_stability_circuit,
)

NOISE = CircuitNoiseModel.standard(1e-3)


def _assert_deterministic(circuit):
    result = TableauSimulator(circuit.num_qubits, seed=0).run(circuit.without_noise())
    assert result.all_detectors_zero(), "some detector fired without noise"
    assert not any(result.observables), "an observable fired without noise"


class TestDefectFreeCircuits:
    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_detectors_deterministic(self, d):
        patch = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
        _assert_deterministic(build_memory_circuit(patch, NOISE))

    def test_detector_count_matches_structure(self):
        d, rounds = 3, 3
        patch = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
        circuit = build_memory_circuit(patch, NOISE, rounds)
        z_checks = (d * d - 1) // 2
        # Round 0 + (rounds-1) comparisons + final reconstruction, Z checks only.
        assert circuit.num_detectors == z_checks * (rounds + 1)

    def test_measurement_count(self):
        d, rounds = 3, 2
        patch = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
        circuit = build_memory_circuit(patch, NOISE, rounds)
        assert circuit.num_measurements == (d * d - 1) * rounds + d * d

    def test_both_basis_detectors(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        builder = SyndromeCircuitBuilder(patch, NOISE, 3, detector_basis="both")
        circuit = builder.build()
        _assert_deterministic(circuit)
        z_only = build_memory_circuit(patch, NOISE, 3)
        assert circuit.num_detectors > z_only.num_detectors

    def test_default_rounds_equal_width(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        circuit = build_memory_circuit(patch, NOISE)
        assert circuit.num_measurements == (3 * 3 - 1) * 3 + 9

    def test_rounds_must_be_positive(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        with pytest.raises(ValueError):
            SyndromeCircuitBuilder(patch, NOISE, 0)

    def test_schedule_has_no_data_qubit_conflicts(self):
        """Within each CNOT layer every qubit participates in at most one gate."""
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of())
        circuit = build_memory_circuit(patch, NOISE, 2)
        for inst in circuit:
            if inst.name == "CX":
                assert len(set(inst.targets)) == len(inst.targets)


class TestDefectiveCircuits:
    def test_superstabilizer_patch_deterministic(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        _assert_deterministic(build_memory_circuit(patch, NOISE, 6))

    def test_large_cluster_blocked_schedule_deterministic(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(7), DefectSet.of(qubits=[(6, 6)]))
        assert any(r > 0 for r in patch.cluster_repetitions.values())
        _assert_deterministic(build_memory_circuit(patch, NOISE, 7))

    def test_boundary_deformed_patch_deterministic(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(7), DefectSet.of(qubits=[(4, 2)]))
        _assert_deterministic(build_memory_circuit(patch, NOISE, 4))

    def test_multi_defect_patch_deterministic(self):
        defects = DefectSet.of(qubits=[(5, 5), (9, 3)])
        patch = adapt_patch(RotatedSurfaceCodeLayout(7), defects)
        if patch.valid:
            _assert_deterministic(build_memory_circuit(patch, NOISE, 5))

    def test_invalid_patch_rejected(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of())
        patch.valid = False
        with pytest.raises(CircuitBuildError):
            build_memory_circuit(patch, NOISE)

    def test_gauge_ancillas_not_measured_every_round(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        circuit = build_memory_circuit(patch, NOISE, 4)
        # Total measurements < full-schedule count because gauges idle half the time.
        full = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of())
        full_circuit = build_memory_circuit(full, NOISE, 4)
        assert circuit.num_measurements < full_circuit.num_measurements


class TestStabilityCircuits:
    def test_defect_free_stability_deterministic(self):
        patch = adapt_patch(StabilityLayout(4), DefectSet.of())
        _assert_deterministic(build_stability_circuit(patch, NOISE, 4))

    def test_stability_with_disabled_center_deterministic(self):
        patch = adapt_patch(StabilityLayout(6), DefectSet.of(qubits=[(5, 5)]))
        _assert_deterministic(build_stability_circuit(patch, NOISE, 4))

    def test_stability_observable_uses_first_round(self):
        patch = adapt_patch(StabilityLayout(4), DefectSet.of())
        circuit = build_stability_circuit(patch, NOISE, 3)
        obs = circuit.observables()[0]
        num_z_checks = sum(1 for c in patch.stabilizers if c.kind == "Z")
        assert len(obs) == num_z_checks

    def test_frame_simulator_agrees_on_noiseless_determinism(self):
        patch = adapt_patch(StabilityLayout(4), DefectSet.of())
        circuit = build_stability_circuit(patch, NOISE, 3)
        assert FrameSimulator(circuit).sample_noiseless_check()


class TestNoiseModelPlacement:
    def test_noise_channel_counts_scale_with_rounds(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        two = build_memory_circuit(patch, NOISE, 2).noise_channel_count()
        four = build_memory_circuit(patch, NOISE, 4).noise_channel_count()
        assert four > two

    def test_zero_idle_factor_removes_idle_noise(self):
        quiet = CircuitNoiseModel(p=1e-3, idle_data_factor=0.0)
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        a = build_memory_circuit(patch, NOISE, 2).count("DEPOLARIZE1")
        b = build_memory_circuit(patch, quiet, 2).count("DEPOLARIZE1")
        assert b < a

    def test_bad_qubit_override_changes_rates(self):
        noise = CircuitNoiseModel.standard(1e-3).with_bad_qubit((3, 3), 0.05)
        assert noise.two_qubit_rate((3, 3), (2, 2)) == pytest.approx(0.05)
        assert noise.two_qubit_rate((1, 1), (2, 2)) == pytest.approx(1e-3)
        assert noise.readout_rate((3, 3)) > noise.readout_rate((1, 1))
