"""Tests for the fused sample→decode→tally pipeline.

The two load-bearing properties:

* chunking is invisible — chunk sizes 1, 7 and ``shots`` produce identical
  tallies (the satellite acceptance criterion), and
* the pipeline is bit-identical to the legacy unpacked
  sample-then-``decode_batch`` path for the same seed, which is what keeps
  every engine result stable across this refactor.
"""

import pytest

from repro.core.adaptation import adapt_patch
from repro.decoder import MwpmDecoder, UnionFindDecoder
from repro.engine import DecodingPipeline, PipelineStats, default_chunk_shots
from repro.engine.executor import Engine, EngineConfig
from repro.engine.tasks import LerPointTask
from repro.noise.circuit_noise import CircuitNoiseModel
from repro.noise.fabrication import DefectSet
from repro.stabilizer.dem import build_detector_error_model
from repro.stabilizer.frame import FrameSimulator
from repro.surface_code.circuits import build_memory_circuit
from repro.surface_code.layout import RotatedSurfaceCodeLayout


def _circuit(distance=3, p=0.004, rounds=None):
    patch = adapt_patch(RotatedSurfaceCodeLayout(distance), DefectSet.of())
    return build_memory_circuit(patch, CircuitNoiseModel.standard(p),
                                rounds or distance)


def _decoder(circuit, kind="mwpm"):
    dem = build_detector_error_model(circuit)
    return MwpmDecoder(dem) if kind == "mwpm" else UnionFindDecoder(dem)


def _legacy_failures(circuit, decoder_kind, shots, seed):
    """The historical unpacked path: sample, dense decode_batch, tally."""
    samples = FrameSimulator(circuit, seed=seed).sample(shots)
    decoded = _decoder(circuit, decoder_kind).decode_batch(samples.detectors)
    return decoded.logical_error_count(samples.observables)


class TestChunkInvariance:
    @pytest.mark.parametrize("decoder_kind", ["mwpm", "unionfind"])
    def test_chunk_sizes_never_change_tallies(self, decoder_kind):
        circuit = _circuit()
        shots = 40
        tallies = {}
        for chunk in (1, 7, shots):
            pipeline = DecodingPipeline(circuit, _decoder(circuit, decoder_kind),
                                        chunk_shots=chunk)
            stats = pipeline.run(shots, seed=31)
            tallies[chunk] = stats.failures
            assert stats.shots == shots
            assert stats.chunks == -(-shots // chunk)
        assert len(set(tallies.values())) == 1, tallies

    def test_env_knob_sets_default_chunk(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SHOTS", "17")
        assert default_chunk_shots() == 17
        circuit = _circuit()
        assert DecodingPipeline(circuit, _decoder(circuit)).chunk_shots == 17
        monkeypatch.setenv("REPRO_CHUNK_SHOTS", "0")
        with pytest.raises(ValueError):
            default_chunk_shots()

    def test_invalid_chunk_rejected(self):
        circuit = _circuit()
        with pytest.raises(ValueError):
            DecodingPipeline(circuit, _decoder(circuit), chunk_shots=0)


class TestBitIdentityWithLegacyPath:
    @pytest.mark.parametrize("decoder_kind", ["mwpm", "unionfind"])
    @pytest.mark.parametrize("p", [0.001, 0.006])
    def test_pipeline_matches_unpacked_decode_batch(self, decoder_kind, p):
        circuit = _circuit(p=p)
        shots = 120
        pipeline = DecodingPipeline(circuit, _decoder(circuit, decoder_kind),
                                    chunk_shots=32)
        stats = pipeline.run(shots, seed=77)
        assert stats.failures == _legacy_failures(circuit, decoder_kind,
                                                  shots, seed=77)

    def test_repeat_runs_are_deterministic_and_warm(self):
        circuit = _circuit()
        pipeline = DecodingPipeline(circuit, _decoder(circuit), chunk_shots=16)
        first = pipeline.run(60, seed=5)
        second = pipeline.run(60, seed=5)
        assert first.failures == second.failures
        # The second run decodes nothing new: every syndrome is memoised.
        assert second.distinct_syndromes == 0
        assert second.memo_hits > 0


class TestPipelineStats:
    def test_stats_accounting(self):
        circuit = _circuit(p=0.002)
        pipeline = DecodingPipeline(circuit, _decoder(circuit), chunk_shots=25)
        stats = pipeline.run(100, seed=13)
        assert isinstance(stats, PipelineStats)
        assert stats.chunks == 4
        assert 0 <= stats.failures <= stats.shots == 100
        assert 0 <= stats.empty_shots <= stats.shots
        # At p=0.002 the dedup machinery must be doing real work: far fewer
        # distinct decodes than shots.
        assert 1 <= stats.distinct_syndromes < stats.shots
        assert stats.dedup_factor > 1.0

    def test_sample_decode_time_split(self):
        circuit = _circuit(p=0.002)
        pipeline = DecodingPipeline(circuit, _decoder(circuit), chunk_shots=25)
        stats = pipeline.run(100, seed=13)
        assert stats.sample_seconds > 0.0
        assert stats.decode_seconds > 0.0
        assert 0.0 < stats.sample_fraction < 1.0
        # The split never affects the numbers.
        again = DecodingPipeline(circuit, _decoder(circuit),
                                 chunk_shots=25).run(100, seed=13)
        assert again.failures == stats.failures

    def test_shots_must_be_positive(self):
        circuit = _circuit()
        with pytest.raises(ValueError):
            DecodingPipeline(circuit, _decoder(circuit)).run(0)

    def test_memo_counters_surfaced(self, monkeypatch):
        """The syndrome-memo hit/eviction counters flow through the stats
        (and from there into the BENCH decoder artifacts), so
        REPRO_SYNDROME_CACHE can be sized from CI data."""
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "2")
        circuit = _circuit(p=0.006)
        tiny = DecodingPipeline(circuit, _decoder(circuit), chunk_shots=25)
        stats = tiny.run(150, seed=13)
        # A 2-entry memo cannot hold this run's distinct syndromes: the
        # churn must be visible, and the memo pinned at its limit.
        assert stats.memo_evictions > 0
        assert stats.memo_size == 2
        assert stats.memo_pressure > 0.0

        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "65536")
        roomy = DecodingPipeline(circuit, _decoder(circuit), chunk_shots=25)
        relaxed = roomy.run(150, seed=13)
        assert relaxed.memo_evictions == 0
        assert relaxed.memo_pressure == 0.0
        assert relaxed.memo_size == relaxed.distinct_syndromes
        # Eviction pressure is observability only — never the numbers.
        assert relaxed.failures == stats.failures


class TestFixedSeedFailureCounts:
    """Frozen end-to-end tallies: the vectorised sampler (and any future
    sampler change) must keep these exact fixed-seed failure counts.

    Captured from the pre-vectorisation pipeline (PR 2) at p=2e-3 with
    seed 20240427 over 4000 shots.
    """

    EXPECTED = {3: 28, 5: 6}

    @pytest.mark.parametrize("distance", [3, 5])
    def test_memory_failure_counts_unchanged(self, distance):
        circuit = _circuit(distance=distance, p=2e-3, rounds=distance)
        pipeline = DecodingPipeline(circuit, _decoder(circuit))
        stats = pipeline.run(4000, seed=20240427)
        assert stats.failures == self.EXPECTED[distance]


class TestEngineIntegration:
    def test_engine_result_matches_legacy_numbers(self):
        # The executor now routes every shard through the pipeline; numbers
        # must stay bit-identical to the pre-pipeline engine (and to the
        # direct legacy path, for single-shard fixed-policy runs).
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        task = LerPointTask.from_patch("memory", patch, 0.004)
        engine = Engine(EngineConfig())
        result = engine.run_ler(task, shots=300, seed=404)
        circuit = task.build_circuit()
        assert result.failures == _legacy_failures(circuit, "mwpm", 300, seed=404)

    def test_multi_shard_determinism(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        task = LerPointTask.from_patch("memory", patch, 0.006)
        small_shards = Engine(EngineConfig(shard_size=64))
        big_shards = Engine(EngineConfig(shard_size=4096))
        many = small_shards.run_ler(task, shots=512, seed=9)
        # Shard split changes RNG stream assignment (documented), but the
        # result must be reproducible run to run.
        again = Engine(EngineConfig(shard_size=64)).run_ler(task, shots=512, seed=9)
        assert many.failures == again.failures
        one = big_shards.run_ler(task, shots=512, seed=9)
        assert one.shots == many.shots == 512
