"""Unit and property-based tests for the Pauli-string algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stabilizer.pauli import PauliString, batch_commutes, commutes, pauli_product


def pauli_strings(max_qubits: int = 12):
    return st.integers(min_value=1, max_value=max_qubits).flatmap(
        lambda n: st.text(alphabet="IXYZ", min_size=n, max_size=n)
    ).map(PauliString.from_string)


def pauli_pairs(max_qubits: int = 12):
    return st.integers(min_value=1, max_value=max_qubits).flatmap(
        lambda n: st.tuples(
            st.text(alphabet="IXYZ", min_size=n, max_size=n),
            st.text(alphabet="IXYZ", min_size=n, max_size=n),
        )
    ).map(lambda pair: (PauliString.from_string(pair[0]), PauliString.from_string(pair[1])))


class TestConstruction:
    def test_identity_has_zero_weight(self):
        assert PauliString.identity(5).weight() == 0

    def test_from_string_roundtrip(self):
        assert str(PauliString.from_string("IXZY")) == "IXZY"

    def test_from_string_rejects_bad_characters(self):
        with pytest.raises(ValueError):
            PauliString.from_string("XQ")

    def test_from_sparse(self):
        p = PauliString.from_sparse(4, {0: "X", 3: "Z"})
        assert str(p) == "XIIZ"

    def test_from_sparse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.from_sparse(2, {5: "X"})

    def test_single(self):
        assert str(PauliString.single(3, 1, "Y")) == "IYI"

    def test_mismatched_xs_zs_rejected(self):
        with pytest.raises(ValueError):
            PauliString(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))


class TestAlgebra:
    def test_xz_anticommute(self):
        assert PauliString.from_string("X").anticommutes_with(PauliString.from_string("Z"))

    def test_xx_commute(self):
        assert commutes(PauliString.from_string("XX"), PauliString.from_string("XX"))

    def test_two_qubit_overlap_commutes(self):
        a = PauliString.from_string("XXI")
        b = PauliString.from_string("ZZI")
        assert a.commutes_with(b)

    def test_product_of_x_and_z_is_y(self):
        p = PauliString.from_string("X") * PauliString.from_string("Z")
        assert str(p) == "Y"

    def test_product_mismatched_length_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_string("X") * PauliString.from_string("XX")

    def test_support_and_sparse(self):
        p = PauliString.from_string("IXIZ")
        assert p.support() == [1, 3]
        assert p.to_sparse() == {1: "X", 3: "Z"}

    def test_restricted_to(self):
        p = PauliString.from_string("XYZ")
        assert str(p.restricted_to([0, 2])) == "XIZ"

    def test_equality_and_hash(self):
        a = PauliString.from_string("XZ")
        b = PauliString.from_string("XZ")
        assert a == b and hash(a) == hash(b)

    def test_pauli_product_empty_requires_num_qubits(self):
        with pytest.raises(ValueError):
            pauli_product([])
        assert pauli_product([], num_qubits=3).is_identity()

    def test_batch_commutes_detects_violation(self):
        group = [PauliString.from_string("XI"), PauliString.from_string("ZI")]
        assert not batch_commutes(group)
        group = [PauliString.from_string("XX"), PauliString.from_string("ZZ")]
        assert batch_commutes(group)


class TestProperties:
    @given(pauli_strings())
    @settings(max_examples=60)
    def test_self_product_is_identity(self, p):
        assert (p * p).is_identity()

    @given(pauli_pairs())
    @settings(max_examples=60)
    def test_commutation_is_symmetric(self, pair):
        a, b = pair
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(pauli_pairs())
    @settings(max_examples=60)
    def test_product_commutes_with_both_iff_consistent(self, pair):
        # (a*b) commutes with a exactly when b commutes with a.
        a, b = pair
        assert (a * b).commutes_with(a) == b.commutes_with(a)

    @given(pauli_strings())
    @settings(max_examples=60)
    def test_weight_equals_support_size(self, p):
        assert p.weight() == len(p.support())

    @given(pauli_pairs())
    @settings(max_examples=60)
    def test_product_weight_triangle(self, pair):
        a, b = pair
        assert (a * b).weight() <= a.weight() + b.weight()

    @given(pauli_strings())
    @settings(max_examples=60)
    def test_identity_commutes_with_everything(self, p):
        assert p.commutes_with(PauliString.identity(p.num_qubits))
