"""Tests for post-selection criteria, chiplets, yield and overhead models."""

import pytest

from repro.chiplet import (
    Chiplet,
    ChipletDevice,
    STANDARD_1,
    STANDARD_4,
    YieldEstimator,
    average_cost_per_logical_qubit,
    defect_intolerant_overhead,
    defect_intolerant_yield,
    edge_deformation_width,
    edge_is_deformation_free,
    merged_seam_distance,
    overhead_factor,
    qubits_per_chiplet,
    swap_data_syndrome_roles,
)
from repro.chiplet.overhead import OverheadStudy, optimal_chiplet_size
from repro.core import (
    DefectFreeCriterion,
    DistanceCriterion,
    adapt_patch,
    evaluate_patch,
    rank_by_chosen_indicators,
    rank_by_faulty_count,
    reference_metrics,
    select_fraction,
)
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT, LINK_ONLY
from repro.surface_code import RotatedSurfaceCodeLayout


class TestPostSelection:
    def test_reference_metrics_cached_and_correct(self):
        ref = reference_metrics(5)
        assert ref.distance == 5
        assert reference_metrics(5) is ref

    def test_distance_criterion_accepts_better_patch(self):
        crit = DistanceCriterion(4)
        good = evaluate_patch(adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of()))
        assert crit.accepts(good)

    def test_distance_criterion_rejects_short_patch(self):
        crit = DistanceCriterion(7)
        small = evaluate_patch(adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of()))
        assert not crit.accepts(small)

    def test_distance_criterion_tie_break_on_operator_count(self):
        crit = DistanceCriterion(4)
        # A defective l=5 patch with d=4 has fewer short logicals than the
        # defect-free d=4 reference, so it is accepted at the tie.
        defective = evaluate_patch(
            adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)])))
        assert defective.distance == 4
        assert crit.accepts(defective)

    def test_defect_free_criterion(self):
        crit = DefectFreeCriterion()
        clean = evaluate_patch(adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of()))
        dirty = evaluate_patch(
            adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)])))
        assert crit.accepts(clean)
        assert not crit.accepts(dirty)

    def test_rankings_and_selection(self):
        layout = RotatedSurfaceCodeLayout(7)
        model = DefectModel(LINK_AND_QUBIT, 0.02)
        metrics = [
            evaluate_patch(adapt_patch(layout, model.sample(layout, rng=s)))
            for s in range(5)
        ]
        chosen = rank_by_chosen_indicators(metrics)
        baseline = rank_by_faulty_count(metrics)
        assert sorted(chosen) == list(range(5))
        assert sorted(baseline) == list(range(5))
        assert metrics[chosen[0]].distance == max(m.distance for m in metrics)
        assert len(select_fraction(chosen, 0.4)) == 2
        with pytest.raises(ValueError):
            select_fraction(chosen, 0.0)


class TestChiplet:
    def test_sample_and_metrics(self):
        chiplet = Chiplet.sample(5, DefectModel(LINK_ONLY, 0.02), rng=1)
        assert chiplet.size == 5
        assert chiplet.num_fabricated_qubits == 49
        assert chiplet.metrics.distance >= 0

    def test_rotation_swaps_roles(self):
        defects = DefectSet.of(qubits=[(6, 6)])
        swapped = swap_data_syndrome_roles(defects, size=5)
        (coord,) = swapped.faulty_qubits
        layout = RotatedSurfaceCodeLayout(5)
        assert layout.is_data(coord)

    def test_rotation_preserves_defect_counts(self):
        layout = RotatedSurfaceCodeLayout(7)
        defects = DefectModel(LINK_AND_QUBIT, 0.05).sample(layout, rng=2)
        swapped = swap_data_syndrome_roles(defects, 7)
        assert swapped.num_faulty_qubits == defects.num_faulty_qubits

    def test_best_orientation_prefers_passing_one(self):
        # A chiplet whose faulty measurement qubit becomes a (less damaging)
        # data qubit after rotation should use the rotation when needed.
        chiplet = Chiplet(RotatedSurfaceCodeLayout(7), DefectSet.of(qubits=[(6, 6)]))
        crit = DistanceCriterion(chiplet.metrics.distance + 1)
        best = chiplet.best_orientation(crit)
        assert best.metrics.distance >= chiplet.metrics.distance

    def test_device_assembly(self):
        device, fabricated = ChipletDevice.assemble(
            rows=1, cols=2, size=5, defect_model=DefectModel(LINK_ONLY, 0.01),
            criterion=DistanceCriterion(4), rng=3,
        )
        assert device.is_complete
        assert fabricated >= 2
        assert device.total_fabricated_qubits() == 2 * 49
        assert sum(device.distance_distribution().values()) == 2


class TestYieldAndOverhead:
    def test_zero_defect_rate_gives_full_yield(self):
        estimator = YieldEstimator(5, DefectModel(LINK_ONLY, 0.0),
                                   DistanceCriterion(5), seed=0)
        assert estimator.run(20).yield_fraction == 1.0

    def test_yield_decreases_with_defect_rate(self):
        low = YieldEstimator(7, DefectModel(LINK_AND_QUBIT, 0.002),
                             DistanceCriterion(5), seed=0).run(60)
        high = YieldEstimator(7, DefectModel(LINK_AND_QUBIT, 0.02),
                              DistanceCriterion(5), seed=0).run(60)
        assert high.yield_fraction <= low.yield_fraction

    def test_defect_intolerant_yield_analytic(self):
        layout = RotatedSurfaceCodeLayout(9)
        model = DefectModel(LINK_ONLY, 0.01)
        expected = (1 - 0.01) ** layout.num_links
        assert defect_intolerant_yield(9, model) == pytest.approx(expected)

    def test_overhead_formulas(self):
        assert qubits_per_chiplet(9) == 161
        assert average_cost_per_logical_qubit(9, 0.5) == pytest.approx(322)
        assert overhead_factor(9, 1.0, 9) == pytest.approx(1.0)
        assert overhead_factor(9, 0.0, 9) == float("inf")

    def test_defect_intolerant_overhead_grows_with_rate(self):
        small = defect_intolerant_overhead(9, DefectModel(LINK_ONLY, 0.001), 9)
        large = defect_intolerant_overhead(9, DefectModel(LINK_ONLY, 0.01), 9)
        assert large > small > 1.0

    def test_overhead_study_and_envelope(self):
        study = OverheadStudy(
            target_distance=3, defect_model_kind=LINK_ONLY,
            chiplet_sizes=(3, 5), defect_rates=(0.0, 0.02), samples=30, seed=1,
        )
        points = study.run()
        assert len(points) == 4
        envelope = OverheadStudy.envelope(points)
        assert set(envelope) == {0.0, 0.02}
        best = optimal_chiplet_size(points, 0.0)
        assert best.chiplet_size == 3
        with pytest.raises(ValueError):
            optimal_chiplet_size(points, 0.123)

    def test_distance_distribution_recorded(self):
        estimator = YieldEstimator(7, DefectModel(LINK_AND_QUBIT, 0.01),
                                   DistanceCriterion(5), seed=2)
        result = estimator.run(40)
        dist = result.distance_distribution()
        assert abs(sum(dist.values()) - 1.0) < 1e-9


class TestBoundaryStandards:
    def test_defect_free_edges_are_clean(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(7), DefectSet.of())
        for edge in ("top", "bottom", "left", "right"):
            assert edge_is_deformation_free(patch, edge)
            assert edge_deformation_width(patch, edge) == 0
        assert STANDARD_1.accepts(patch)

    def test_edge_defect_detected(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(9), DefectSet.of(qubits=[(3, 1)]))
        assert not edge_is_deformation_free(patch, "top")
        assert edge_is_deformation_free(patch, "bottom")

    def test_standard_ordering(self):
        """Standard 1 (strictest) implies standard 4 (most relaxed)."""
        layout = RotatedSurfaceCodeLayout(9)
        model = DefectModel(LINK_AND_QUBIT, 0.01)
        s1 = STANDARD_1.with_target(7)
        s4 = STANDARD_4.with_target(7)
        for seed in range(8):
            patch = adapt_patch(layout, model.sample(layout, rng=seed))
            if s1.accepts(patch):
                assert s4.accepts(patch)

    def test_merged_seam_distance_drop(self):
        layout = RotatedSurfaceCodeLayout(9)
        a = adapt_patch(layout, DefectSet.of(qubits=[(9, 17)]))
        b = adapt_patch(layout, DefectSet.of(qubits=[(9, 1)]))
        assert merged_seam_distance(a, b, "bottom") < 9
        clean = adapt_patch(layout, DefectSet.of())
        assert merged_seam_distance(clean, clean, "bottom") == 9
