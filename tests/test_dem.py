"""Tests for detector-error-model extraction."""

import pytest

from repro.core import adapt_patch
from repro.noise import CircuitNoiseModel, DefectSet
from repro.stabilizer import Circuit, build_detector_error_model
from repro.stabilizer.dem import DemError, _xor_combine
from repro.surface_code import RotatedSurfaceCodeLayout, build_memory_circuit


def _two_bit_repetition(p_data: float, p_meas: float) -> Circuit:
    """Two data qubits, one parity ancilla, two rounds."""
    c = Circuit(3)
    c.append("R", [0, 1, 2])
    for r in range(2):
        c.append("X_ERROR", [0, 1], p_data)
        c.append("CX", [0, 2, 1, 2])
        c.append("X_ERROR", [2], p_meas)
        c.append("MR", [2])
        if r == 0:
            c.append("DETECTOR", [0])
        else:
            c.append("DETECTOR", [0, 1])
    c.append("M", [0, 1])
    c.append("DETECTOR", [2, 3, 1])
    c.append("OBSERVABLE_INCLUDE", [2], 0)
    return c


class TestSmallCircuits:
    def test_no_noise_gives_empty_dem(self):
        dem = build_detector_error_model(_two_bit_repetition(0.0, 0.0))
        assert len(dem) == 0

    def test_measurement_error_creates_time_edge(self):
        dem = build_detector_error_model(_two_bit_repetition(0.0, 0.01))
        # A flip of the round-0 ancilla measurement flips detectors 0 and 1.
        assert any(e.detectors == (0, 1) and not e.observables for e in dem)

    def test_data_error_flips_observable(self):
        dem = build_detector_error_model(_two_bit_repetition(0.01, 0.0))
        assert any(e.observables == (0,) for e in dem)

    def test_probabilities_combine_with_xor_rule(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("X_ERROR", [0], 0.1)
        c.append("X_ERROR", [0], 0.2)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = build_detector_error_model(c)
        assert len(dem) == 1
        assert dem.errors[0].probability == pytest.approx(_xor_combine(0.1, 0.2))

    def test_xor_combine_values(self):
        assert _xor_combine(0.0, 0.3) == pytest.approx(0.3)
        assert _xor_combine(0.5, 0.5) == pytest.approx(0.5)

    def test_depolarize1_splits_into_basis_mechanisms(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("DEPOLARIZE1", [0], 0.03)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        dem = build_detector_error_model(c)
        # Only the X and Y components are visible; they merge into one edge of
        # probability ~2p/3 (the XOR-combination rule differs from the exact
        # mutually-exclusive value only at second order in p).
        assert len(dem) == 1
        assert dem.errors[0].probability == pytest.approx(2 * 0.03 / 3, rel=2e-2)

    def test_error_with_zero_probability_dropped(self):
        c = Circuit(1)
        c.append("R", [0])
        c.append("X_ERROR", [0], 0.0)
        c.append("M", [0])
        c.append("DETECTOR", [0])
        assert len(build_detector_error_model(c)) == 0

    def test_demerror_graphlike(self):
        assert DemError(0.1, (1, 2), ()).is_graphlike()
        assert not DemError(0.1, (1, 2, 3), ()).is_graphlike()


class TestSurfaceCodeDems:
    @pytest.fixture(scope="class")
    def defect_free_dem(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        circuit = build_memory_circuit(patch, CircuitNoiseModel.standard(1e-3))
        return build_detector_error_model(circuit)

    def test_all_errors_are_graphlike(self, defect_free_dem):
        assert all(e.is_graphlike() for e in defect_free_dem)

    def test_no_undetectable_logical_errors(self, defect_free_dem):
        """A distance-3 circuit must not contain weight-1 logical errors."""
        assert defect_free_dem.undetectable_logical_errors() == []

    def test_probabilities_in_range(self, defect_free_dem):
        assert all(0 < e.probability < 0.5 for e in defect_free_dem)

    def test_union_bound_reasonable(self, defect_free_dem):
        assert 0 < defect_free_dem.total_error_probability_bound() <= 1.0

    def test_detector_indices_in_range(self, defect_free_dem):
        for e in defect_free_dem:
            assert all(0 <= d < defect_free_dem.num_detectors for d in e.detectors)

    def test_superstabilizer_patch_dem_has_no_undetectable_logicals(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        circuit = build_memory_circuit(patch, CircuitNoiseModel.standard(1e-3))
        dem = build_detector_error_model(circuit)
        assert dem.undetectable_logical_errors() == []
        assert all(e.is_graphlike() for e in dem)

    def test_hyperedges_kept_when_not_decomposing(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        circuit = build_memory_circuit(patch, CircuitNoiseModel.standard(1e-3))
        dem = build_detector_error_model(circuit, decompose=False)
        assert len(dem) > 0
