"""The repo must satisfy its own determinism contract.

This is the tier-1 enforcement point of :mod:`repro.lint`: a zero-finding
pass over ``src/``, ``tests/`` and ``benchmarks/`` — exactly what the CI
``repro-lint`` job runs, so a rule regression or a new violation fails the
suite locally before it fails in CI.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import iter_rules, render_json, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_repo_tree_is_lint_clean():
    findings, files_scanned = run_lint(repo_root=REPO_ROOT)
    assert files_scanned > 50  # src + tests + benchmarks really were walked
    assert findings == [], "\n".join(f.render() for f in findings)


def test_all_rules_are_registered():
    ids = sorted(rule.rule_id for rule in iter_rules())
    assert ids == ["R001", "R002", "R003", "R004", "R005", "R006"]


def test_json_report_shape():
    findings, files_scanned = run_lint(repo_root=REPO_ROOT)
    report = json.loads(render_json(findings, files_scanned))
    assert report["version"] == 1
    assert report["files_scanned"] == files_scanned
    assert report["findings"] == []
    assert all(count == 0 for count in report["counts"].values())


def test_cli_exit_codes_and_json():
    env_path = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--format", "json"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["findings"] == []

    # Unknown rule id is a usage error (exit 2), not a silent no-op.
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--rules", "R999"],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 2
