"""Tests for heterogeneous task fusion (fused shard-groups).

The load-bearing contract: **fusion is pure dispatch**.  Grouping
compatible shards of different sweep tasks into one worker invocation
(:class:`repro.stabilizer.packed.FusedProgram` +
:func:`repro.engine.executor._plan_fused_groups`) changes wall-clock and
the :class:`~repro.engine.FusionStats` counters — never the numbers.
Fused sweeps must be bit-identical to unfused execution for any grouping,
worker count and backend, with byte-identical cache records; rng modes
must never mix inside a group; and the fusion knobs must stay out of
every cache key.
"""

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core import adapt_patch
from repro.engine import (
    Engine,
    EngineConfig,
    FusionStats,
    LerPointTask,
    ShotPolicy,
    SweepItem,
)
from repro.engine.executor import (
    _plan_fused_groups,
    _run_fused_shards,
    _run_ler_shard,
    _context_for,
)
from repro.engine.scheduler import rng_mode_shot_cost
from repro.noise import DefectSet
from repro.stabilizer import packed as packed_mod
from repro.stabilizer.packed import DrawScratch, FusedProgram, fused_shot_budget
from repro.surface_code import RotatedSurfaceCodeLayout

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Localhost worker fleet (same launch recipe as test_backends)
# ----------------------------------------------------------------------
def _launch_worker():
    env = dict(os.environ)
    extra = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    if env.get("PYTHONPATH"):
        extra.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(extra)
    env["REPRO_WIRE_ALLOW"] = "test_fusion"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine.worker", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT)
    line = proc.stdout.readline().strip()
    parts = line.split()
    assert parts[:1] == ["REPRO_WORKER_LISTENING"], line
    return proc, (parts[1], int(parts[2]))


@pytest.fixture(scope="module")
def worker_hosts():
    """Two localhost repro.engine.worker processes, shared by the module."""
    procs, hosts = [], []
    try:
        for _ in range(2):
            proc, host = _launch_worker()
            procs.append(proc)
            hosts.append(host)
        yield tuple(hosts)
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)


def _engines(worker_hosts, **kwargs):
    """One engine per backend under test, workers 1/2/4 for the pool."""
    return {
        "serial": Engine(EngineConfig(backend="serial", **kwargs)),
        "process-2": Engine(EngineConfig(max_workers=2, **kwargs)),
        "process-4": Engine(EngineConfig(max_workers=4, **kwargs)),
        "socket-2": Engine(EngineConfig(backend="socket",
                                        hosts=worker_hosts, **kwargs)),
    }


def task(d=3, p=0.01, rng_mode="exact"):
    patch = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
    return LerPointTask.from_patch("memory", patch, p, rng_mode=rng_mode)


def ler_tuple(r):
    return (r.failures, r.shots, r.num_shards, r.num_detectors,
            r.num_dem_errors)


def fusion_items():
    """Mixed sweep: exact + bitgen, fixed + adaptive, d=3 and d=5."""
    return [
        SweepItem(task(3, 0.005),
                  ShotPolicy.adaptive(2048, min_shots=128,
                                      target_failures=15), 1),
        SweepItem(task(3, 0.01), ShotPolicy.fixed(640), 2),
        SweepItem(task(3, 0.02), ShotPolicy.fixed(64), 3),
        SweepItem(task(3, 0.015, rng_mode="bitgen"), ShotPolicy.fixed(640), 4),
        SweepItem(task(5, 0.01), ShotPolicy.fixed(512), 5),
        SweepItem(task(3, 0.008, rng_mode="bitgen"), ShotPolicy.fixed(256), 6),
    ]


# ----------------------------------------------------------------------
# FusedProgram / DrawScratch units
# ----------------------------------------------------------------------
class TestDrawScratch:
    def test_views_are_c_contiguous_across_shot_counts(self):
        scratch = DrawScratch()
        for rows, shots in [(4, 640), (7, 64), (3, 1024), (4, 640)]:
            rbuf, hbuf = scratch.view(rows, shots)
            assert rbuf.shape == (rows, shots) and hbuf.shape == (rows, shots)
            assert rbuf.flags.c_contiguous and hbuf.flags.c_contiguous
            assert rbuf.dtype == np.float64 and hbuf.dtype == np.bool_

    def test_buffer_grows_monotonically_and_is_reused(self):
        scratch = DrawScratch()
        scratch.view(2, 64)
        small = scratch._rflat
        scratch.view(8, 512)
        big = scratch._rflat
        assert big.size >= 8 * 512 > small.size
        scratch.view(1, 64)
        assert scratch._rflat is big  # shrink requests reuse the big buffer


class TestFusedProgram:
    def _sims(self, tasks):
        return [_context_for(t)[0].simulator for t in tasks]

    def test_segments_match_solo_samples_bit_for_bit(self):
        """Sharing one draw scratch across segments must not perturb any
        segment's stream: every fused segment equals its solo sample."""
        tasks = [task(3, 0.01), task(3, 0.02), task(5, 0.01)]
        program = FusedProgram(self._sims(tasks))
        requests = [(640, 11), (64, 12), (512, 13)]
        fused = program.run(requests)
        for t, (shots, seed), got in zip(tasks, requests, fused):
            solo = _context_for(t)[0].simulator.reseed(seed).sample(shots)
            np.testing.assert_array_equal(got.detectors_packed,
                                          solo.detectors_packed)
            np.testing.assert_array_equal(got.observables_packed,
                                          solo.observables_packed)
        assert len(program.segment_seconds) == 3

    def test_bitgen_segments_run_without_scratch(self):
        tasks = [task(3, 0.01, rng_mode="bitgen"),
                 task(3, 0.02, rng_mode="bitgen")]
        program = FusedProgram(self._sims(tasks))
        assert program._scratch is None  # bitgen draws bits, not floats
        fused = program.run([(256, 21), (128, 22)])
        for t, (shots, seed), got in zip(tasks, [(256, 21), (128, 22)], fused):
            solo = _context_for(t)[0].simulator.reseed(seed).sample(shots)
            np.testing.assert_array_equal(got.detectors_packed,
                                          solo.detectors_packed)

    def test_mixed_rng_modes_rejected(self):
        sims = self._sims([task(3, 0.01), task(3, 0.02, rng_mode="bitgen")])
        with pytest.raises(ValueError, match="rng_mode"):
            FusedProgram(sims)

    def test_empty_segment_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FusedProgram([])

    def test_request_count_mismatch_rejected(self):
        program = FusedProgram(self._sims([task(3, 0.01)]))
        with pytest.raises(ValueError, match="1 segment"):
            program.run([(64, 1), (64, 2)])


def test_run_fused_shards_matches_run_ler_shard():
    """The worker-side fused entry point returns exactly the per-job
    triples the unfused entry point computes."""
    jobs = ((task(3, 0.01), 5, 640), (task(3, 0.02), 6, 64),
            (task(3, 0.01), 7, 640))  # duplicate task: same pipeline reused
    assert _run_fused_shards(jobs) == [_run_ler_shard(*j) for j in jobs]


# ----------------------------------------------------------------------
# Planner units
# ----------------------------------------------------------------------
class TestPlanFusedGroups:
    def plan(self, shards, **kw):
        kw.setdefault("fuse_tasks", 8)
        kw.setdefault("fuse_shots", 8192)
        return _plan_fused_groups(shards, **kw)

    def test_modes_never_mix(self):
        shards = [("exact", 100, "a"), ("bitgen", 100, "b"),
                  ("exact", 100, "c"), ("bitgen", 100, "d")]
        groups = self.plan(shards)
        assert sorted(map(tuple, groups)) == [("a", "c"), ("b", "d")]

    def test_fuse_tasks_caps_group_size(self):
        shards = [("exact", 10, i) for i in range(5)]
        groups = self.plan(shards, fuse_tasks=2)
        assert [len(g) for g in groups] == [2, 2, 1]
        assert [e for g in groups for e in g] == list(range(5))

    def test_fuse_tasks_one_disables_fusion(self):
        shards = [("exact", 10, i) for i in range(4)]
        assert self.plan(shards, fuse_tasks=1) == [[0], [1], [2], [3]]

    def test_fuse_shots_budget_closes_groups(self):
        shards = [("exact", 300, "a"), ("exact", 300, "b"),
                  ("exact", 300, "c")]
        groups = self.plan(shards, fuse_shots=600)
        assert groups == [["a", "b"], ["c"]]

    def test_bitgen_shots_priced_at_a_third(self):
        # 300 bitgen shots cost 100 -> six of them fit a 600 budget.
        shards = [("bitgen", 300, i) for i in range(6)]
        assert self.plan(shards, fuse_shots=600) == [list(range(6))]
        # The same shots in exact mode split into pairs.
        shards = [("exact", 300, i) for i in range(6)]
        groups = self.plan(shards, fuse_shots=600)
        assert [len(g) for g in groups] == [2, 2, 2]

    def test_oversized_shard_dispatches_alone(self):
        shards = [("exact", 100, "a"), ("exact", 9000, "big"),
                  ("exact", 100, "b")]
        groups = self.plan(shards, fuse_shots=1000)
        assert ["big"] in groups
        assert sorted(e for g in groups for e in g) == ["a", "b", "big"]

    def test_scratch_budget_clamps_fusion(self, monkeypatch):
        """A shard whose shot count exceeds the packed draw-scratch row
        budget must not fuse — the shared scratch every other segment
        inherits would have to grow with it."""
        monkeypatch.setattr(packed_mod, "_BLOCK_BYTES", 8 * 64)
        assert fused_shot_budget() == 64
        shards = [("exact", 64, "fits"), ("exact", 65, "spills"),
                  ("exact", 64, "fits2")]
        groups = self.plan(shards, fuse_shots=8192)
        assert ["spills"] in groups
        assert ["fits", "fits2"] in groups

    def test_target_groups_splits_for_idle_slots(self):
        """Fusion must not serialise work idle workers could overlap:
        with 4 free slots, 8 eligible shards split into ceil(8/4)=2-size
        groups instead of one giant batch."""
        shards = [("exact", 10, i) for i in range(8)]
        groups = self.plan(shards, target_groups=4)
        assert [len(g) for g in groups] == [2, 2, 2, 2]

    def test_plan_order_preserved(self):
        shards = [("exact", 10, i) if i % 2 else ("bitgen", 10, i)
                  for i in range(7)]
        groups = self.plan(shards)
        assert sorted(e for g in groups for e in g) == list(range(7))
        for g in groups:
            assert g == sorted(g)  # within-group order is plan order


# ----------------------------------------------------------------------
# Engine integration: bit-identity, counters, cache parity
# ----------------------------------------------------------------------
class TestFusionBitIdentity:
    def test_fused_matches_unfused_across_all_backends(self, worker_hosts):
        """Mixed exact+bitgen sweep: serial / process 2 and 4 / socket,
        fused (default) and unfused (fuse_tasks=1) — one set of numbers."""
        reference = [ler_tuple(r) for r in
                     Engine(EngineConfig(shard_size=128, fuse_tasks=1))
                     .run_sweep(fusion_items())]
        for name, engine in _engines(worker_hosts, shard_size=128).items():
            got = [ler_tuple(r) for r in engine.run_sweep(fusion_items())]
            assert got == reference, f"{name} diverged under fusion"
            assert engine.last_fusion.fused_groups > 0, \
                f"{name} never fused (vacuous parity)"

    def test_grouping_budgets_are_invisible_in_numbers(self):
        reference = None
        for fuse_tasks, fuse_shots in [(1, 8192), (2, 8192), (8, 512),
                                       (8, 8192), (3, 1000)]:
            engine = Engine(EngineConfig(shard_size=128,
                                         fuse_tasks=fuse_tasks,
                                         fuse_shots=fuse_shots))
            got = [ler_tuple(r) for r in engine.run_sweep(fusion_items())]
            if reference is None:
                reference = got
            assert got == reference, (fuse_tasks, fuse_shots)

    def test_fusion_counters_serial(self):
        """Four single-shard fixed tasks on the serial backend fuse into
        one group of four (serial has one slot, no split pressure)."""
        items = [SweepItem(task(3, 0.01 + 0.001 * i),
                           ShotPolicy.fixed(128), 10 + i) for i in range(4)]
        engine = Engine(EngineConfig(shard_size=128))
        engine.run_sweep(items)
        fusion = engine.last_fusion
        assert fusion.dispatches == 1
        assert fusion.fused_groups == 1
        assert fusion.fused_shards == 4 == fusion.total_shards
        assert fusion.fused_tasks == 4
        assert fusion.max_group_shards == 4
        assert fusion.fused_shots == 4 * 128 == fusion.total_shots
        assert fusion.fused_shot_fraction == 1.0
        assert fusion.mean_group_tasks == 4.0

    def test_unfused_engine_reports_zero_fusion(self):
        engine = Engine(EngineConfig(shard_size=128, fuse_tasks=1))
        engine.run_sweep(fusion_items())
        assert isinstance(engine.last_fusion, FusionStats)
        assert engine.last_fusion.fused_groups == 0
        assert engine.last_fusion.fused_shot_fraction == 0.0
        assert engine.last_fusion.total_shards > 0

    def test_incompatible_rng_modes_never_fuse(self):
        """Every dispatch group observed via a submit spy holds one mode."""
        engine = Engine(EngineConfig(shard_size=128))
        backend = engine.backend
        seen_groups = []
        original = backend.submit

        def spy(fn, args):
            if fn is _run_fused_shards:
                seen_groups.append([t.rng_mode for t, _, _ in args[0]])
            return original(fn, args)

        backend.submit = spy
        try:
            engine.run_sweep(fusion_items())
        finally:
            backend.submit = original
        assert seen_groups, "sweep never dispatched a fused group"
        for modes in seen_groups:
            assert len(set(modes)) == 1, modes

    def test_cache_records_byte_identical_fused_vs_unfused(self, tmp_path):
        blobs = {}
        for name, fuse_tasks in [("fused", 8), ("unfused", 1)]:
            cache_dir = tmp_path / name
            engine = Engine(EngineConfig(shard_size=128,
                                         fuse_tasks=fuse_tasks,
                                         cache_dir=str(cache_dir)))
            results = engine.run_sweep(fusion_items())
            assert not any(r.from_cache for r in results)
            blobs[name] = {
                p.relative_to(cache_dir): p.read_bytes()
                for p in sorted(cache_dir.rglob("*.json"))
            }
        assert blobs["fused"]  # the sweep really wrote records
        assert blobs["fused"] == blobs["unfused"]

    def test_fused_run_warms_unfused_engine_and_back(self, tmp_path):
        fused = Engine(EngineConfig(shard_size=128,
                                    cache_dir=str(tmp_path)))
        unfused = Engine(EngineConfig(shard_size=128, fuse_tasks=1,
                                      cache_dir=str(tmp_path)))
        cold = fused.run_sweep(fusion_items())
        warm = unfused.run_sweep(fusion_items())
        assert all(r.from_cache for r in warm)
        assert [ler_tuple(r) for r in cold] == [ler_tuple(r) for r in warm]

    def test_partially_warm_fused_sweep(self, tmp_path):
        items = fusion_items()
        Engine(EngineConfig(shard_size=128, fuse_tasks=1,
                            cache_dir=str(tmp_path))).run_sweep([items[1],
                                                                 items[3]])
        engine = Engine(EngineConfig(shard_size=128,
                                     cache_dir=str(tmp_path)))
        results = engine.run_sweep(items)
        assert [r.from_cache for r in results] == [False, True, False, True,
                                                   False, False]
        ref = Engine(EngineConfig(shard_size=128,
                                  fuse_tasks=1)).run_sweep(items)
        assert [ler_tuple(r) for r in results] == [ler_tuple(r) for r in ref]


# ----------------------------------------------------------------------
# Config knobs, cost model, key invariance
# ----------------------------------------------------------------------
class TestFusionConfig:
    def test_fuse_knob_validation(self):
        with pytest.raises(ValueError, match="fuse_tasks"):
            EngineConfig(fuse_tasks=0)
        with pytest.raises(ValueError, match="fuse_shots"):
            EngineConfig(fuse_shots=-1)
        assert EngineConfig(fuse_tasks=1).fuse_tasks == 1  # 1 = disabled, valid

    def test_fuse_knobs_from_env(self):
        cfg = EngineConfig.from_env(env={"REPRO_FUSE_TASKS": "4",
                                         "REPRO_FUSE_SHOTS": "2048"})
        assert (cfg.fuse_tasks, cfg.fuse_shots) == (4, 2048)

    def test_garbage_fuse_env_raises_with_var_name(self):
        with pytest.raises(ValueError, match="REPRO_FUSE_TASKS"):
            EngineConfig.from_env(env={"REPRO_FUSE_TASKS": "lots"})
        with pytest.raises(ValueError, match="REPRO_FUSE_SHOTS"):
            EngineConfig.from_env(env={"REPRO_FUSE_SHOTS": "0"})

    def test_fusion_knobs_stay_out_of_cache_keys(self):
        t = task(3, 0.01)
        policy = ShotPolicy.fixed(640)
        keys = {
            Engine(replace(EngineConfig(), fuse_tasks=ft, fuse_shots=fs))
            ._cache_key(t, 7, policy)
            for ft, fs in [(1, 8192), (8, 8192), (8, 64), (3, 1000)]
        }
        assert len(keys) == 1

    def test_rng_mode_shot_cost(self):
        assert rng_mode_shot_cost("exact", 9000) == 9000
        assert rng_mode_shot_cost("bitgen", 9000) == 3000
        assert rng_mode_shot_cost("bitgen", 100) == 34  # ceiling, not floor
        assert rng_mode_shot_cost("bitgen", 0) == 0
        assert rng_mode_shot_cost("exact", -5) == 0
        with pytest.raises(ValueError, match="unknown rng_mode"):
            rng_mode_shot_cost("quantum", 100)

    def test_estimated_cost_rng_mode_aware(self):
        fixed = ShotPolicy.fixed(9000)
        assert fixed.estimated_cost(512) == 9000  # exact default unchanged
        assert fixed.estimated_cost(512, rng_mode="bitgen") == 3000
        adaptive = ShotPolicy.adaptive(8192, min_shots=512,
                                       target_failures=50)
        exact = adaptive.estimated_cost(512, 0.05)
        assert adaptive.estimated_cost(512, 0.05, rng_mode="bitgen") \
            == rng_mode_shot_cost("bitgen", exact)

    def test_spec_estimated_cost_prices_bitgen_items(self):
        from repro.service.specs import normalize_spec, spec_estimated_cost

        def sweep_spec(tasks):
            return normalize_spec({
                "kind": "sweep", "tasks": [t.payload() for t in tasks],
                "shots": 900, "seed": 1,
            })

        exact_spec = sweep_spec([task(3, 0.01), task(3, 0.02)])
        mixed_spec = sweep_spec([task(3, 0.01),
                                 task(3, 0.02, rng_mode="bitgen")])
        assert spec_estimated_cost(exact_spec) == 1800.0
        assert spec_estimated_cost(mixed_spec) == 1200.0  # 900 + 900/3
        ler_spec = normalize_spec({
            "kind": "ler",
            "task": task(3, 0.01, rng_mode="bitgen").payload(),
            "shots": 900, "seed": 1,
        })
        assert spec_estimated_cost(ler_spec) == 300.0
