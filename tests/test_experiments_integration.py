"""Integration tests: experiment drivers and paper entry points end to end.

These exercise the full pipeline (defects -> adaptation -> circuit -> DEM ->
decoder -> statistics) at very small scales so they stay fast while covering
the same code paths the benchmark harness uses.
"""

import pytest

from repro.core import adapt_patch
from repro.experiments import (
    run_cutoff_study,
    run_memory_experiment,
    run_stability_experiment,
    sample_defective_patches,
)
from repro.experiments.memory import logical_error_rate_curve
from repro.experiments.paper import (
    figure11_postselection,
    figure14_merge_example,
    figure5_to_10_study,
    table1_and_2_resources,
    table3_and_4_fidelity,
)
from repro.chiplet import ShorWorkload
from repro.experiments.slope import estimate_slope
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT
from repro.surface_code import RotatedSurfaceCodeLayout, StabilityLayout


class TestMemoryExperiments:
    def test_memory_experiment_runs_and_reports(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        result = run_memory_experiment(patch, 0.01, shots=300, seed=0)
        assert 0.0 <= result.logical_error_rate <= 1.0
        assert result.num_detectors > 0
        assert result.per_round_error_rate() <= result.logical_error_rate + 1e-9

    def test_higher_physical_error_rate_gives_higher_ler(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        low = run_memory_experiment(patch, 0.002, shots=1500, seed=1)
        high = run_memory_experiment(patch, 0.03, shots=1500, seed=1)
        assert high.logical_error_rate > low.logical_error_rate

    def test_distance_five_beats_distance_three_at_low_p(self):
        d3 = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        d5 = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of())
        r3 = run_memory_experiment(d3, 0.002, shots=3000, seed=2)
        r5 = run_memory_experiment(d5, 0.002, shots=3000, seed=2)
        assert r5.logical_error_rate <= r3.logical_error_rate + 0.003

    def test_superstabilizer_patch_decodes(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        result = run_memory_experiment(patch, 0.01, shots=400, seed=3)
        assert 0.0 <= result.logical_error_rate < 0.5

    def test_union_find_decoder_path(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        result = run_memory_experiment(patch, 0.01, shots=300, seed=4,
                                       decoder="unionfind")
        assert result.decoder == "unionfind"

    def test_unknown_decoder_rejected(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        with pytest.raises(ValueError):
            run_memory_experiment(patch, 0.01, shots=10, decoder="magic")

    def test_ler_curve_sweep(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
        results = logical_error_rate_curve(patch, (0.005, 0.02), shots=300, seed=5)
        assert len(results) == 2


class TestStabilityAndCutoff:
    def test_stability_experiment_runs(self):
        patch = adapt_patch(StabilityLayout(4), DefectSet.of())
        result = run_stability_experiment(patch, 0.01, shots=400, rounds=3, seed=0)
        assert 0.0 <= result.logical_error_rate <= 1.0

    def test_cutoff_study_structure(self):
        study = run_cutoff_study(
            size=4, rounds=3,
            physical_error_rates=(0.004,),
            bad_qubit_error_rates=(0.10,),
            shots=300, seed=1,
        )
        assert len(study.curve("disable")) == 1
        assert len(study.curve("keep", 0.10)) == 1
        # crossover_rate returns either None or one of the sampled rates.
        assert study.crossover_rate(0.10) in (None, 0.004)


class TestSlopeStudy:
    def test_sampling_and_slope_estimation(self):
        model = DefectModel(LINK_AND_QUBIT, 0.03)
        patches = sample_defective_patches(5, model, 2, seed=0, min_distance=3)
        assert len(patches) == 2
        record = estimate_slope(patches[0], (0.008, 0.015), shots=500, seed=1)
        assert record.metrics.distance >= 3

    def test_figure5_study_and_figure11_ranking(self):
        study = figure5_to_10_study(
            size=5, defect_rate=0.03, num_patches=2,
            physical_error_rates=(0.008, 0.015), shots=500, seed=2,
        )
        assert len(study.records) == 2
        ranking = figure11_postselection(study, keep_fractions=(0.5, 1.0))
        assert set(ranking) == {"baseline", "chosen"}


class TestPaperTables:
    def test_figure14_example(self):
        result = figure14_merge_example(size=7)
        assert result["merged_seam_distance"] < result["intact_seam_distance"]

    def test_tables_pipeline_small_scale(self):
        workload = ShorWorkload(target_distance=5)
        resources = table1_and_2_resources(
            defect_rate=0.002, chiplet_size=7, workload=workload,
            samples=20, seed=3,
        )
        assert set(resources) == {"no-defect", "defect-intolerant", "super-stabilizer"}
        fidelities = table3_and_4_fidelity(resources, workload=workload)
        assert set(fidelities) == set(resources)
        assert resources["no-defect"].overhead == pytest.approx(1.0)
