"""Tests for the defect-adaptation algorithm (the paper's core contribution)."""

import pytest

from repro.core import adapt_patch, cluster_diameter, defect_clusters, evaluate_patch
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT, LINK_ONLY
from repro.surface_code import RotatedSurfaceCodeLayout, StabilityLayout


class TestDefectClusters:
    def test_single_site(self):
        assert defect_clusters([(3, 3)]) == [{(3, 3)}]
        assert cluster_diameter([(3, 3)]) == 0.0

    def test_adjacent_sites_merge(self):
        clusters = defect_clusters([(3, 3), (4, 4), (9, 9)])
        assert len(clusters) == 2

    def test_diameter_in_data_qubit_units(self):
        assert cluster_diameter([(1, 1), (5, 1)]) == 2.0

    def test_empty(self):
        assert defect_clusters([]) == []


class TestDefectFree:
    @pytest.mark.parametrize("d", [3, 5, 7, 9])
    def test_defect_free_patch_is_unchanged(self, d):
        patch = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
        assert patch.valid
        assert not patch.disabled_data
        assert not patch.disabled_ancillas
        assert len(patch.stabilizers) == d * d - 1
        assert not patch.super_stabilizers
        assert patch.num_logical_qubits() == 1
        assert patch.check_invariants() == []


class TestPaperFigure1Examples:
    def test_fig1a_interior_data_defect(self):
        """l=5 with one broken interior data qubit: d=4, weight-2 gauge groups."""
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        assert patch.valid
        metrics = evaluate_patch(patch)
        assert metrics.distance_x == 4
        assert metrics.distance_z == 4
        kinds = sorted((ss.kind, ss.num_gauges) for ss in patch.super_stabilizers)
        assert kinds == [("X", 2), ("Z", 2)]
        assert patch.num_logical_qubits() == 1
        assert patch.check_invariants() == []

    def test_fig1b_interior_syndrome_defect(self):
        """l=7 with one broken interior measurement qubit: d=5, 4-gauge groups."""
        patch = adapt_patch(RotatedSurfaceCodeLayout(7), DefectSet.of(qubits=[(6, 6)]))
        assert patch.valid
        metrics = evaluate_patch(patch)
        assert metrics.distance == 5
        kinds = sorted((ss.kind, ss.num_gauges) for ss in patch.super_stabilizers)
        assert kinds == [("X", 4), ("Z", 4)]
        # All four data neighbours of the broken ancilla are disabled.
        assert {(5, 5), (7, 5), (5, 7), (7, 7)} <= set(patch.disabled_data)
        assert patch.check_invariants() == []

    def test_syndrome_defect_near_boundary_deforms(self):
        """A measurement qubit adjacent to a boundary of the other colour is
        excised along with two data qubits and one weight-2 check (Fig. 1d)."""
        patch = adapt_patch(RotatedSurfaceCodeLayout(9), DefectSet.of(qubits=[(4, 2)]))
        assert patch.valid
        assert not patch.super_stabilizers
        assert len(patch.disabled_data) == 2
        assert (4, 2) in patch.disabled_ancillas
        assert patch.check_invariants() == []

    def test_corner_data_defect_minimal_exclusion(self):
        """A faulty corner data qubit excludes only one other qubit (Fig. 1d)."""
        patch = adapt_patch(RotatedSurfaceCodeLayout(9), DefectSet.of(qubits=[(1, 1)]))
        assert patch.valid
        assert patch.disabled_data == frozenset({(1, 1)})
        assert len(patch.disabled_ancillas) == 1
        assert patch.check_invariants() == []

    def test_boundary_deformation_reduces_distance_modestly(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(9), DefectSet.of(qubits=[(3, 1)]))
        metrics = evaluate_patch(patch)
        assert 7 <= metrics.distance <= 9
        assert patch.check_invariants() == []


class TestFaultyLinkRule:
    def test_link_defect_disables_data_endpoint(self):
        layout = RotatedSurfaceCodeLayout(7)
        link = ((7, 7), (6, 6))
        patch = adapt_patch(layout, DefectSet.of(links=[link]))
        assert (7, 7) in patch.disabled_data
        assert (6, 6) not in patch.disabled_ancillas

    def test_link_to_already_faulty_ancilla_is_free(self):
        layout = RotatedSurfaceCodeLayout(7)
        with_link = adapt_patch(
            layout, DefectSet.of(qubits=[(6, 6)], links=[((7, 7), (6, 6))]))
        without_link = adapt_patch(layout, DefectSet.of(qubits=[(6, 6)]))
        assert with_link.disabled_data == without_link.disabled_data

    def test_link_only_model_never_marks_qubits_faulty(self):
        layout = RotatedSurfaceCodeLayout(9)
        model = DefectModel(LINK_ONLY, 0.05)
        defects = model.sample(layout, rng=3)
        assert defects.num_faulty_qubits == 0
        assert defects.num_faulty_links > 0


class TestRandomDefects:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_link_and_qubit_defects_yield_sound_patches(self, seed):
        layout = RotatedSurfaceCodeLayout(7)
        model = DefectModel(LINK_AND_QUBIT, 0.02)
        defects = model.sample(layout, rng=seed)
        patch = adapt_patch(layout, defects)
        if not patch.valid:
            pytest.skip("pathological configuration flagged invalid (allowed)")
        problems = patch.check_invariants()
        assert problems == [], problems
        assert patch.num_logical_qubits() >= 1

    @pytest.mark.parametrize("seed", range(4))
    def test_random_link_only_defects_yield_sound_patches(self, seed):
        layout = RotatedSurfaceCodeLayout(9)
        model = DefectModel(LINK_ONLY, 0.02)
        patch = adapt_patch(layout, model.sample(layout, rng=seed))
        if not patch.valid:
            pytest.skip("pathological configuration flagged invalid (allowed)")
        assert patch.check_invariants() == []

    def test_dense_defects_do_not_crash(self):
        layout = RotatedSurfaceCodeLayout(7)
        model = DefectModel(LINK_AND_QUBIT, 0.15)
        for seed in range(3):
            patch = adapt_patch(layout, model.sample(layout, rng=seed))
            assert patch.summary()["size"] == 7

    def test_stability_layout_center_defect(self):
        patch = adapt_patch(StabilityLayout(6), DefectSet.of(qubits=[(5, 5)]))
        assert patch.valid
        assert patch.super_stabilizers
        assert patch.check_invariants() == []


class TestBookkeeping:
    def test_defects_outside_chiplet_ignored(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(99, 99)]))
        assert not patch.disabled_data
        assert patch.valid

    def test_summary_fields(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        summary = patch.summary()
        assert summary["num_faulty_qubits"] == 1
        assert summary["num_super_stabilizers"] == 2
        assert summary["valid"] is True

    def test_disabled_fraction(self):
        patch = adapt_patch(RotatedSurfaceCodeLayout(5), DefectSet.of(qubits=[(5, 5)]))
        assert patch.disabled_data_fraction() == pytest.approx(1 / 25)

    def test_cluster_repetitions_scale_with_diameter(self):
        # A 2x2 block of faulty data qubits forms one cluster with diameter >= 1.
        defects = DefectSet.of(qubits=[(5, 5), (7, 5), (5, 7), (7, 7)])
        patch = adapt_patch(RotatedSurfaceCodeLayout(9), defects)
        if patch.super_stabilizers:
            reps = patch.cluster_repetitions[patch.super_stabilizers[0].cluster_id]
            assert reps >= 1

    def test_defect_set_helpers(self):
        defects = DefectSet.of(qubits=[(1, 1)], links=[((1, 1), (2, 2))])
        assert defects.num_faulty_qubits == 1
        assert defects.num_faulty_links == 1
        assert defects and not DefectSet.of().__bool__()
        merged = defects.union(DefectSet.of(qubits=[(3, 3)]))
        assert merged.num_faulty_qubits == 2
