"""Validated ``REPRO_*`` environment parsing.

Three helpers back every knob: :func:`repro.env.env_int` for the integer
variables (``REPRO_WORKERS``, ``REPRO_SHARD_SIZE``, ``REPRO_CHUNK_SHOTS``,
``REPRO_SYNDROME_CACHE``), :func:`repro.env.env_choice` for the enumerated
``REPRO_BACKEND`` and :func:`repro.env.env_hosts` for the ``REPRO_HOSTS``
worker list — so garbage and out-of-range values fail fast with the
variable's name in the message instead of a bare traceback (or, as
``REPRO_SYNDROME_CACHE`` once did, a silently accepted negative limit).
"""

import pytest

from repro.decoder.base import syndrome_cache_limit
from repro.engine.executor import EngineConfig
from repro.engine.pipeline import default_chunk_shots
from repro.env import env_choice, env_float, env_hosts, env_int, env_str
from repro.service.config import (
    service_aging_rate,
    service_db_path,
    service_host_port,
    service_lease_seconds,
    service_poll_seconds,
    service_url,
)


class TestEnvInt:
    def test_missing_and_empty_yield_default(self):
        assert env_int("REPRO_X", 7, env={}) == 7
        assert env_int("REPRO_X", 7, env={"REPRO_X": ""}) == 7
        assert env_int("REPRO_X", 7, env={"REPRO_X": "   "}) == 7

    def test_parses_with_whitespace(self):
        assert env_int("REPRO_X", 7, env={"REPRO_X": " 42 "}) == 42

    @pytest.mark.parametrize("raw", ["abc", "1.5", "0x10", "1e3", "--2"])
    def test_garbage_raises_with_variable_name(self, raw):
        with pytest.raises(ValueError, match="REPRO_X"):
            env_int("REPRO_X", 7, env={"REPRO_X": raw})

    def test_minimum_enforced(self):
        with pytest.raises(ValueError, match="REPRO_X must be >= 1"):
            env_int("REPRO_X", 7, minimum=1, env={"REPRO_X": "0"})
        with pytest.raises(ValueError, match="REPRO_X must be >= 0"):
            env_int("REPRO_X", 7, minimum=0, env={"REPRO_X": "-3"})
        assert env_int("REPRO_X", 7, minimum=0, env={"REPRO_X": "0"}) == 0

    def test_no_minimum_allows_negatives(self):
        assert env_int("REPRO_X", 7, env={"REPRO_X": "-3"}) == -3


class TestSyndromeCacheLimit:
    def test_default_and_zero(self):
        assert syndrome_cache_limit(env={}) == 1 << 16
        assert syndrome_cache_limit(env={"REPRO_SYNDROME_CACHE": "0"}) == 0
        assert syndrome_cache_limit(env={"REPRO_SYNDROME_CACHE": "128"}) == 128

    def test_negative_rejected(self):
        # Historically accepted silently and disabled admission forever.
        with pytest.raises(ValueError, match="REPRO_SYNDROME_CACHE"):
            syndrome_cache_limit(env={"REPRO_SYNDROME_CACHE": "-1"})

    def test_garbage_rejected_with_name(self):
        with pytest.raises(ValueError, match="REPRO_SYNDROME_CACHE"):
            syndrome_cache_limit(env={"REPRO_SYNDROME_CACHE": "lots"})


class TestChunkShots:
    def test_default_and_valid(self):
        assert default_chunk_shots(env={}) == 1024
        assert default_chunk_shots(env={"REPRO_CHUNK_SHOTS": "17"}) == 17

    @pytest.mark.parametrize("raw", ["0", "-5", "many"])
    def test_invalid_rejected_with_name(self, raw):
        with pytest.raises(ValueError, match="REPRO_CHUNK_SHOTS"):
            default_chunk_shots(env={"REPRO_CHUNK_SHOTS": raw})


class TestEnvChoice:
    CHOICES = ("serial", "process", "socket")

    def test_missing_and_empty_yield_default(self):
        assert env_choice("REPRO_B", "process", self.CHOICES, env={}) == "process"
        assert env_choice("REPRO_B", "process", self.CHOICES,
                          env={"REPRO_B": "  "}) == "process"

    def test_case_and_whitespace_normalised(self):
        assert env_choice("REPRO_B", "process", self.CHOICES,
                          env={"REPRO_B": " Socket "}) == "socket"

    def test_invalid_names_variable_and_choices(self):
        with pytest.raises(ValueError, match="REPRO_B.*serial, process, socket"):
            env_choice("REPRO_B", "process", self.CHOICES,
                       env={"REPRO_B": "mainframe"})


class TestEnvHosts:
    def test_missing_and_empty_yield_no_hosts(self):
        assert env_hosts("REPRO_H", env={}) == ()
        assert env_hosts("REPRO_H", env={"REPRO_H": "  "}) == ()

    def test_parses_list_with_whitespace_and_duplicates(self):
        got = env_hosts("REPRO_H",
                        env={"REPRO_H": "a:1, b:2 ,a:1"})
        assert got == (("a", 1), ("b", 2), ("a", 1))  # dup = extra slot

    @pytest.mark.parametrize("raw", ["justahost", "h:", ":7931", "h:abc",
                                     "h:0", "h:70000", "a:1,,b:2"])
    def test_malformed_entries_rejected_with_name(self, raw):
        with pytest.raises(ValueError, match="REPRO_H"):
            env_hosts("REPRO_H", env={"REPRO_H": raw})

    def test_errors_name_the_offending_value(self):
        # Audit parity with env_int: the message carries variable name AND
        # the rejected text, so a typo'd fleet entry is findable from the
        # traceback alone.
        with pytest.raises(ValueError, match=r"'abc'"):
            env_hosts("REPRO_H", env={"REPRO_H": "h:abc"})
        with pytest.raises(ValueError, match=r"70000"):
            env_hosts("REPRO_H", env={"REPRO_H": "h:70000"})


class TestEnvStr:
    def test_missing_and_empty_yield_default(self):
        assert env_str("REPRO_CACHE", env={}) is None
        assert env_str("REPRO_CACHE", ".cache", env={}) == ".cache"
        assert env_str("REPRO_CACHE", ".cache",
                       env={"REPRO_CACHE": "   "}) == ".cache"

    def test_value_is_stripped(self):
        # A trailing space must not silently name a different directory.
        assert env_str("REPRO_CACHE",
                       env={"REPRO_CACHE": " /tmp/c "}) == "/tmp/c"


class TestEngineConfigFromEnv:
    def test_defaults(self):
        assert EngineConfig.from_env({}) == EngineConfig()

    def test_valid_values(self):
        cfg = EngineConfig.from_env({"REPRO_WORKERS": "3",
                                     "REPRO_SHARD_SIZE": "99",
                                     "REPRO_CACHE": "/tmp/x"})
        assert cfg == EngineConfig(max_workers=3, shard_size=99,
                                   cache_dir="/tmp/x")

    @pytest.mark.parametrize("var", ["REPRO_WORKERS", "REPRO_SHARD_SIZE"])
    @pytest.mark.parametrize("raw", ["0", "-2", "four"])
    def test_invalid_rejected_with_name(self, var, raw):
        with pytest.raises(ValueError, match=var):
            EngineConfig.from_env({var: raw})


class TestEnvFloat:
    def test_missing_and_empty_yield_default(self):
        assert env_float("REPRO_X", 1.5, env={}) == 1.5
        assert env_float("REPRO_X", 1.5, env={"REPRO_X": " "}) == 1.5

    def test_parses_int_and_float_forms(self):
        assert env_float("REPRO_X", 1.5, env={"REPRO_X": "2"}) == 2.0
        assert env_float("REPRO_X", 1.5, env={"REPRO_X": " 0.25 "}) == 0.25
        assert env_float("REPRO_X", 1.5, env={"REPRO_X": "1e-3"}) == 1e-3

    @pytest.mark.parametrize("raw", ["abc", "nan", "inf", "-inf", "1..2"])
    def test_garbage_and_non_finite_rejected(self, raw):
        with pytest.raises(ValueError, match="REPRO_X"):
            env_float("REPRO_X", 1.5, env={"REPRO_X": raw})

    def test_minimum_enforced(self):
        with pytest.raises(ValueError, match="REPRO_X"):
            env_float("REPRO_X", 1.5, minimum=0.0, env={"REPRO_X": "-0.1"})
        assert env_float("REPRO_X", 1.5, minimum=0.0,
                         env={"REPRO_X": "0"}) == 0.0


class TestServiceKnobs:
    def test_defaults(self):
        assert service_db_path({}) == ".repro-service.db"
        assert service_lease_seconds({}) == 60.0
        assert service_host_port({}) == ("127.0.0.1", 7940)
        assert service_poll_seconds({}) == 0.5
        assert service_aging_rate({}) == 0.05
        assert service_url({}) == "http://127.0.0.1:7940"

    def test_overrides(self):
        env = {"REPRO_SERVICE_DB": "/tmp/jobs.db",
               "REPRO_SERVICE_LEASE": "5",
               "REPRO_SERVICE_HOST": "0.0.0.0",
               "REPRO_SERVICE_PORT": "0",
               "REPRO_SERVICE_POLL": "0.05",
               "REPRO_SERVICE_AGING": "0",
               "REPRO_SERVICE_URL": "http://svc:1234/"}
        assert service_db_path(env) == "/tmp/jobs.db"
        assert service_lease_seconds(env) == 5.0
        assert service_host_port(env) == ("0.0.0.0", 0)
        assert service_poll_seconds(env) == 0.05
        assert service_aging_rate(env) == 0.0
        assert service_url(env) == "http://svc:1234"

    @pytest.mark.parametrize("var, raw", [
        ("REPRO_SERVICE_LEASE", "0"),
        ("REPRO_SERVICE_LEASE", "-1"),
        ("REPRO_SERVICE_POLL", "0"),
        ("REPRO_SERVICE_PORT", "70000"),
        ("REPRO_SERVICE_PORT", "-1"),
        ("REPRO_SERVICE_AGING", "-0.5"),
    ])
    def test_out_of_range_rejected_with_name(self, var, raw):
        with pytest.raises(ValueError, match=var):
            {"REPRO_SERVICE_LEASE": service_lease_seconds,
             "REPRO_SERVICE_POLL": service_poll_seconds,
             "REPRO_SERVICE_PORT": service_host_port,
             "REPRO_SERVICE_AGING": service_aging_rate}[var]({var: raw})
