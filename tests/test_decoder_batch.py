"""Property tests: batched/deduplicated decoding is bit-identical to the
per-shot reference, for both decoders, with and without observables.

:func:`repro.decoder.reference.reference_mwpm_decode` is the frozen
pre-pipeline per-shot MWPM algorithm (fresh Dijkstra sweep over the fired
detectors, fresh networkx matching graph, dict-counted path parities).  The
batched decoder must reproduce it exactly on every shot of every random
batch.
"""

import numpy as np
import pytest

from repro.decoder import MatchingGraph, MwpmDecoder, UnionFindDecoder
from repro.decoder.reference import reference_mwpm_decode as _reference_mwpm_decode
from repro.stabilizer.dem import DemError, DetectorErrorModel


# ----------------------------------------------------------------------
# DEM fixtures
# ----------------------------------------------------------------------
def _line_dem(n=6, p=0.05, with_observables=True):
    obs = (0,) if with_observables else ()
    errors = [DemError(p, (0,), obs), DemError(p, (n - 1,), ())]
    for i in range(n - 1):
        errors.append(DemError(p, (i, i + 1), (1,) if with_observables and i == 2 else ()))
    num_obs = 2 if with_observables else 0
    return DetectorErrorModel(num_detectors=n, num_observables=num_obs, errors=errors)


def _grid_dem(rows=3, cols=4, p=0.03, with_observables=True, seed=5):
    """A 2-D grid of detectors; left/right columns connect to the boundary."""
    rng = np.random.default_rng(seed)
    errors = []
    def idx(r, c):
        return r * cols + c
    for r in range(rows):
        errors.append(DemError(p, (idx(r, 0),), (0,) if with_observables else ()))
        errors.append(DemError(p, (idx(r, cols - 1),), ()))
        for c in range(cols - 1):
            obs = (1,) if with_observables and rng.random() < 0.3 else ()
            errors.append(DemError(float(rng.uniform(0.01, 0.2)),
                                   (idx(r, c), idx(r, c + 1)), obs))
    for r in range(rows - 1):
        for c in range(cols):
            errors.append(DemError(float(rng.uniform(0.01, 0.2)),
                                   (idx(r, c), idx(r + 1, c)), ()))
    num_obs = 2 if with_observables else 0
    return DetectorErrorModel(rows * cols, num_obs, errors)


def _memory_dem(distance=3, p=0.004):
    from repro.core.adaptation import adapt_patch
    from repro.noise.circuit_noise import CircuitNoiseModel
    from repro.noise.fabrication import DefectSet
    from repro.stabilizer.dem import build_detector_error_model
    from repro.surface_code.circuits import build_memory_circuit
    from repro.surface_code.layout import RotatedSurfaceCodeLayout

    patch = adapt_patch(RotatedSurfaceCodeLayout(distance), DefectSet.of())
    circuit = build_memory_circuit(patch, CircuitNoiseModel.standard(p), distance)
    return build_detector_error_model(circuit)


def _random_batch(num_detectors, shots, rng, density=0.15):
    batch = rng.random((shots, num_detectors)) < density
    # Force duplicates and empties into the batch so dedup paths are hit.
    if shots >= 4:
        batch[shots // 2] = batch[0]
        batch[shots // 2 + 1] = False
    return batch


DEMS = [
    pytest.param(_line_dem(with_observables=True), id="line-obs"),
    pytest.param(_line_dem(with_observables=False), id="line-no-obs"),
    pytest.param(_grid_dem(with_observables=True), id="grid-obs"),
    pytest.param(_grid_dem(with_observables=False), id="grid-no-obs"),
]


# ----------------------------------------------------------------------
# Bit-identity properties
# ----------------------------------------------------------------------
class TestMwpmBatchBitIdentity:
    @pytest.mark.parametrize("dem", DEMS)
    def test_matches_reference_on_random_batches(self, dem):
        graph = MatchingGraph(dem)
        decoder = MwpmDecoder(graph)
        rng = np.random.default_rng(11)
        for _ in range(3):
            batch = _random_batch(dem.num_detectors, 24, rng)
            result = decoder.decode_batch(batch)
            for s in range(batch.shape[0]):
                expected = _reference_mwpm_decode(graph, batch[s])
                assert np.array_equal(result.predicted_observables[s], expected), s

    def test_matches_reference_on_circuit_dem(self):
        dem = _memory_dem()
        graph = MatchingGraph(dem)
        decoder = MwpmDecoder(graph)
        rng = np.random.default_rng(23)
        batch = _random_batch(dem.num_detectors, 32, rng, density=0.05)
        result = decoder.decode_batch(batch)
        for s in range(batch.shape[0]):
            expected = _reference_mwpm_decode(graph, batch[s])
            assert np.array_equal(result.predicted_observables[s], expected), s

    @pytest.mark.parametrize("dem", DEMS)
    def test_single_shot_decode_matches_reference(self, dem):
        graph = MatchingGraph(dem)
        decoder = MwpmDecoder(graph)
        rng = np.random.default_rng(3)
        for _ in range(20):
            syndrome = rng.random(dem.num_detectors) < 0.2
            assert np.array_equal(decoder.decode(syndrome),
                                  _reference_mwpm_decode(graph, syndrome))


class TestUnionFindBatchBitIdentity:
    @pytest.mark.parametrize("dem", DEMS)
    def test_batch_matches_fresh_per_shot_decode(self, dem):
        batch_decoder = UnionFindDecoder(MatchingGraph(dem))
        rng = np.random.default_rng(17)
        batch = _random_batch(dem.num_detectors, 24, rng)
        result = batch_decoder.decode_batch(batch)
        for s in range(batch.shape[0]):
            fresh = UnionFindDecoder(MatchingGraph(dem))
            assert np.array_equal(result.predicted_observables[s],
                                  fresh.decode(batch[s])), s


# ----------------------------------------------------------------------
# Dedup / caching behaviour
# ----------------------------------------------------------------------
class TestDedupMachinery:
    def test_empty_batch_never_touches_dijkstra(self):
        graph = MatchingGraph(_line_dem())
        decoder = MwpmDecoder(graph)
        decoder.decode_batch(np.zeros((50, 6), dtype=bool))
        assert graph.cache_stats()["geodesic_sources"] == 0
        assert decoder.decoded_syndromes == 0

    def test_one_decode_per_distinct_syndrome(self):
        decoder = MwpmDecoder(MatchingGraph(_line_dem()))
        batch = np.zeros((40, 6), dtype=bool)
        batch[::2, 1] = True
        batch[::2, 2] = True
        batch[1::4, 0] = True
        batch[0, 0] = True  # one shot upgraded to {0, 1, 2}
        result = decoder.decode_batch(batch)
        assert result.num_shots == 40
        # Three distinct non-empty syndromes: {1,2}, {0,1,2}, {0}.
        assert decoder.decoded_syndromes == 3

    def test_one_dijkstra_sweep_per_distinct_fired_detector(self):
        graph = MatchingGraph(_line_dem())
        decoder = MwpmDecoder(graph)
        rng = np.random.default_rng(2)
        batch = rng.random((64, 6)) < 0.3
        decoder.decode_batch(batch)
        fired_ever = {int(d) for row in batch for d in np.flatnonzero(row)}
        assert graph.cache_stats()["geodesic_sources"] == len(fired_ever)

    def test_cross_batch_memo_hits(self):
        decoder = MwpmDecoder(MatchingGraph(_line_dem()))
        batch = np.zeros((8, 6), dtype=bool)
        batch[:, 2] = True
        decoder.decode_batch(batch)
        first = decoder.decoded_syndromes
        decoder.decode_batch(batch)
        assert decoder.decoded_syndromes == first  # all memo hits
        assert decoder.memo_hits > 0

    def test_memo_limit_zero_disables_cross_batch_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "0")
        decoder = MwpmDecoder(MatchingGraph(_line_dem()))
        batch = np.zeros((4, 6), dtype=bool)
        batch[:, 2] = True
        decoder.decode_batch(batch)
        decoder.decode_batch(batch)
        # Decoded once per batch (within-batch dedup still applies).
        assert decoder.decoded_syndromes == 2

    def test_full_memo_evicts_fifo_and_keeps_admitting(self, monkeypatch):
        # Regression: the memo used to stop admitting entries once full,
        # degrading a long varied run to a permanently stale cache with
        # zero admission — recent syndromes could never hit again.
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "2")
        decoder = MwpmDecoder(MatchingGraph(_line_dem()))
        s1, s2, s3 = (0,), (1,), (2,)
        decoder.decode_fired(s1)
        decoder.decode_fired(s2)
        decoder.decode_fired(s3)            # cap hit: evicts s1 (oldest)
        assert decoder.decoded_syndromes == 3
        assert decoder.memo_evictions == 1
        hits_before = decoder.memo_hits
        decoder.decode_fired(s3)            # admitted past the cap -> hit
        decoder.decode_fired(s2)
        assert decoder.memo_hits == hits_before + 2
        decoder.decode_fired(s1)            # was evicted -> decoded again
        assert decoder.decoded_syndromes == 4
        assert decoder.memo_evictions == 2
        assert len(decoder._syndrome_memo) == 2

    def test_memo_hits_keep_rising_past_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "4")
        decoder = MwpmDecoder(MatchingGraph(_line_dem()))
        for wave in range(6):
            # A sliding window of distinct syndromes, each seen twice: the
            # second visit must always hit even though the workload has
            # cycled far past the cap.
            syndrome = (wave % 6,)
            decoder.decode_fired(syndrome)
            before = decoder.memo_hits
            decoder.decode_fired(syndrome)
            assert decoder.memo_hits == before + 1, wave

    def test_predictions_identical_across_evictions(self, monkeypatch):
        big = MwpmDecoder(MatchingGraph(_line_dem()))   # default-sized memo
        monkeypatch.setenv("REPRO_SYNDROME_CACHE", "1")
        tiny = MwpmDecoder(MatchingGraph(_line_dem()))
        rng = np.random.default_rng(77)
        dense = rng.random((32, 6)) < 0.25
        a = tiny.decode_batch(dense)
        b = big.decode_batch(dense)
        assert np.array_equal(a.predicted_observables, b.predicted_observables)
        assert tiny.memo_evictions > 0

    def test_sparse_fired_batch_equivalent_to_dense(self):
        decoder_a = MwpmDecoder(MatchingGraph(_line_dem()))
        decoder_b = MwpmDecoder(MatchingGraph(_line_dem()))
        rng = np.random.default_rng(9)
        dense = rng.random((16, 6)) < 0.25
        sparse = [tuple(int(i) for i in np.flatnonzero(row)) for row in dense]
        a = decoder_a.decode_batch(dense)
        parities = decoder_b.decode_fired_batch(sparse)
        for s, parity in enumerate(parities):
            assert parity == frozenset(np.flatnonzero(a.predicted_observables[s])), s

    def test_integer_ndarray_index_lists_via_decode_fired_batch(self):
        # np.flatnonzero output per shot routes through decode_fired_batch.
        decoder = MwpmDecoder(MatchingGraph(_line_dem()))
        dense = np.zeros((2, 6), dtype=bool)
        dense[0, 3] = True
        dense[1, 0] = True
        dense[1, 2] = True
        parities = decoder.decode_fired_batch([np.flatnonzero(r) for r in dense])
        b = MwpmDecoder(MatchingGraph(_line_dem())).decode_batch(dense)
        for s, parity in enumerate(parities):
            assert parity == frozenset(np.flatnonzero(b.predicted_observables[s])), s

    def test_decode_batch_keeps_historical_dense_coercion(self):
        # Nested Python bool lists AND 0/1 integer rows both meant dense
        # data under the old np.asarray(..., dtype=bool) API; they must
        # keep decoding identically (no dense/sparse guessing).
        expected = MwpmDecoder(MatchingGraph(_line_dem())).decode_batch(
            np.array([[1, 0, 0, 0, 0, 0], [0, 0, 1, 1, 0, 0]], dtype=bool))
        for rows in (
            [[True, False, False, False, False, False],
             [False, False, True, True, False, False]],
            [[1, 0, 0, 0, 0, 0], [0, 0, 1, 1, 0, 0]],
        ):
            got = MwpmDecoder(MatchingGraph(_line_dem())).decode_batch(rows)
            assert np.array_equal(got.predicted_observables,
                                  expected.predicted_observables)
        assert expected.predicted_observables[0, 0]  # boundary error flips obs 0

    def test_decode_batch_rejects_non_2d_input(self):
        decoder = MwpmDecoder(MatchingGraph(_line_dem()))
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros(6, dtype=bool))


# ----------------------------------------------------------------------
# Boundary-surrogate fallback handling (the fixed silent-continue bug)
# ----------------------------------------------------------------------
class TestBoundaryFallback:
    def _orphan_dem(self):
        """Detectors 0,1 reach the boundary; 2,3 form an isolated component
        whose connecting edge flips observable 0."""
        return DetectorErrorModel(4, 1, [
            DemError(0.1, (0,), ()),
            DemError(0.1, (0, 1), ()),
            DemError(0.1, (1,), ()),
            DemError(0.1, (2, 3), (0,)),
        ])

    def test_orphan_component_gets_one_fallback_anchor(self):
        graph = MatchingGraph(self._orphan_dem())
        assert graph._fallback_edges == frozenset({2})
        assert np.isfinite(graph.pair_distance(2, graph.boundary))
        assert np.isfinite(graph.pair_distance(3, graph.boundary))

    def test_isolated_detector_correction_not_dropped(self):
        # Detector 3 fires alone: its only route to the boundary runs over
        # the real (2,3) edge to the component anchor, so the observable it
        # carries must be applied.  The historical decoder silently skipped
        # the walk and predicted no flip.
        decoder = MwpmDecoder(MatchingGraph(self._orphan_dem()))
        prediction = decoder.decode(np.array([False, False, False, True]))
        assert prediction[0]

    def test_anchor_detector_matches_boundary_directly(self):
        decoder = MwpmDecoder(MatchingGraph(self._orphan_dem()))
        prediction = decoder.decode(np.array([False, False, True, False]))
        assert not prediction.any()

    def test_orphan_pair_still_matches_internally(self):
        decoder = MwpmDecoder(MatchingGraph(self._orphan_dem()))
        prediction = decoder.decode(np.array([False, False, True, True]))
        assert prediction[0]

    def test_boundary_connected_dems_gain_no_fallback_edges(self):
        assert MatchingGraph(_line_dem())._fallback_edges == frozenset()
        assert MatchingGraph(_memory_dem())._fallback_edges == frozenset()


# ----------------------------------------------------------------------
# Path-parity cache semantics (set-XOR / frozenset satellite)
# ----------------------------------------------------------------------
class TestPathParityCache:
    def test_parity_is_hashable_frozenset(self):
        graph = MatchingGraph(_line_dem())
        parity = graph.path_parity(0, graph.boundary)
        assert isinstance(parity, frozenset)
        assert parity == frozenset({0})
        # Cached object is reused allocation-free.
        assert graph.path_parity(graph.boundary, 0) is parity

    def test_parity_xor_cancels_even_traversals(self):
        # Edge (2,3) carries observable 1 in the line DEM; a path crossing
        # it twice would cancel.  Here we check odd counting end to end:
        graph = MatchingGraph(_line_dem())
        assert graph.path_parity(2, 3) == frozenset({1})
        assert graph.path_parity(1, 4) == frozenset({1})
        assert graph.path_parity(1, 2) == frozenset()
