"""Tests for the estimation service (repro.service).

Covers the subsystem's load-bearing guarantees:

* specs — the JSON contract round-trips losslessly and rejects malformed
  submissions at the boundary;
* store — crash-safe state transitions: claim is a CAS, expired leases
  re-dispatch, completion is ownership-guarded;
* coalescing — identical in-flight submissions share exactly one execution
  and all receive the result;
* scheduling — cheap/cache-warm jobs first, aging prevents starvation,
  malformed rows sink instead of wedging the queue;
* end-to-end determinism — a job submitted over HTTP and drained by a
  service worker produces bit-identical results (and byte-identical cache
  records) to calling the engine directly.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import adapt_patch
from repro.engine import (
    Engine,
    EngineConfig,
    LerPointTask,
    ResultCache,
    ShotPolicy,
    YieldTask,
    child_stream,
)
from repro.noise import DefectSet, LINK_AND_QUBIT
from repro.service import (
    JobScheduler,
    JobStore,
    SchedulerConfig,
    ServiceWorker,
    content_key,
    normalize_spec,
    spec_cache_keys,
    spec_estimated_cost,
)
from repro.service.api import serve
from repro.service.cli import ServiceClient
from repro.service.specs import YIELD_SAMPLE_COST, sweep_items
from repro.surface_code import RotatedSurfaceCodeLayout


def d3_task(p: float = 0.01) -> LerPointTask:
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    return LerPointTask.from_patch("memory", patch, p)


def yield_task(samples: int = 40) -> YieldTask:
    return YieldTask(chiplet_size=7, defect_model_kind=LINK_AND_QUBIT,
                     defect_rate=0.01, samples=samples, target_distance=5)


def ler_body(p: float = 0.01, shots: int = 400, seed: int = 11,
             shard_size: int = 128) -> dict:
    return {"kind": "ler", "task": d3_task(p).payload(),
            "shots": shots, "seed": seed, "shard_size": shard_size}


def sweep_body(ps=(0.005, 0.01), shots: int = 400, seed: int = 11,
               shard_size: int = 128) -> dict:
    return {"kind": "sweep", "tasks": [d3_task(p).payload() for p in ps],
            "shots": shots, "seed": seed, "shard_size": shard_size}


class Clock:
    """An injectable clock so lease tests never sleep."""

    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


# ----------------------------------------------------------------------
# Specs: the JSON contract
# ----------------------------------------------------------------------
class TestSpecs:
    def test_normalize_canonicalizes_seed_and_policy(self):
        spec = normalize_spec(ler_body(seed=42))
        entropy, spawn = spec["seed"]
        assert entropy and spawn == []
        assert spec["policy"]["max_shots"] == 400
        # Normalization is idempotent: a stored spec re-normalizes to itself.
        assert normalize_spec(spec) == spec

    def test_round_trip_preserves_task_hash(self):
        spec = normalize_spec(sweep_body())
        items = sweep_items(spec)
        assert [i.task.content_hash() for i in items] == \
            [d3_task(p).content_hash() for p in (0.005, 0.01)]

    def test_sweep_seeds_follow_run_ler_many_derivation(self):
        spec = normalize_spec(sweep_body(seed=77))
        items = sweep_items(spec)
        for i, item in enumerate(items):
            expect = child_stream(np.random.SeedSequence(77), i)
            assert np.array_equal(item.seed.generate_state(4),
                                  expect.generate_state(4))

    @pytest.mark.parametrize("body, match", [
        ({"kind": "bogus"}, "unknown job kind"),
        ({"kind": "ler", "task": None, "shots": 10}, "payload"),
        ({"kind": "ler", "task": {"nope": 1}, "shots": 10}, "malformed"),
        ({"kind": "ler", "task": {}, "shots": 10, "policy": {"shots": 10}},
         "not both"),
        ({"kind": "ler", "task": {}}, "policy"),
        ({"kind": "sweep", "tasks": [], "shots": 10}, "non-empty"),
        ({"kind": "ler", "task": {}, "shots": 10, "seed": True}, "seed"),
        ({"kind": "ler", "task": {}, "shots": 10, "seed": [[], []]},
         "entropy"),
        ({"kind": "ler", "task": {}, "shots": 10, "shard_size": 0},
         "shard_size"),
        ("not an object", "JSON object"),
    ])
    def test_malformed_submissions_fail_at_the_boundary(self, body, match):
        with pytest.raises(ValueError, match=match):
            normalize_spec(body)

    def test_unknown_policy_fields_rejected(self):
        body = ler_body()
        del body["shots"]
        body["policy"] = {"max_shots": 100, "turbo": True}
        with pytest.raises(ValueError, match="turbo"):
            normalize_spec(body)

    def test_cache_keys_predict_engine_writes_exactly(self, tmp_path):
        spec = normalize_spec(sweep_body(seed=5))
        keys = spec_cache_keys(spec)
        engine = Engine(EngineConfig(shard_size=128,
                                     cache_dir=str(tmp_path)))
        engine.run_ler_many([d3_task(p) for p in (0.005, 0.01)],
                            shots=400, seed=5)
        cache = ResultCache(tmp_path)
        assert sorted(keys) == sorted(cache.keys())

    def test_yield_cache_key_predicts_engine_write(self, tmp_path):
        spec = normalize_spec({"kind": "yield", "task": yield_task().payload(),
                               "seed": 9})
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        engine.run_yield(yield_task(), seed=9)
        assert spec_cache_keys(spec) == list(ResultCache(tmp_path).keys())

    def test_unseeded_jobs_have_no_identity(self):
        spec = normalize_spec(ler_body())
        spec_unseeded = normalize_spec({**ler_body(), "seed": None})
        assert spec_cache_keys(spec_unseeded) == [None]
        assert content_key(spec_unseeded) is None
        assert content_key(spec) is not None

    def test_estimated_cost_counts_shots_and_samples(self):
        spec = normalize_spec(sweep_body(ps=(0.005, 0.01, 0.02),
                                         shots=400, shard_size=128))
        per_item = ShotPolicy.fixed(400).estimated_cost(128)
        assert spec_estimated_cost(spec) == 3 * per_item
        yspec = normalize_spec({"kind": "yield",
                                "task": yield_task(50).payload()})
        assert spec_estimated_cost(yspec) == 50 * YIELD_SAMPLE_COST


# ----------------------------------------------------------------------
# Store: crash-safe transitions
# ----------------------------------------------------------------------
class TestJobStore:
    def submit(self, store, body=None) -> str:
        spec = normalize_spec(body or ler_body())
        return store.submit(spec["kind"], spec, content_key(spec)).id

    def test_submit_round_trips_spec(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        spec = normalize_spec(ler_body())
        job = store.submit(spec["kind"], spec, content_key(spec))
        got = store.get(job.id)
        assert got.spec == spec
        assert got.state == "queued"
        assert got.content_key == content_key(spec)

    def test_claim_is_a_compare_and_swap(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        job_id = self.submit(store)
        assert store.try_claim(job_id, "w1", 60) is not None
        assert store.try_claim(job_id, "w2", 60) is None
        job = store.get(job_id)
        assert (job.state, job.worker_id, job.attempts) == ("running", "w1", 1)

    def test_expired_lease_redispatches(self, tmp_path):
        clock = Clock()
        store = JobStore(tmp_path / "jobs.db", now=clock)
        job_id = self.submit(store)
        store.try_claim(job_id, "w1", 60)
        assert store.runnable_jobs() == []
        clock.t += 61  # w1 is presumed dead
        assert [j.id for j in store.runnable_jobs()] == [job_id]
        job = store.try_claim(job_id, "w2", 60)
        assert (job.worker_id, job.attempts) == ("w2", 2)
        # ...and the late writes of the presumed-dead worker bounce off.
        assert store.record_progress(job_id, "w1", 60) == "lost"
        assert not store.finish(job_id, "w1", {"stale": True})
        assert store.get(job_id).state == "running"

    def test_progress_heartbeat_extends_lease(self, tmp_path):
        clock = Clock()
        store = JobStore(tmp_path / "jobs.db", now=clock)
        job_id = self.submit(store)
        store.try_claim(job_id, "w1", 60)
        clock.t += 50
        assert store.record_progress(
            job_id, "w1", 60, partial={"failures": 3, "shots": 100},
            event={"type": "wave", "wave": 0}) == "ok"
        job = store.get(job_id)
        assert job.lease_until == clock.t + 60
        assert job.partial == {"failures": 3, "shots": 100}
        clock.t += 50  # original lease would have expired; heartbeat saved it
        assert store.runnable_jobs() == []

    def test_finish_is_ownership_guarded(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        job_id = self.submit(store)
        store.try_claim(job_id, "w1", 60)
        assert not store.finish(job_id, "w2", {"bogus": 1})
        assert store.finish(job_id, "w1", {"ok": 1})
        job = store.get(job_id)
        assert (job.state, job.result) == ("done", {"ok": 1})
        # Terminal states are final: nothing overwrites a done job.
        assert not store.fail(job_id, "w1", "late failure")
        assert store.get(job_id).state == "done"

    def test_cancel_running_job_tells_the_worker(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        job_id = self.submit(store)
        store.try_claim(job_id, "w1", 60)
        assert store.cancel(job_id) == "cancelled"
        assert store.record_progress(job_id, "w1", 60) == "cancelled"
        assert store.cancel(job_id) == "cancelled"  # idempotent
        assert store.cancel("nope") is None

    def test_events_are_ordered_and_resumable(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        job_id = self.submit(store)
        store.try_claim(job_id, "w1", 60)
        for wave in range(3):
            store.record_progress(job_id, "w1", 60,
                                  event={"type": "wave", "wave": wave})
        events = store.events(job_id)
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert [e["wave"] for e in events] == [0, 1, 2]
        assert [e["seq"] for e in store.events(job_id, since=1)] == [2]

    def test_counts_by_state(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        self.submit(store, ler_body(seed=1))
        job_id = self.submit(store, ler_body(seed=2))
        store.try_claim(job_id, "w1", 60)
        counts = store.counts()
        assert counts["queued"] == 1 and counts["running"] == 1


# ----------------------------------------------------------------------
# Coalescing: one execution, every submitter served
# ----------------------------------------------------------------------
class TestCoalescing:
    def submit(self, store, body):
        spec = normalize_spec(body)
        return store.submit(spec["kind"], spec, content_key(spec))

    def test_identical_submission_becomes_follower(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        a = self.submit(store, ler_body(seed=3))
        b = self.submit(store, ler_body(seed=3))
        c = self.submit(store, ler_body(seed=4))  # different seed: no share
        assert a.coalesced_into is None
        assert b.coalesced_into == a.id
        assert c.coalesced_into is None
        # Followers are never claimed.
        assert sorted(j.id for j in store.runnable_jobs()) == \
            sorted([a.id, c.id])

    def test_unseeded_submissions_never_coalesce(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        a = self.submit(store, {**ler_body(), "seed": None})
        b = self.submit(store, {**ler_body(), "seed": None})
        assert a.content_key is None
        assert b.coalesced_into is None

    def test_primary_finish_completes_followers(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        a = self.submit(store, ler_body(seed=3))
        b = self.submit(store, ler_body(seed=3))
        store.try_claim(a.id, "w1", 60)
        store.record_progress(a.id, "w1", 60, event={"type": "wave"})
        store.finish(a.id, "w1", {"answer": 42})
        for job_id in (a.id, b.id):
            job = store.get(job_id)
            assert (job.state, job.result) == ("done", {"answer": 42})
        # The follower streams its primary's events.
        assert [e["type"] for e in store.events(b.id)] == ["wave", "done"]

    def test_terminal_primary_is_not_coalesced_onto(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        a = self.submit(store, ler_body(seed=3))
        store.try_claim(a.id, "w1", 60)
        store.finish(a.id, "w1", {"answer": 42})
        b = self.submit(store, ler_body(seed=3))
        assert b.coalesced_into is None  # fresh execution (or a cache hit)

    def test_cancelled_follower_keeps_its_cancellation(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        a = self.submit(store, ler_body(seed=3))
        b = self.submit(store, ler_body(seed=3))
        store.cancel(b.id)
        store.try_claim(a.id, "w1", 60)
        store.finish(a.id, "w1", {"answer": 42})
        assert store.get(a.id).state == "done"
        assert store.get(b.id).state == "cancelled"
        assert store.get(b.id).result is None

    def test_cancelling_primary_promotes_oldest_follower(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        a = self.submit(store, ler_body(seed=3))
        b = self.submit(store, ler_body(seed=3))
        c = self.submit(store, ler_body(seed=3))
        store.cancel(a.id)
        b, c = store.get(b.id), store.get(c.id)
        assert b.coalesced_into is None  # promoted
        assert c.coalesced_into == b.id  # re-pointed at the new primary
        assert [j.id for j in store.runnable_jobs()] == [b.id]


# ----------------------------------------------------------------------
# Scheduling: order only, never numbers
# ----------------------------------------------------------------------
class TestJobScheduler:
    def submit(self, store, body):
        spec = normalize_spec(body)
        return store.submit(spec["kind"], spec, content_key(spec))

    def test_cheap_jobs_first(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        big = self.submit(store, ler_body(shots=100000, seed=1))
        small = self.submit(store, ler_body(shots=200, seed=2))
        sched = JobScheduler(config=SchedulerConfig(aging_rate=0.0))
        ranked = sched.rank(store.runnable_jobs(), now=time.time())
        assert [j.id for j in ranked] == [small.id, big.id]

    def test_cache_warm_jobs_first(self, tmp_path):
        cache_dir = tmp_path / "cache"
        engine = Engine(EngineConfig(shard_size=128,
                                     cache_dir=str(cache_dir)))
        engine.run_ler(d3_task(), shots=400, seed=7)  # warm exactly seed 7
        store = JobStore(tmp_path / "jobs.db")
        cold = self.submit(store, ler_body(shots=400, seed=8))
        warm = self.submit(store, ler_body(shots=400, seed=7))
        sched = JobScheduler(ResultCache(cache_dir),
                             SchedulerConfig(aging_rate=0.0))
        assert sched.cache_hit_fraction(store.get(warm.id)) == 1.0
        assert sched.cache_hit_fraction(store.get(cold.id)) == 0.0
        ranked = sched.rank(store.runnable_jobs(), now=time.time())
        assert [j.id for j in ranked] == [warm.id, cold.id]

    def test_aging_prevents_starvation(self, tmp_path):
        clock = Clock()
        store = JobStore(tmp_path / "jobs.db", now=clock)
        old_big = self.submit(store, ler_body(shots=100000, seed=1))
        clock.t += 4 * 3600  # hours of fresh small jobs later...
        fresh_small = self.submit(store, ler_body(shots=200, seed=2))
        sched = JobScheduler(config=SchedulerConfig(aging_rate=0.05))
        ranked = sched.rank(store.runnable_jobs(), now=clock.t)
        assert ranked[0].id == old_big.id
        # Without aging the big job would still be starved.
        no_aging = JobScheduler(config=SchedulerConfig(aging_rate=0.0))
        assert no_aging.rank(store.runnable_jobs(), now=clock.t)[0].id \
            == fresh_small.id

    def test_malformed_spec_sinks_instead_of_wedging(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        # A row written by a newer schema the scheduler can't price.
        broken = store.submit("ler", {"kind": "ler", "v2_field": True}, None)
        ok = self.submit(store, ler_body(seed=2))
        sched = JobScheduler()
        ranked = sched.rank(store.runnable_jobs(), now=time.time())
        assert [j.id for j in ranked] == [ok.id, broken.id]
        assert sched.select(store.runnable_jobs(), time.time()).id == ok.id

    def test_select_on_empty(self):
        assert JobScheduler().select([], now=0.0) is None


# ----------------------------------------------------------------------
# Worker: claim → execute → finish
# ----------------------------------------------------------------------
class TestServiceWorker:
    def submit(self, store, body):
        spec = normalize_spec(body)
        return store.submit(spec["kind"], spec, content_key(spec))

    def test_drain_executes_bit_identically(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        job = self.submit(store, ler_body(shots=400, seed=11))
        yjob = self.submit(store, {"kind": "yield",
                                   "task": yield_task().payload(), "seed": 7})
        worker = ServiceWorker(store, lease_seconds=60,
                               cache_dir=str(tmp_path / "cache"))
        assert worker.drain() == 2

        direct = Engine(EngineConfig(shard_size=128)).run_ler(
            d3_task(), shots=400, seed=11)
        got = store.get(job.id)
        assert got.state == "done"
        [r] = got.result["results"]
        assert (r["failures"], r["shots"]) == (direct.failures, direct.shots)
        # The final partial equals the final totals (last wave seen).
        assert got.partial["failures"] == direct.failures
        event_types = [e["type"] for e in store.events(job.id)]
        assert event_types[0] == "claimed"
        assert "wave" in event_types and event_types[-1] == "done"

        ydirect = Engine(EngineConfig()).run_yield(yield_task(), seed=7)
        ygot = store.get(yjob.id)
        assert ygot.result["accepted"] == ydirect.accepted
        assert ygot.result["samples"] == ydirect.samples

    def test_execution_error_fails_the_job(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        # A spec that passes no validation because it never saw the API
        # boundary — the worker must fail it, not crash or loop.
        bad = store.submit("ler", {"kind": "ler", "task_kind": "ler_point",
                                   "task": {"nope": 1}, "policy": {"shots": 4},
                                   "seed": None, "shard_size": 64}, None)
        worker = ServiceWorker(store, lease_seconds=60)
        assert worker.drain() == 1
        job = store.get(bad.id)
        assert job.state == "failed"
        assert job.error  # carries the exception text

    def test_cancellation_before_start_discards_quietly(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        job = self.submit(store, ler_body(seed=11))
        worker = ServiceWorker(store, lease_seconds=60)
        claimed = worker.claim_next()
        store.cancel(job.id)
        worker._execute(claimed)  # first heartbeat sees the cancellation
        got = store.get(job.id)
        assert (got.state, got.result) == ("cancelled", None)

    def test_lease_expiry_redispatches_to_surviving_worker(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        job = self.submit(store, ler_body(shots=400, seed=11))
        # A worker claims with a tiny lease and dies without progressing.
        assert store.try_claim(job.id, "dead-worker", 0.05) is not None
        time.sleep(0.1)
        survivor = ServiceWorker(store, lease_seconds=60)
        assert survivor.drain() == 1
        got = store.get(job.id)
        assert (got.state, got.attempts) == ("done", 2)
        assert got.worker_id == survivor.worker_id
        direct = Engine(EngineConfig(shard_size=128)).run_ler(
            d3_task(), shots=400, seed=11)
        assert got.result["results"][0]["failures"] == direct.failures


# ----------------------------------------------------------------------
# End to end over HTTP: the service is a transparent front for the engine
# ----------------------------------------------------------------------
@pytest.fixture()
def http_service(tmp_path):
    """An in-thread API server + its store; yields (client, store, paths)."""
    store = JobStore(tmp_path / "jobs.db")
    server = serve(store, "127.0.0.1", 0, poll_seconds=0.02)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    try:
        yield client, store, tmp_path
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestHttpService:
    def test_submitted_sweep_is_bit_identical_to_direct(self, http_service):
        client, store, tmp_path = http_service
        ps = (0.005, 0.01, 0.02)
        response = client.submit(sweep_body(ps=ps, shots=400, seed=21))
        assert response["state"] == "queued"

        worker = ServiceWorker(store, lease_seconds=60,
                               cache_dir=str(tmp_path / "svc-cache"))
        events = []
        final = None

        def drain():
            worker.drain()

        t = threading.Thread(target=drain)
        t.start()
        final = client.watch(response["id"], wait=5.0, emit=events.append)
        t.join(timeout=60)

        assert final["state"] == "done"
        tasks = [d3_task(p) for p in ps]
        direct_cache = tmp_path / "direct-cache"
        direct = Engine(EngineConfig(shard_size=128,
                                     cache_dir=str(direct_cache)))
        expect = direct.run_ler_many(tasks, shots=400, seed=21)
        got = final["result"]["results"]
        assert [(r["failures"], r["shots"], r["num_shards"]) for r in got] \
            == [(e.failures, e.shots, e.num_shards) for e in expect]

        # Streamed waves reported true totals for each item as it merged.
        waves = [e for e in events if e["type"] == "wave"]
        assert {w["item"] for w in waves} == {0, 1, 2}
        by_item = {w["item"]: w for w in waves}
        for i, e in enumerate(expect):
            assert by_item[i]["failures"] == e.failures
            assert by_item[i]["ci_low"] <= e.failures / e.shots \
                <= by_item[i]["ci_high"]

        # Byte-identical cache records: same keys, same bytes.
        svc_cache = ResultCache(tmp_path / "svc-cache")
        ref_cache = ResultCache(direct_cache)
        keys = sorted(ref_cache.keys())
        assert sorted(svc_cache.keys()) == keys
        for key in keys:
            assert svc_cache.path_for(key).read_bytes() \
                == ref_cache.path_for(key).read_bytes()

    def test_two_identical_submissions_one_execution(self, http_service):
        client, store, tmp_path = http_service
        body = ler_body(shots=400, seed=31)
        first = client.submit(body)
        second = client.submit(body)
        assert second["coalesced_into"] == first["id"]

        ServiceWorker(store, lease_seconds=60).drain()
        a = client.status(first["id"])
        b = client.status(second["id"])
        assert a["state"] == b["state"] == "done"
        assert a["result"] == b["result"]
        # Exactly one execution: the follower was never attempted, and both
        # ids stream the same single claimed event.
        assert (a["attempts"], b["attempts"]) == (1, 0)
        ev_a = client.events(first["id"])["events"]
        ev_b = client.events(second["id"])["events"]
        assert ev_a == ev_b
        assert sum(1 for e in ev_a if e["type"] == "claimed") == 1

    def test_cancel_and_error_paths(self, http_service):
        client, store, tmp_path = http_service
        job = client.submit(ler_body(seed=41))
        assert client.cancel(job["id"])["state"] == "cancelled"
        assert client.status(job["id"])["state"] == "cancelled"
        with pytest.raises(SystemExit, match="404"):
            client.status("doesnotexist")
        with pytest.raises(SystemExit, match="400"):
            client.request("POST", "/jobs", {"kind": "bogus"})
        with pytest.raises(SystemExit, match="404"):
            client.request("GET", "/nope")
        stats = client.request("GET", "/stats")
        assert stats["states"]["cancelled"] == 1

    def test_long_poll_waits_for_events(self, http_service):
        client, store, tmp_path = http_service
        job = client.submit(ler_body(shots=400, seed=51))
        worker = ServiceWorker(store, lease_seconds=60)

        def delayed_drain():
            time.sleep(0.15)
            worker.drain()

        t = threading.Thread(target=delayed_drain)
        start = time.monotonic()
        t.start()
        page = client.events(job["id"], since=-1, wait=10.0)
        elapsed = time.monotonic() - start
        t.join(timeout=30)
        # The poll parked until the worker produced events — it neither
        # returned empty immediately nor burned the whole wait budget.
        assert page["events"]
        assert 0.1 <= elapsed < 8.0
        final = client.watch(job["id"])
        assert final["state"] == "done"
