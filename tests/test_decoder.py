"""Tests for the MWPM and union-find decoders."""

import numpy as np
import pytest

from repro.decoder import MatchingGraph, MwpmDecoder, UnionFindDecoder
from repro.stabilizer.dem import DemError, DetectorErrorModel


def _line_dem(n: int = 4, p: float = 0.05) -> DetectorErrorModel:
    """A 1-D chain of detectors (repetition-code style) with boundary edges.

    Detector i and i+1 are linked by an error; the two chain ends connect to
    the boundary; the left boundary edge flips the logical observable.
    """
    errors = [DemError(p, (0,), (0,)), DemError(p, (n - 1,), ())]
    for i in range(n - 1):
        errors.append(DemError(p, (i, i + 1), ()))
    return DetectorErrorModel(num_detectors=n, num_observables=1, errors=errors)


class TestMatchingGraph:
    def test_edges_and_boundary(self):
        graph = MatchingGraph(_line_dem())
        assert graph.num_detectors == 4
        assert graph.num_edges() == 5
        assert graph.edge_between(0, graph.boundary) is not None
        assert graph.observables_on_edge(0, graph.boundary) == (0,)
        assert graph.observables_on_edge(1, 2) == ()

    def test_rejects_hyperedges(self):
        dem = DetectorErrorModel(3, 0, [DemError(0.1, (0, 1, 2), ())])
        with pytest.raises(ValueError):
            MatchingGraph(dem)

    def test_parallel_edges_keep_most_likely(self):
        dem = DetectorErrorModel(2, 1, [
            DemError(0.01, (0, 1), (0,)),
            DemError(0.2, (0, 1), ()),
        ])
        graph = MatchingGraph(dem)
        assert graph.observables_on_edge(0, 1) == ()

    def test_to_networkx(self):
        g = MatchingGraph(_line_dem()).to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 5


class TestMwpmDecoder:
    def test_empty_syndrome_predicts_nothing(self):
        dec = MwpmDecoder(_line_dem())
        assert not dec.decode(np.zeros(4, dtype=bool)).any()

    def test_single_interior_error_corrected(self):
        dec = MwpmDecoder(_line_dem())
        # An error on edge (1,2) fires detectors 1 and 2 and flips no observable.
        prediction = dec.decode(np.array([False, True, True, False]))
        assert not prediction.any()

    def test_boundary_error_flips_observable(self):
        dec = MwpmDecoder(_line_dem())
        # The left boundary error fires only detector 0 and flips the observable.
        prediction = dec.decode(np.array([True, False, False, False]))
        assert prediction[0]

    def test_right_boundary_error_no_observable(self):
        dec = MwpmDecoder(_line_dem())
        prediction = dec.decode(np.array([False, False, False, True]))
        assert not prediction.any()

    def test_two_errors_matched_pairwise(self):
        dec = MwpmDecoder(_line_dem(n=6))
        # Errors on edges (0,1) and (3,4): four detectors fire; the decoder
        # should pair them up locally and predict no logical flip.
        syndrome = np.array([True, True, False, True, True, False])
        assert not dec.decode(syndrome).any()

    def test_batch_decoding_and_error_count(self):
        dec = MwpmDecoder(_line_dem())
        syndromes = np.array([
            [True, False, False, False],
            [False, True, True, False],
        ])
        result = dec.decode_batch(syndromes)
        assert result.predicted_observables.shape == (2, 1)
        actual = np.array([[True], [False]])
        assert result.logical_error_count(actual) == 0
        actual_wrong = np.array([[False], [True]])
        assert result.logical_error_count(actual_wrong) == 2

    def test_shape_mismatch_rejected(self):
        dec = MwpmDecoder(_line_dem())
        result = dec.decode_batch(np.zeros((2, 4), dtype=bool))
        with pytest.raises(ValueError):
            result.logical_error_count(np.zeros((3, 1), dtype=bool))

    def test_odd_number_of_fired_detectors_uses_boundary(self):
        dec = MwpmDecoder(_line_dem())
        # Three detectors fired: one must match the boundary.
        prediction = dec.decode(np.array([True, True, True, False]))
        assert prediction.shape == (1,)


class TestUnionFindDecoder:
    def test_empty_syndrome(self):
        dec = UnionFindDecoder(_line_dem())
        assert not dec.decode(np.zeros(4, dtype=bool)).any()

    def test_interior_pair(self):
        dec = UnionFindDecoder(_line_dem())
        assert not dec.decode(np.array([False, True, True, False])).any()

    def test_boundary_error(self):
        dec = UnionFindDecoder(_line_dem())
        prediction = dec.decode(np.array([True, False, False, False]))
        assert prediction[0]

    def test_batch(self):
        dec = UnionFindDecoder(_line_dem())
        result = dec.decode_batch(np.zeros((3, 4), dtype=bool))
        assert result.num_shots == 3

    def test_agreement_with_mwpm_on_simple_syndromes(self):
        mwpm = MwpmDecoder(_line_dem(n=5))
        uf = UnionFindDecoder(_line_dem(n=5))
        rng = np.random.default_rng(0)
        agree = 0
        total = 30
        for _ in range(total):
            syndrome = rng.random(5) < 0.25
            if syndrome.sum() % 2 == 1:
                syndrome[0] = not syndrome[0]
            if np.array_equal(mwpm.decode(syndrome), uf.decode(syndrome)):
                agree += 1
        # The decoders need not agree on every degenerate case, but they must
        # agree on the large majority of simple syndromes.
        assert agree >= total * 0.7
