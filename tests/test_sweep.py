"""Tests for cross-task shard interleaving and engine-routed yield estimation.

The sweep scheduler's contract is that interleaving is *invisible* in the
numbers: ``run_ler_many`` / ``run_sweep`` must be bit-identical to running
every item alone, for any worker count, any policy mix, and any cache
warm/cold permutation.  Same for ``YieldEstimator`` runs routed through the
frozen ``YieldTask`` spec.
"""

import pytest

from repro.chiplet import YieldEstimator
from repro.chiplet.boundary import STANDARD_3
from repro.core import adapt_patch
from repro.core.postselection import (
    DefectFreeCriterion,
    DistanceCriterion,
    PostSelectionCriterion,
)
from repro.engine import (
    Engine,
    EngineConfig,
    LerPointTask,
    ResultCache,
    ShotPolicy,
    SweepItem,
    YieldTask,
)
from repro.engine.executor import _run_ler_shard
from repro.noise import DefectModel, DefectSet, LINK_AND_QUBIT, LINK_ONLY
from repro.surface_code import RotatedSurfaceCodeLayout

WORKER_COUNTS = (1, 2, 4)


def d3_task(p: float = 0.01) -> LerPointTask:
    patch = adapt_patch(RotatedSurfaceCodeLayout(3), DefectSet.of())
    return LerPointTask.from_patch("memory", patch, p)


def result_tuple(r):
    return (r.failures, r.shots, r.num_shards, r.num_detectors, r.num_dem_errors)


def serial_reference(items):
    """The task-by-task path: one item at a time on a serial engine."""
    engine = Engine(EngineConfig(max_workers=1, shard_size=128))
    return [engine.run_ler(it.task, policy=it.policy, seed=it.seed)
            for it in items]


# ----------------------------------------------------------------------
# Cross-task interleaving: bit-identity with the task-by-task path
# ----------------------------------------------------------------------
class TestCrossTaskInterleaving:
    TASKS = staticmethod(lambda: [d3_task(p) for p in (0.005, 0.01, 0.02)])

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fixed_multishard_batch_matches_serial_per_task(self, workers):
        tasks = self.TASKS()
        engine = Engine(EngineConfig(max_workers=workers, shard_size=128))
        got = engine.run_ler_many(tasks, shots=512, seed=9)
        ref = serial_reference([SweepItem(t, ShotPolicy.fixed(512),
                                          it.seed)
                                for t, it in zip(tasks, _items(tasks, 9))])
        assert [result_tuple(r) for r in got] == [result_tuple(r) for r in ref]
        assert all(r.num_shards == 4 for r in got)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_adaptive_batch_matches_serial_per_task(self, workers):
        tasks = self.TASKS()
        policy = ShotPolicy.adaptive(4096, min_shots=128, target_failures=20)
        engine = Engine(EngineConfig(max_workers=workers, shard_size=128))
        got = engine.run_ler_many(tasks, policy=policy, seed=31)
        ref = serial_reference([SweepItem(t, policy, it.seed)
                                for t, it in zip(tasks, _items(tasks, 31))])
        assert [result_tuple(r) for r in got] == [result_tuple(r) for r in ref]
        # The high-p point stops early, the low-p point drains its budget:
        # exactly the mixed-wave shape interleaving is meant to overlap.
        assert got[0].shots > got[-1].shots

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_mixed_adaptive_and_fixed_sweep(self, workers):
        tasks = self.TASKS()
        items = [
            SweepItem(tasks[0], ShotPolicy.adaptive(4096, min_shots=128,
                                                    target_failures=15), 1),
            SweepItem(tasks[1], ShotPolicy.fixed(640), 2),
            SweepItem(tasks[2], ShotPolicy.fixed(64), 3),
        ]
        engine = Engine(EngineConfig(max_workers=workers, shard_size=128))
        got = engine.run_sweep(items)
        ref = serial_reference(items)
        assert [result_tuple(r) for r in got] == [result_tuple(r) for r in ref]

    def test_single_shard_batch_keeps_legacy_raw_seeds(self):
        """Fixed one-shard items are seeded with the raw item seed (legacy)."""
        task = d3_task()
        engine = Engine(EngineConfig(max_workers=1, shard_size=4096))
        got = engine.run_ler_many([task], shots=400, seed=9)[0]
        # run_ler_many derives child stream 0 of seed 9 for the single item.
        from repro.engine.rng import child_stream
        failures, _, _ = _run_ler_shard(task, child_stream(9, 0), 400)
        assert got.failures == failures

    def test_empty_sweep(self):
        assert Engine(EngineConfig()).run_sweep([]) == []

    def test_unseeded_sweep_runs_and_is_uncached(self, tmp_path):
        engine = Engine(EngineConfig(max_workers=2, shard_size=128,
                                     cache_dir=str(tmp_path)))
        results = engine.run_ler_many(self.TASKS(), shots=256, seed=None)
        assert [r.shots for r in results] == [256, 256, 256]
        assert len(ResultCache(tmp_path)) == 0


# ----------------------------------------------------------------------
# Cache warm/cold permutations
# ----------------------------------------------------------------------
class TestSweepCachePermutations:
    def test_cold_then_warm_sweep(self, tmp_path):
        tasks = [d3_task(p) for p in (0.005, 0.01, 0.02)]
        policy = ShotPolicy.adaptive(2048, min_shots=128, target_failures=15)
        engine = Engine(EngineConfig(max_workers=2, shard_size=128,
                                     cache_dir=str(tmp_path)))
        cold = engine.run_ler_many(tasks, policy=policy, seed=5)
        assert all(not r.from_cache for r in cold)
        warm = engine.run_ler_many(tasks, policy=policy, seed=5)
        assert all(r.from_cache for r in warm)
        assert ([result_tuple(r) for r in cold]
                == [result_tuple(r) for r in warm])

    def test_partially_warm_sweep_mixes_hits_and_live_runs(self, tmp_path):
        tasks = [d3_task(p) for p in (0.005, 0.01, 0.02)]
        policy = ShotPolicy.fixed(512)
        engine = Engine(EngineConfig(max_workers=2, shard_size=128,
                                     cache_dir=str(tmp_path)))
        # Warm only the middle task (same child stream the sweep will use).
        items = _items(tasks, 7, policy)
        engine.run_ler(items[1].task, policy=policy, seed=items[1].seed)

        results = engine.run_ler_many(tasks, shots=512, seed=7)
        assert [r.from_cache for r in results] == [False, True, False]
        ref = serial_reference(items)
        assert ([result_tuple(r) for r in results]
                == [result_tuple(r) for r in ref])

    def test_cache_is_worker_count_invariant(self, tmp_path):
        tasks = [d3_task(p) for p in (0.01, 0.02)]
        cold = Engine(EngineConfig(max_workers=4, shard_size=128,
                                   cache_dir=str(tmp_path)))
        warm = Engine(EngineConfig(max_workers=1, shard_size=128,
                                   cache_dir=str(tmp_path)))
        first = cold.run_ler_many(tasks, shots=512, seed=3)
        second = warm.run_ler_many(tasks, shots=512, seed=3)
        assert all(r.from_cache for r in second)
        assert ([result_tuple(r) for r in first]
                == [result_tuple(r) for r in second])

    def test_cache_contains(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        assert key not in cache
        cache.put(key, {"x": 1})
        assert key in cache


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
class TestPoolFailureHandling:
    def test_starmap_failure_propagates_and_pool_survives(self):
        engine = Engine(EngineConfig(max_workers=2))
        task = d3_task()
        # shots=-1 raises inside the worker; the remaining futures must be
        # cancelled instead of stranding the pool, and the pool must stay
        # usable afterwards.
        jobs = [(task, 1, 64), (task, 2, -1)] + [(task, i, 64)
                                                 for i in range(3, 20)]
        with pytest.raises(ValueError):
            engine.starmap(_run_ler_shard, jobs)
        out = engine.starmap(_run_ler_shard, [(task, 1, 64), (task, 2, 64)])
        assert len(out) == 2


# ----------------------------------------------------------------------
# Worker-side task-context memo
# ----------------------------------------------------------------------
class TestWorkerTaskMemo:
    def test_memo_is_lru_bounded_and_env_sized(self, monkeypatch):
        """Hits refresh recency, builds evict the least-recently-used entry,
        and the bound follows REPRO_TASK_MEMO (sweeps bigger than the memo
        would otherwise rebuild contexts on every interleaved shard)."""
        import repro.engine.executor as ex

        monkeypatch.setenv("REPRO_TASK_MEMO", "2")
        ex._TASK_MEMO.clear()
        try:
            t1, t2, t3 = d3_task(0.005), d3_task(0.01), d3_task(0.02)
            ex._context_for(t1)
            ex._context_for(t2)
            ctx1 = ex._TASK_MEMO[t1.content_hash()]
            ex._context_for(t1)   # LRU refresh: t2 is now the eviction victim
            ex._context_for(t3)
            assert t2.content_hash() not in ex._TASK_MEMO
            assert ex._TASK_MEMO[t1.content_hash()] is ctx1
            assert len(ex._TASK_MEMO) == 2
        finally:
            ex._TASK_MEMO.clear()


# ----------------------------------------------------------------------
# Engine-routed yield estimation
# ----------------------------------------------------------------------
def yield_estimator(seed=11, criterion=None, boundary=None):
    return YieldEstimator(7, DefectModel(LINK_AND_QUBIT, 0.01),
                          criterion or DistanceCriterion(5),
                          boundary_standard=boundary, seed=seed)


def yield_tuple(r):
    return (r.samples, r.accepted, r.distance_counts,
            r.accepted_distance_counts)


class TestYieldEngineRouting:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_count_invariant(self, workers):
        engine = Engine(EngineConfig(max_workers=workers))
        got = yield_estimator().run(60, engine=engine)
        ref = yield_estimator().run(60, engine=Engine(EngineConfig()))
        assert yield_tuple(got) == yield_tuple(ref)

    def test_task_route_matches_direct_block_fanout(self):
        """The YieldTask route must reproduce the pre-task engine path."""
        engine = Engine(EngineConfig(max_workers=2))
        routed = yield_estimator().run(60, engine=engine)
        direct = yield_estimator()._run_engine(60, engine)
        assert yield_tuple(routed) == yield_tuple(direct)

    def test_boundary_standard_and_defect_free_are_representable(self):
        engine = Engine(EngineConfig())
        est = yield_estimator(boundary=STANDARD_3.with_target(5))
        task = YieldTask.from_estimator(est, 40)
        assert task is not None
        assert task.boundary == ("standard-3", False, True, 5)
        got = est.run(40, engine=engine)
        ref = yield_estimator(boundary=STANDARD_3.with_target(5))._run_engine(
            40, engine)
        assert yield_tuple(got) == yield_tuple(ref)

        free = yield_estimator(criterion=DefectFreeCriterion())
        assert YieldTask.from_estimator(free, 40).criterion_kind == "defect_free"

    def test_custom_criterion_falls_back_uncached(self, tmp_path):
        class Always(PostSelectionCriterion):
            def accepts(self, metrics):
                return True

        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        est = yield_estimator(criterion=Always())
        assert YieldTask.from_estimator(est, 30) is None
        result = est.run(30, engine=engine)
        assert result.accepted == 30
        assert len(ResultCache(tmp_path)) == 0  # fallback never caches

    def test_custom_criterion_engine_runs_are_idempotent(self, tmp_path):
        """Unrepresentable specs use the stateless block fan-out: repeated
        run() calls on one estimator return identical counts (the legacy
        no-engine loop, by contrast, advances the estimator's mutable rng)."""
        class OddDistance(PostSelectionCriterion):
            def accepts(self, metrics):
                return metrics.distance % 2 == 1

        engine = Engine(EngineConfig(max_workers=1, cache_dir=str(tmp_path)))
        est = yield_estimator(criterion=OddDistance())
        first = est.run(40, engine=engine)
        second = est.run(40, engine=engine)
        assert yield_tuple(first) == yield_tuple(second)

    def test_defect_model_subclass_is_not_representable(self):
        class Correlated(DefectModel):
            pass

        est = YieldEstimator(7, Correlated(LINK_AND_QUBIT, 0.01),
                             DistanceCriterion(5), seed=3)
        assert YieldTask.from_estimator(est, 20) is None
        # The fallback still runs it (deterministically) on the engine
        # (serial here: a test-local class cannot pickle to pool workers).
        got = est.run(20, engine=Engine(EngineConfig()))
        ref = YieldEstimator(7, Correlated(LINK_AND_QUBIT, 0.01),
                             DistanceCriterion(5), seed=3)._run_engine(
            20, Engine(EngineConfig()))
        assert yield_tuple(got) == yield_tuple(ref)

    def test_cache_cold_then_warm(self, tmp_path):
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        cold = yield_estimator().run(50, engine=engine)
        warm = yield_estimator().run(50, engine=engine)
        assert not cold.from_cache
        assert warm.from_cache
        assert yield_tuple(cold) == yield_tuple(warm)
        assert len(ResultCache(tmp_path)) == 1

    def test_unseeded_yield_runs_are_never_cached(self, tmp_path):
        engine = Engine(EngineConfig(cache_dir=str(tmp_path)))
        result = yield_estimator(seed=None).run(20, engine=engine)
        assert result.samples == 20
        assert len(ResultCache(tmp_path)) == 0

    def test_content_hash_sensitivity(self):
        base = dict(chiplet_size=7, defect_model_kind=LINK_ONLY,
                    defect_rate=0.01, samples=50, target_distance=5)
        a = YieldTask(**base)
        assert a.content_hash() == YieldTask(**base).content_hash()
        assert a.content_hash() != YieldTask(**{**base, "samples": 51}).content_hash()
        assert a.content_hash() != YieldTask(**{**base, "allow_rotation": True}).content_hash()
        assert a.content_hash() != YieldTask(
            **{**base, "boundary": ("standard-1", True, True, 5)}).content_hash()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            YieldTask(chiplet_size=7, defect_model_kind="bogus",
                      defect_rate=0.01, samples=10, target_distance=5)
        with pytest.raises(ValueError):
            YieldTask(chiplet_size=7, defect_model_kind=LINK_ONLY,
                      defect_rate=0.01, samples=0, target_distance=5)
        with pytest.raises(ValueError):
            YieldTask(chiplet_size=7, defect_model_kind=LINK_ONLY,
                      defect_rate=0.01, samples=10, target_distance=None)
        with pytest.raises(ValueError):
            YieldTask(chiplet_size=7, defect_model_kind=LINK_ONLY,
                      defect_rate=0.01, samples=10, criterion_kind="magic",
                      target_distance=5)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _items(tasks, seed, policy=None):
    """SweepItems with the exact child seeds run_ler_many derives."""
    from repro.engine.rng import child_stream

    policy = policy or ShotPolicy.fixed(512)
    return [SweepItem(t, policy, child_stream(seed, i))
            for i, t in enumerate(tasks)]


# ----------------------------------------------------------------------
# Wave progress callbacks (the service's partial-result stream)
# ----------------------------------------------------------------------
class TestWaveCallbacks:
    def test_wave_updates_accumulate_to_the_result(self):
        engine = Engine(EngineConfig(shard_size=128))
        # An unreachable failure target forces the full geometric ramp:
        # waves of 256, 512 and 256 shots up to the 1024-shot budget.
        policy = ShotPolicy.adaptive(1024, min_shots=256,
                                     target_failures=10**6)
        updates = []
        result = engine.run_ler(d3_task(0.02), policy=policy, seed=9,
                                on_wave=updates.append)
        assert [u.wave_shots for u in updates] == [256, 512, 256]
        assert [u.wave for u in updates] == list(range(len(updates)))
        assert all(u.index == 0 for u in updates)
        # Per-wave deltas sum to the cumulative totals, which end at the
        # final result.
        assert sum(u.wave_failures for u in updates) == result.failures
        assert sum(u.wave_shots for u in updates) == result.shots
        assert (updates[-1].failures, updates[-1].shots) == \
            (result.failures, result.shots)
        monotone = [u.shots for u in updates]
        assert monotone == sorted(monotone)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_callbacks_never_change_the_numbers(self, workers):
        tasks = [d3_task(p) for p in (0.005, 0.01)]
        ref = Engine(EngineConfig(shard_size=128)).run_ler_many(
            tasks, shots=512, seed=3)
        engine = Engine(EngineConfig(max_workers=workers, shard_size=128))
        seen = []
        got = engine.run_ler_many(tasks, shots=512, seed=3,
                                  on_wave=seen.append)
        assert [result_tuple(r) for r in got] == \
            [result_tuple(r) for r in ref]
        assert {u.index for u in seen} == {0, 1}

    def test_cache_hits_produce_no_waves(self, tmp_path):
        engine = Engine(EngineConfig(shard_size=128,
                                     cache_dir=str(tmp_path)))
        tasks = [d3_task(p) for p in (0.005, 0.01)]
        engine.run_ler_many(tasks, shots=512, seed=3)
        updates = []
        rerun = engine.run_ler_many(tasks, shots=512, seed=3,
                                    on_wave=updates.append)
        assert all(r.from_cache for r in rerun)
        assert updates == []  # nothing executed, nothing to stream

    def test_callback_exception_aborts_the_sweep(self):
        engine = Engine(EngineConfig(max_workers=2, shard_size=128))

        def boom(update):
            raise RuntimeError("watcher died")

        with pytest.raises(RuntimeError, match="watcher died"):
            engine.run_ler_many([d3_task()], shots=512, seed=3, on_wave=boom)
