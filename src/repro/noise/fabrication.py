"""Fabrication-defect models.

The paper (Sec. 4) uses two models of fabrication errors:

``link_only``
    Every data-ancilla coupler is independently faulty with probability
    ``rate``.  This models fixed-frequency transmons with fixed couplers,
    where frequency collisions on couplers dominate.

``link_and_qubit``
    Every coupler *and* every qubit (data or measurement) is independently
    faulty with probability ``rate``.  This models tunable transmons where
    couplers are as intricate as qubits.

A sampled :class:`DefectSet` records faulty qubits (by coordinate) and faulty
links (as ``(data, ancilla)`` pairs).  The adaptation algorithm consumes the
defect set directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

import numpy as np

from ..surface_code.layout import Coord, RotatedSurfaceCodeLayout

__all__ = ["DefectSet", "DefectModel", "LINK_ONLY", "LINK_AND_QUBIT"]

LINK_ONLY = "link_only"
LINK_AND_QUBIT = "link_and_qubit"
_VALID_MODELS = (LINK_ONLY, LINK_AND_QUBIT)


@dataclass(frozen=True)
class DefectSet:
    """A concrete set of fabrication defects on one chiplet."""

    faulty_qubits: FrozenSet[Coord] = field(default_factory=frozenset)
    faulty_links: FrozenSet[Tuple[Coord, Coord]] = field(default_factory=frozenset)

    @staticmethod
    def of(qubits: Iterable[Coord] = (), links: Iterable[Tuple[Coord, Coord]] = ()) -> "DefectSet":
        return DefectSet(frozenset(tuple(q) for q in qubits),
                         frozenset((tuple(a), tuple(b)) for a, b in links))

    @property
    def num_faulty_qubits(self) -> int:
        return len(self.faulty_qubits)

    @property
    def num_faulty_links(self) -> int:
        return len(self.faulty_links)

    def is_empty(self) -> bool:
        return not self.faulty_qubits and not self.faulty_links

    def union(self, other: "DefectSet") -> "DefectSet":
        return DefectSet(self.faulty_qubits | other.faulty_qubits,
                         self.faulty_links | other.faulty_links)

    def __bool__(self) -> bool:
        return not self.is_empty()


@dataclass(frozen=True)
class DefectModel:
    """Bernoulli fabrication-defect model.

    Parameters
    ----------
    kind:
        ``"link_only"`` or ``"link_and_qubit"``.
    rate:
        Probability that each component (link, and qubit when applicable) is
        faulty.
    """

    kind: str
    rate: float

    def __post_init__(self) -> None:
        if self.kind not in _VALID_MODELS:
            raise ValueError(f"unknown defect model {self.kind!r}; use one of {_VALID_MODELS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"defect rate {self.rate} outside [0, 1]")

    # ------------------------------------------------------------------
    def sample(self, layout: RotatedSurfaceCodeLayout,
               rng: np.random.Generator | int | None = None) -> DefectSet:
        """Sample a defect set for one chiplet with the given layout."""
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        links = layout.links
        link_faulty = rng.random(len(links)) < self.rate
        faulty_links = frozenset(links[i] for i in np.flatnonzero(link_faulty))
        faulty_qubits: FrozenSet[Coord] = frozenset()
        if self.kind == LINK_AND_QUBIT:
            qubits = layout.all_qubits
            qubit_faulty = rng.random(len(qubits)) < self.rate
            faulty_qubits = frozenset(qubits[i] for i in np.flatnonzero(qubit_faulty))
        return DefectSet(faulty_qubits=faulty_qubits, faulty_links=faulty_links)

    # ------------------------------------------------------------------
    def defect_free_probability(self, layout: RotatedSurfaceCodeLayout) -> float:
        """Probability that a chiplet has no defect at all.

        This is the yield of the defect-intolerant baseline in the paper,
        which only accepts chiplets with zero defects.
        """
        n_components = layout.num_links
        if self.kind == LINK_AND_QUBIT:
            n_components += layout.num_fabricated_qubits
        return float((1.0 - self.rate) ** n_components)

    def expected_defects(self, layout: RotatedSurfaceCodeLayout) -> float:
        """Expected number of faulty components on one chiplet."""
        n_components = layout.num_links
        if self.kind == LINK_AND_QUBIT:
            n_components += layout.num_fabricated_qubits
        return float(self.rate * n_components)
