"""Circuit-level noise model used for all logical-error simulations.

The paper's model (Sec. 4): two-qubit gates fail with probability ``p``
(depolarising), one-qubit gates with ``0.8 p``, and readout with
``(8/15) p``.  We additionally expose idle noise on data qubits during the
measurement/reset step (standard in Tomita–Svore style circuits and enabled
by default) and reset noise (disabled by default, as the paper does not
mention it).

For the cutoff-fidelity study (Sec. 6) a *per-qubit override* elevates the
error rates of one designated "bad" qubit: its two-qubit error rate becomes
``bad_qubit_p`` and its other error rates scale by the same factor, exactly
as described in the paper ("the other errors on it scale accordingly").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..surface_code.layout import Coord

__all__ = ["CircuitNoiseModel"]


@dataclass(frozen=True)
class CircuitNoiseModel:
    """Parameters of the circuit-level noise model.

    Attributes
    ----------
    p:
        Baseline two-qubit depolarising error rate.
    single_qubit_factor:
        One-qubit gate error is ``single_qubit_factor * p`` (paper: 0.8).
    readout_factor:
        Readout flip probability is ``readout_factor * p`` (paper: 8/15).
    idle_data_factor:
        Depolarising rate applied to each data qubit once per round while the
        ancillas are being measured/reset.  Set to 0 to disable.
    reset_factor:
        Bit-flip rate after each reset.  0 by default (not in the paper).
    bad_qubits:
        Map from coordinate to an elevated two-qubit error rate for that
        qubit; all other rates on gates touching the qubit scale by the same
        ratio.  Used by the Sec. 6 cutoff-fidelity study.
    """

    p: float
    single_qubit_factor: float = 0.8
    readout_factor: float = 8.0 / 15.0
    idle_data_factor: float = 0.8
    reset_factor: float = 0.0
    bad_qubits: Tuple[Tuple[Coord, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p={self.p} outside [0, 1]")
        for factor_name in ("single_qubit_factor", "readout_factor",
                            "idle_data_factor", "reset_factor"):
            if getattr(self, factor_name) < 0:
                raise ValueError(f"{factor_name} must be non-negative")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def standard(cls, p: float) -> "CircuitNoiseModel":
        """The paper's standard circuit-level noise at two-qubit error rate p."""
        return cls(p=p)

    def with_bad_qubit(self, coord: Coord, bad_p: float) -> "CircuitNoiseModel":
        """A copy with one qubit's error rates elevated to ``bad_p``."""
        return replace(self, bad_qubits=self.bad_qubits + ((tuple(coord), float(bad_p)),))

    # ------------------------------------------------------------------
    # Rate lookups (per-qubit overrides applied here)
    # ------------------------------------------------------------------
    def _bad_map(self) -> Dict[Coord, float]:
        return {coord: rate for coord, rate in self.bad_qubits}

    def _scale_for(self, *coords: Coord) -> float:
        """Ratio by which rates on a gate touching any bad qubit are scaled."""
        bad = self._bad_map()
        worst = self.p
        for c in coords:
            if c in bad:
                worst = max(worst, bad[c])
        if self.p == 0:
            return 1.0
        return worst / self.p

    def two_qubit_rate(self, a: Coord, b: Coord) -> float:
        return min(1.0, self.p * self._scale_for(a, b))

    def single_qubit_rate(self, q: Coord) -> float:
        return min(1.0, self.single_qubit_factor * self.p * self._scale_for(q))

    def readout_rate(self, q: Coord) -> float:
        return min(1.0, self.readout_factor * self.p * self._scale_for(q))

    def idle_rate(self, q: Coord) -> float:
        return min(1.0, self.idle_data_factor * self.p * self._scale_for(q))

    def reset_rate(self, q: Coord) -> float:
        return min(1.0, self.reset_factor * self.p * self._scale_for(q))
