"""Noise substrate: fabrication-defect models and circuit-level Pauli noise."""

from .circuit_noise import CircuitNoiseModel
from .fabrication import LINK_AND_QUBIT, LINK_ONLY, DefectModel, DefectSet

__all__ = [
    "CircuitNoiseModel",
    "DefectModel",
    "DefectSet",
    "LINK_ONLY",
    "LINK_AND_QUBIT",
]
