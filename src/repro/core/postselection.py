"""Post-selection criteria for defective chiplets (Sec. 4.2 of the paper).

When assembling a modular device one can measure each chiplet's defect map,
adapt a surface code to it, and decide whether the chiplet is good enough to
use.  The paper compares two ways of making that decision:

* the **baseline** indicator: the raw number of faulty qubits on the chiplet
  (fewer faults = better), which is what a defect-count-only strategy such as
  the one in the chiplet paper [33] would use; and
* the **chosen indicators**: the adapted code distance as the primary
  indicator, with the number of minimum-weight logical operators breaking
  ties (fewer short logicals = better), which the paper shows predicts the
  measured slope far better (Fig. 11).

Two interfaces are provided: *acceptance criteria* (used by the yield and
resource-overhead studies, Figs. 12-13 and 15-18: "does this chiplet perform
at least as well as a defect-free distance-d patch?") and *rankings* (used by
the Fig. 11 study: "keep the best fraction q of chiplets").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence

from ..noise.fabrication import DefectSet
from ..surface_code.layout import RotatedSurfaceCodeLayout
from .adaptation import adapt_patch
from .metrics import PatchMetrics, evaluate_patch

__all__ = [
    "reference_metrics",
    "PostSelectionCriterion",
    "DistanceCriterion",
    "DefectFreeCriterion",
    "rank_by_chosen_indicators",
    "rank_by_faulty_count",
    "select_fraction",
]


@lru_cache(maxsize=None)
def reference_metrics(distance: int) -> PatchMetrics:
    """Metrics of the defect-free rotated surface code of a given distance."""
    layout = RotatedSurfaceCodeLayout(distance)
    return evaluate_patch(adapt_patch(layout, DefectSet.of()))


class PostSelectionCriterion:
    """Interface: decide whether a chiplet (via its metrics) is acceptable."""

    def accepts(self, metrics: PatchMetrics) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, metrics: PatchMetrics) -> bool:
        return self.accepts(metrics)


@dataclass(frozen=True)
class DistanceCriterion(PostSelectionCriterion):
    """Accept chiplets that perform at least as well as a defect-free patch.

    "At least as well" is evaluated with the paper's two indicators: the
    adapted code distance must reach ``target_distance``; patches that only
    just reach it must not have *more* minimum-weight logical operators than
    the defect-free reference (Fig. 7 shows patches with the same distance but
    more short logicals perform worse).
    """

    target_distance: int
    use_operator_count: bool = True

    def accepts(self, metrics: PatchMetrics) -> bool:
        if not metrics.valid:
            return False
        if metrics.distance > self.target_distance:
            return True
        if metrics.distance < self.target_distance:
            return False
        if not self.use_operator_count:
            return True
        reference = reference_metrics(self.target_distance)
        return metrics.num_shortest <= reference.num_shortest


@dataclass(frozen=True)
class DefectFreeCriterion(PostSelectionCriterion):
    """The defect-intolerant baseline: accept only chiplets with zero defects."""

    def accepts(self, metrics: PatchMetrics) -> bool:
        return metrics.num_faulty_qubits == 0 and metrics.num_faulty_links == 0


# ----------------------------------------------------------------------
# Rankings (Fig. 11)
# ----------------------------------------------------------------------
def rank_by_chosen_indicators(metrics: Sequence[PatchMetrics]) -> List[int]:
    """Indices of chiplets ordered best-first by (distance desc, #shortest asc)."""
    order = sorted(
        range(len(metrics)),
        key=lambda i: (-metrics[i].distance, metrics[i].num_shortest),
    )
    return order


def rank_by_faulty_count(metrics: Sequence[PatchMetrics]) -> List[int]:
    """Indices ordered best-first by the baseline indicator (fewest faulty qubits)."""
    return sorted(range(len(metrics)), key=lambda i: metrics[i].num_faulty_qubits)


def select_fraction(
    ranking: Sequence[int], keep_fraction: float
) -> List[int]:
    """Keep the best ``keep_fraction`` of a ranking (at least one chiplet)."""
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must lie in (0, 1]")
    count = max(1, int(round(keep_fraction * len(ranking))))
    return list(ranking[:count])
