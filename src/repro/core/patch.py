"""Data structures describing a surface-code patch adapted to defects.

The adaptation algorithm (:mod:`repro.core.adaptation`) outputs an
:class:`AdaptedPatch` that records, for one chiplet:

* which data and measurement qubits are disabled (faulty, excluded because of
  a neighbouring faulty measurement qubit, or excised by a boundary
  deformation);
* the regular stabilizers that are measured every round (intact checks plus
  checks whose support shrank during a boundary deformation);
* the super-stabilizers formed around interior defect clusters, each a group
  of gauge operators measured on an alternating / blocked schedule;
* the repetition count of the measurement schedule per cluster (XZXZ... for
  small clusters, XX..ZZ.. for large clusters, following Sec. 3).

It also exposes the derived views required downstream: the "Z units" and
"X units" used for distance computations (a unit is either an intact/deformed
stabilizer or a super-stabilizer product), and validation routines that check
the stabilizer-commutation and encoded-qubit-count invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..noise.fabrication import DefectSet
from ..stabilizer.pauli import PauliString
from ..surface_code.layout import Check, Coord, RotatedSurfaceCodeLayout

__all__ = ["GaugeOperator", "SuperStabilizer", "StabilizerUnit", "AdaptedPatch"]


@dataclass(frozen=True)
class GaugeOperator:
    """A broken check kept as a gauge operator (measured on a schedule)."""

    kind: str
    ancilla: Coord
    data: Tuple[Coord, ...]

    @property
    def weight(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class SuperStabilizer:
    """A product of gauge operators around one interior defect cluster."""

    kind: str
    cluster_id: int
    gauges: Tuple[GaugeOperator, ...]

    @cached_property
    def product_support(self) -> Tuple[Coord, ...]:
        """Data qubits appearing in an odd number of gauges (the product's support)."""
        counts: Dict[Coord, int] = {}
        for g in self.gauges:
            for d in g.data:
                counts[d] = counts.get(d, 0) + 1
        return tuple(sorted(d for d, c in counts.items() if c % 2 == 1))

    @property
    def num_gauges(self) -> int:
        return len(self.gauges)

    def membership_parity(self, data_qubit: Coord) -> int:
        """How many of this super-stabilizer's gauges contain the qubit, mod 2."""
        return sum(1 for g in self.gauges if data_qubit in g.data) % 2


@dataclass(frozen=True)
class StabilizerUnit:
    """A reliably-inferable parity check of the adapted code.

    Either a regular stabilizer (one check, measured every round) or a
    super-stabilizer product.  Used as a graph node by the distance and
    logical-operator-counting metrics.
    """

    kind: str
    support: Tuple[Coord, ...]
    ancillas: Tuple[Coord, ...]
    is_super: bool
    cluster_id: Optional[int] = None

    @property
    def weight(self) -> int:
        return len(self.support)


@dataclass
class AdaptedPatch:
    """A rotated surface-code patch adapted to a set of fabrication defects."""

    layout: RotatedSurfaceCodeLayout
    defects: DefectSet
    disabled_data: FrozenSet[Coord]
    disabled_ancillas: FrozenSet[Coord]
    stabilizers: Tuple[Check, ...]
    super_stabilizers: Tuple[SuperStabilizer, ...]
    cluster_repetitions: Dict[int, int] = field(default_factory=dict)
    valid: bool = True
    failure_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @cached_property
    def active_data(self) -> Tuple[Coord, ...]:
        return tuple(sorted(set(self.layout.data_qubits) - set(self.disabled_data)))

    @cached_property
    def gauge_operators(self) -> Tuple[GaugeOperator, ...]:
        return tuple(g for ss in self.super_stabilizers for g in ss.gauges)

    @cached_property
    def active_ancillas(self) -> Tuple[Coord, ...]:
        anc = {c.ancilla for c in self.stabilizers}
        anc |= {g.ancilla for g in self.gauge_operators}
        return tuple(sorted(anc))

    @property
    def num_disabled_data(self) -> int:
        return len(self.disabled_data)

    @property
    def num_disabled_qubits(self) -> int:
        return len(self.disabled_data) + len(self.disabled_ancillas)

    @property
    def is_defect_free(self) -> bool:
        return self.defects.is_empty()

    def disabled_data_fraction(self) -> float:
        """Proportion of data qubits disabled (Fig. 8 x-axis)."""
        return len(self.disabled_data) / self.layout.num_data_qubits

    # ------------------------------------------------------------------
    # Stabilizer units used by the metrics
    # ------------------------------------------------------------------
    def units(self, kind: str) -> List[StabilizerUnit]:
        """All reliably-inferable parity checks of a given type ('X' or 'Z')."""
        if kind not in ("X", "Z"):
            raise ValueError("kind must be 'X' or 'Z'")
        out: List[StabilizerUnit] = []
        for check in self.stabilizers:
            if check.kind == kind:
                out.append(StabilizerUnit(kind=kind, support=tuple(check.data),
                                          ancillas=(check.ancilla,), is_super=False))
        for ss in self.super_stabilizers:
            if ss.kind == kind:
                out.append(StabilizerUnit(kind=kind, support=ss.product_support,
                                          ancillas=tuple(g.ancilla for g in ss.gauges),
                                          is_super=True, cluster_id=ss.cluster_id))
        return out

    def z_units(self) -> List[StabilizerUnit]:
        return self.units("Z")

    def x_units(self) -> List[StabilizerUnit]:
        return self.units("X")

    # ------------------------------------------------------------------
    # Pauli views (for invariant checking)
    # ------------------------------------------------------------------
    @cached_property
    def _data_index(self) -> Dict[Coord, int]:
        return {d: i for i, d in enumerate(self.active_data)}

    def _pauli_on_active(self, kind: str, support: Sequence[Coord]) -> PauliString:
        n = len(self.active_data)
        idx = self._data_index
        return PauliString.from_sparse(
            n, {idx[d]: kind for d in support if d in idx}
        )

    def stabilizer_paulis(self) -> List[PauliString]:
        """All regular stabilizers plus super-stabilizer products, as Paulis."""
        out = [self._pauli_on_active(c.kind, c.data) for c in self.stabilizers]
        out.extend(
            self._pauli_on_active(ss.kind, ss.product_support)
            for ss in self.super_stabilizers
        )
        return out

    def gauge_paulis(self) -> List[PauliString]:
        return [self._pauli_on_active(g.kind, g.data) for g in self.gauge_operators]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> List[str]:
        """Return a list of violated invariants (empty when the patch is sound).

        1. Stabilizer supports only touch enabled data qubits.
        2. All stabilizers (including super products) pairwise commute.
        3. Every stabilizer commutes with every gauge operator.
        4. The code encodes at least one logical qubit.  (Heavily deformed
           patches can additionally encode "junk" degrees of freedom behind
           excised regions; those are harmless to the stored logical qubit -
           the distance metric and the memory-experiment observable always
           refer to the boundary-to-boundary logical - so they are not
           treated as an invariant violation.)
        """
        problems: List[str] = []
        disabled = set(self.disabled_data)
        for check in self.stabilizers:
            if any(d in disabled for d in check.data):
                problems.append(f"stabilizer at {check.ancilla} touches a disabled qubit")
        for g in self.gauge_operators:
            if any(d in disabled for d in g.data):
                problems.append(f"gauge at {g.ancilla} touches a disabled qubit")

        stabs = self.stabilizer_paulis()
        for i in range(len(stabs)):
            for j in range(i + 1, len(stabs)):
                if not stabs[i].commutes_with(stabs[j]):
                    problems.append(f"stabilizers {i} and {j} anticommute")
        gauges = self.gauge_paulis()
        for i, s in enumerate(stabs):
            for j, g in enumerate(gauges):
                if not s.commutes_with(g):
                    problems.append(f"stabilizer {i} anticommutes with gauge {j}")

        stores_logical = len(set(self.layout.boundary_sides().values())) > 1
        if stores_logical and self.num_logical_qubits() < 1:
            # Stability patches (all boundaries of one type) intentionally
            # encode no logical qubit, so the check only applies to memory
            # patches.
            problems.append("patch encodes no logical qubit at all")
        return problems

    def num_logical_qubits(self) -> int:
        """Number of encoded logical qubits of the adapted (subsystem) code.

        With stabilizer group ``S`` and gauge group ``G`` (stabilizers plus
        gauge operators), the count is ``n - rank(S) - g`` where the number of
        gauge qubits is ``g = (rank(G) - rank(S)) / 2``.
        """
        stabs = self.stabilizer_paulis()
        gauges = self.gauge_paulis()
        n = len(self.active_data)
        if n == 0:
            return 0
        if not stabs and not gauges:
            return n

        def _rank(paulis: Sequence[PauliString]) -> int:
            if not paulis:
                return 0
            mat = np.zeros((len(paulis), 2 * n), dtype=np.uint8)
            for i, p in enumerate(paulis):
                mat[i, :n] = p.xs
                mat[i, n:] = p.zs
            return _gf2_rank(mat)

        rank_s = _rank(stabs)
        rank_g = _rank(list(stabs) + list(gauges))
        gauge_qubits = (rank_g - rank_s) // 2
        return n - rank_s - gauge_qubits

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A small dictionary describing the patch (used by examples/benchmarks)."""
        return {
            "size": self.layout.size,
            "valid": self.valid,
            "failure_reason": self.failure_reason,
            "num_faulty_qubits": self.defects.num_faulty_qubits,
            "num_faulty_links": self.defects.num_faulty_links,
            "num_disabled_data": len(self.disabled_data),
            "num_disabled_ancillas": len(self.disabled_ancillas),
            "num_stabilizers": len(self.stabilizers),
            "num_super_stabilizers": len(self.super_stabilizers),
        }


def _gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a binary matrix over GF(2).

    Rows are bit-packed so that the elimination runs on whole byte words; this
    keeps the check fast enough to run on every adapted chiplet in the yield
    Monte-Carlo studies.
    """
    if matrix.size == 0:
        return 0
    mat = np.packbits(matrix.astype(np.uint8) % 2, axis=1)
    num_rows, _ = mat.shape
    num_cols = matrix.shape[1]
    row_used = np.zeros(num_rows, dtype=bool)
    rank = 0
    for col in range(num_cols):
        byte, bit = divmod(col, 8)
        mask = np.uint8(1 << (7 - bit))
        has_bit = (mat[:, byte] & mask) != 0
        candidates = np.flatnonzero(has_bit & ~row_used)
        if candidates.size == 0:
            continue
        pivot = int(candidates[0])
        row_used[pivot] = True
        rank += 1
        others = np.flatnonzero(has_bit)
        others = others[others != pivot]
        if others.size:
            mat[others] ^= mat[pivot]
        if rank == num_rows:
            break
    return rank
