"""Figures of merit for adapted surface-code patches.

The paper identifies two indicators that predict the logical fidelity of a
defective patch without running expensive Monte-Carlo simulations (Sec. 4.2):

1. the **code distance** ``d`` of the adapted patch - the least number of
   physical errors that can cause a logical failure; and
2. the **number of minimum-weight logical operators** - how many distinct
   ways a logical failure can occur with exactly ``d`` errors.

Both are computed on a *chain graph*: nodes are the reliably-inferable parity
checks of one type (intact/deformed stabilizers and super-stabilizer
products), plus two virtual boundary nodes; every enabled data qubit
contributes an edge between the (at most two) checks whose product support
contains it, or an edge to a boundary node when it sits next to a boundary or
a deformation hole connected to a boundary.  The code distance is the length
of the shortest boundary-to-boundary path and the operator count is the
number of shortest paths (counted with edge multiplicity).

The module also provides the secondary quantities plotted in Figs. 8-10:
the fraction of disabled data qubits, the diameter of the largest cluster of
disabled qubits, and the raw number of faulty qubits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..surface_code.layout import Coord, plaquette_kind
from .adaptation import cluster_diameter, defect_clusters
from .patch import AdaptedPatch

__all__ = [
    "ChainGraph",
    "PatchMetrics",
    "build_chain_graph",
    "code_distance",
    "num_shortest_logicals",
    "evaluate_patch",
]

_BOUNDARY_A = "boundary_a"
_BOUNDARY_B = "boundary_b"


# ----------------------------------------------------------------------
# Chain graph construction
# ----------------------------------------------------------------------
@dataclass
class ChainGraph:
    """Multigraph on which error chains of one Pauli type live.

    ``adjacency`` maps each node to its neighbours, and each neighbour to the
    list of data qubits realising that edge (parallel edges correspond to
    distinct physical qubits and therefore to distinct logical operators).
    """

    adjacency: Dict[object, Dict[object, List[Coord]]]
    error_type: str

    def shortest_path_length(self) -> Optional[int]:
        """Length of the shortest boundary-to-boundary path (the code distance)."""
        dist = self._bfs_distances()
        return dist.get(_BOUNDARY_B)

    def shortest_path_count(self) -> int:
        """Number of shortest boundary-to-boundary paths, with multiplicity."""
        dist = self._bfs_distances()
        if _BOUNDARY_B not in dist:
            return 0
        counts: Dict[object, int] = {_BOUNDARY_A: 1}
        order = sorted(dist, key=lambda n: dist[n])
        for node in order:
            if node not in counts:
                continue
            for nb, qubits in self.adjacency.get(node, {}).items():
                if dist.get(nb) == dist[node] + 1:
                    counts[nb] = counts.get(nb, 0) + counts[node] * len(qubits)
        return counts.get(_BOUNDARY_B, 0)

    def shortest_path_qubits(self, avoid: Set[Coord] = frozenset()) -> Optional[List[Coord]]:
        """Data qubits of one shortest boundary-to-boundary chain.

        Edges whose qubit is in ``avoid`` are skipped; returns ``None`` when no
        path exists under that restriction.  Used to pick logical-operator
        representatives that avoid gauge regions.
        """
        dist = self._bfs_distances(avoid)
        if _BOUNDARY_B not in dist:
            return None
        # Walk back from boundary B following strictly decreasing distances.
        path: List[Coord] = []
        node = _BOUNDARY_B
        while node != _BOUNDARY_A:
            for nb, qubits in self.adjacency.get(node, {}).items():
                usable = [q for q in qubits if q not in avoid]
                if usable and dist.get(nb) == dist[node] - 1:
                    path.append(usable[0])
                    node = nb
                    break
            else:  # pragma: no cover - defensive; dist guarantees progress
                return None
        return path

    def _bfs_distances(self, avoid: Set[Coord] = frozenset()) -> Dict[object, int]:
        dist = {_BOUNDARY_A: 0}
        frontier = [_BOUNDARY_A]
        while frontier:
            nxt = []
            for node in frontier:
                for nb, qubits in self.adjacency.get(node, {}).items():
                    if avoid and not any(q not in avoid for q in qubits):
                        continue
                    if nb not in dist:
                        dist[nb] = dist[node] + 1
                        nxt.append(nb)
            frontier = nxt
        return dist


def _void_components(
    patch: AdaptedPatch, occupied: Set[Coord]
) -> Tuple[Dict[Coord, int], Dict[int, Dict[str, bool]]]:
    """Connected components of candidate plaquette positions with no reliable check.

    Returns a map position -> component id and, per component, which patch
    sides (top/bottom/left/right exteriors) it touches.
    """
    layout = patch.layout
    l = layout.size
    void = [pos for pos in layout.candidate_plaquettes() if pos not in occupied]
    void_set = set(void)
    comp_of: Dict[Coord, int] = {}
    touches: Dict[int, Dict[str, bool]] = {}
    comp_id = 0
    for start in void:
        if start in comp_of:
            continue
        stack = [start]
        comp_of[start] = comp_id
        info = {"top": False, "bottom": False, "left": False, "right": False}
        while stack:
            x, y = stack.pop()
            if y == 0:
                info["top"] = True
            if y == 2 * l:
                info["bottom"] = True
            if x == 0:
                info["left"] = True
            if x == 2 * l:
                info["right"] = True
            for dx, dy in ((2, 0), (-2, 0), (0, 2), (0, -2)):
                nb = (x + dx, y + dy)
                if nb in void_set and nb not in comp_of:
                    comp_of[nb] = comp_id
                    stack.append(nb)
        touches[comp_id] = info
        comp_id += 1
    return comp_of, touches


def build_chain_graph(patch: AdaptedPatch, error_type: str = "X") -> ChainGraph:
    """Build the chain multigraph for errors of ``error_type`` ('X' or 'Z').

    X errors are detected by Z checks and terminate on the ``y`` boundaries;
    Z errors are detected by X checks and terminate on the ``x`` boundaries.
    """
    if error_type not in ("X", "Z"):
        raise ValueError("error_type must be 'X' or 'Z'")
    detecting_kind = "Z" if error_type == "X" else "X"
    units = patch.units(detecting_kind)
    layout = patch.layout
    l = layout.size

    # Map data qubit -> unit indices whose product support contains it.
    membership: Dict[Coord, List[int]] = {}
    for idx, unit in enumerate(units):
        for d in unit.support:
            membership.setdefault(d, []).append(idx)

    occupied: Set[Coord] = set()
    for unit in units:
        occupied.update(unit.ancillas)
    comp_of, touches = _void_components(patch, occupied)

    adjacency: Dict[object, Dict[object, List[Coord]]] = {}

    def add_edge(u: object, v: object, qubit: Coord) -> None:
        if u == v:
            return
        adjacency.setdefault(u, {}).setdefault(v, []).append(qubit)
        adjacency.setdefault(v, {}).setdefault(u, []).append(qubit)

    def boundary_label(position: Coord, qubit: Coord) -> Optional[object]:
        comp = comp_of.get(position)
        if comp is None:
            return None
        info = touches[comp]
        if error_type == "X":
            near, far, axis_value = "top", "bottom", qubit[1]
        else:
            near, far, axis_value = "left", "right", qubit[0]
        if not (info[near] or info[far]):
            return None
        if info[near] and info[far]:
            return _BOUNDARY_A if axis_value < l else _BOUNDARY_B
        return _BOUNDARY_A if info[near] else _BOUNDARY_B

    for qubit in patch.active_data:
        members = membership.get(qubit, [])
        if len(members) >= 2:
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    add_edge(("u", members[i]), ("u", members[j]), qubit)
            continue
        # Fewer than two reliable checks: look at the missing check positions.
        x, y = qubit
        member_ancillas = set()
        for m in members:
            member_ancillas.update(units[m].ancillas)
        labels: Set[object] = set()
        for dx in (-1, 1):
            for dy in (-1, 1):
                pos = (x + dx, y + dy)
                if not (0 <= pos[0] <= 2 * l and 0 <= pos[1] <= 2 * l):
                    continue
                if plaquette_kind(pos) != detecting_kind:
                    continue
                if pos in member_ancillas:
                    continue
                label = boundary_label(pos, qubit)
                if label is not None:
                    labels.add(label)
        if len(members) == 1:
            for label in labels:
                add_edge(("u", members[0]), label, qubit)
        elif len(members) == 0 and len(labels) == 2:
            add_edge(_BOUNDARY_A, _BOUNDARY_B, qubit)

    adjacency.setdefault(_BOUNDARY_A, {})
    adjacency.setdefault(_BOUNDARY_B, {})
    return ChainGraph(adjacency=adjacency, error_type=error_type)


# ----------------------------------------------------------------------
# Scalar metrics
# ----------------------------------------------------------------------
def code_distance(patch: AdaptedPatch, error_type: str = "X") -> int:
    """Code distance of the adapted patch along one error type.

    Returns 0 when no undetectable chain exists in the graph model (which
    also covers invalid patches).
    """
    graph = build_chain_graph(patch, error_type)
    length = graph.shortest_path_length()
    return 0 if length is None else int(length)


def num_shortest_logicals(patch: AdaptedPatch, error_type: str = "X") -> int:
    """Number of minimum-weight logical operators of one error type."""
    return build_chain_graph(patch, error_type).shortest_path_count()


@dataclass(frozen=True)
class PatchMetrics:
    """All per-patch figures of merit used by the paper's analyses."""

    distance_x: int
    distance_z: int
    num_shortest_x: int
    num_shortest_z: int
    num_faulty_qubits: int
    num_faulty_links: int
    num_disabled_data: int
    disabled_data_fraction: float
    largest_cluster_diameter: float
    valid: bool

    @property
    def distance(self) -> int:
        """The code distance: the worse of the two directions."""
        return min(self.distance_x, self.distance_z)

    @property
    def num_shortest(self) -> int:
        """Min-weight logical operator count along the limiting direction."""
        if self.distance_x < self.distance_z:
            return self.num_shortest_x
        if self.distance_z < self.distance_x:
            return self.num_shortest_z
        return self.num_shortest_x + self.num_shortest_z


def evaluate_patch(patch: AdaptedPatch) -> PatchMetrics:
    """Compute every figure of merit for one adapted patch."""
    if not patch.valid:
        return PatchMetrics(
            distance_x=0, distance_z=0, num_shortest_x=0, num_shortest_z=0,
            num_faulty_qubits=patch.defects.num_faulty_qubits,
            num_faulty_links=patch.defects.num_faulty_links,
            num_disabled_data=len(patch.disabled_data),
            disabled_data_fraction=patch.disabled_data_fraction(),
            largest_cluster_diameter=0.0,
            valid=False,
        )
    graph_x = build_chain_graph(patch, "X")
    graph_z = build_chain_graph(patch, "Z")
    dx = graph_x.shortest_path_length() or 0
    dz = graph_z.shortest_path_length() or 0
    disabled_sites = set(patch.disabled_data) | set(patch.disabled_ancillas)
    clusters = defect_clusters(disabled_sites)
    largest = max((cluster_diameter(c) for c in clusters), default=0.0)
    return PatchMetrics(
        distance_x=int(dx),
        distance_z=int(dz),
        num_shortest_x=graph_x.shortest_path_count(),
        num_shortest_z=graph_z.shortest_path_count(),
        num_faulty_qubits=patch.defects.num_faulty_qubits,
        num_faulty_links=patch.defects.num_faulty_links,
        num_disabled_data=len(patch.disabled_data),
        disabled_data_fraction=patch.disabled_data_fraction(),
        largest_cluster_diameter=float(largest),
        valid=bool(dx > 0 and dz > 0),
    )
