"""Adapting the rotated surface code to an arbitrary set of fabrication defects.

This module implements the paper's core contribution (Sec. 3, Fig. 3): an
automated procedure that takes a chiplet layout and a :class:`DefectSet` and
produces an :class:`AdaptedPatch` whose stabilizers avoid every faulty
component, using

* **super-stabilizers** around interior defect clusters - the broken checks
  surrounding a cluster are kept as gauge operators and only their product is
  treated as a reliable stabilizer; and
* **boundary deformations** for defects too close to a patch boundary to be
  enclosed by gauge operators - the affected region is excised and the
  surrounding reduced checks become the new (deformed) boundary stabilizers.

Algorithm (re-derivation of the paper's prose; see DESIGN.md Sec. 5)
---------------------------------------------------------------------
The procedure is a fixpoint over three monotone state components: the set of
*excised* data qubits, the set of *excised* ancillas, and the set of defect
clusters designated for *boundary handling*.

1. Faulty links disable their data endpoint unless the measurement-qubit
   endpoint is already disabled (Sec. 4 of the paper).
2. Faulty measurement qubits that are *not* designated for boundary handling
   disable all of their neighbouring data qubits (Fig. 1b).
3. Structural rules run to fixpoint:
   * an ancilla left with at most one enabled data qubit is excised;
   * an ancilla left with exactly two enabled data qubits lying on the same
     diagonal is excised;
   * a data qubit left with no enabled X check or no enabled Z check is
     excised.
4. Defect clusters are the connected components (Chebyshev distance <= 2) of
   the disabled qubits.  A cluster is *interior* (super-stabilizer handling)
   when every disabled data qubit in it appears in an even number of enabled
   checks of each type - the condition for the gauge products to equal true
   stabilizers.  Otherwise the cluster is designated for boundary handling,
   its measurement qubits stop force-disabling their neighbours, and the
   excision rules of step 3 plus a commutation-repair rule take over:
5. Commutation repair: if two enabled checks that will be measured as regular
   stabilizers share an odd number of enabled data qubits, one of them is
   excised - the one whose type differs from the nearest patch boundary's
   host type (this reproduces the paper's "all stabilizers on the boundary
   must be of the same colour" rule), with ties broken towards the smaller
   check.
6. Steps 2-5 repeat until nothing changes.  Broken checks of interior
   clusters become gauge operators grouped into super-stabilizers; broken
   checks of boundary clusters are kept as deformed regular stabilizers.

The measurement schedule repetition count of each cluster equals the
cluster's diameter in data-qubit units (minimum 1), following Sec. 3.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..noise.fabrication import DefectSet
from ..surface_code.layout import Check, Coord, RotatedSurfaceCodeLayout
from .patch import AdaptedPatch, GaugeOperator, SuperStabilizer

__all__ = ["adapt_patch", "cluster_diameter", "defect_clusters"]

_MAX_ITERATIONS = 400
#: largest chiplet width for which the encoded-qubit-count check runs inline.
_ENCODING_CHECK_MAX_SIZE = 23


# ----------------------------------------------------------------------
# Geometry helpers
# ----------------------------------------------------------------------
def _chebyshev(a: Coord, b: Coord) -> int:
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def defect_clusters(sites: Iterable[Coord], max_distance: int = 2) -> List[Set[Coord]]:
    """Connected components of a set of lattice sites.

    Two sites belong to the same cluster when their Chebyshev distance is at
    most ``max_distance`` (2 = neighbouring plaquette / shared plaquette).
    """
    remaining = set(sites)
    clusters: List[Set[Coord]] = []
    while remaining:
        seed = remaining.pop()
        cluster = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            near = {s for s in remaining if _chebyshev(s, current) <= max_distance}
            remaining -= near
            cluster |= near
            frontier.extend(near)
        clusters.append(cluster)
    return clusters


def cluster_diameter(cluster: Iterable[Coord]) -> float:
    """Diameter of a defect cluster in data-qubit units (lattice distance / 2)."""
    cluster = list(cluster)
    if len(cluster) <= 1:
        return 0.0
    return max(_chebyshev(a, b) for a, b in itertools.combinations(cluster, 2)) / 2.0


def _is_diagonal_pair(a: Coord, b: Coord) -> bool:
    """True when two data qubits sit on the same diagonal of one plaquette."""
    return abs(a[0] - b[0]) == 2 and abs(a[1] - b[1]) == 2


# ----------------------------------------------------------------------
# Adaptation state
# ----------------------------------------------------------------------
class _AdaptationState:
    """Mutable working state of the adaptation fixpoint."""

    def __init__(self, layout: RotatedSurfaceCodeLayout, defects: DefectSet):
        self.layout = layout
        self.defects = defects
        self.faulty_data: Set[Coord] = set()
        self.faulty_anc: Set[Coord] = set()
        for q in defects.faulty_qubits:
            if layout.is_data(q):
                self.faulty_data.add(q)
            elif layout.is_ancilla(q):
                self.faulty_anc.add(q)
            # Coordinates not present on the chiplet are silently ignored.
        # Faulty link rule: disable the data endpoint unless the measurement
        # qubit on the other end is already faulty.
        for link in defects.faulty_links:
            data, anc = self._orient_link(link)
            if data is None:
                continue
            if anc in self.faulty_anc or data in self.faulty_data:
                continue
            self.faulty_data.add(data)

        self.excised_data: Set[Coord] = set()
        self.excised_anc: Set[Coord] = set()
        #: faulty measurement qubits designated for boundary handling (their
        #: neighbouring data are *not* force-disabled).
        self.boundary_mode_anc: Set[Coord] = set()
        #: disabled sites permanently designated for boundary handling.
        self.boundary_sites: Set[Coord] = set()

    # ------------------------------------------------------------------
    def _orient_link(self, link: Tuple[Coord, Coord]) -> Tuple[Optional[Coord], Optional[Coord]]:
        a, b = link
        if self.layout.is_data(a) and self.layout.is_ancilla(b):
            return a, b
        if self.layout.is_data(b) and self.layout.is_ancilla(a):
            return b, a
        return None, None

    # ------------------------------------------------------------------
    @property
    def disabled_anc(self) -> Set[Coord]:
        return self.faulty_anc | self.excised_anc

    def disabled_data(self) -> Set[Coord]:
        """Currently disabled data: faulty, excised, or adjacent to an
        interior-handled faulty measurement qubit."""
        out = set(self.faulty_data) | self.excised_data
        for anc in self.faulty_anc - self.boundary_mode_anc:
            check = self.layout.check_by_ancilla.get(anc)
            if check is not None:
                out |= set(check.data)
        return out

    def active_support(self, check: Check, disabled_data: Set[Coord]) -> Tuple[Coord, ...]:
        return tuple(d for d in check.data if d not in disabled_data)

    def enabled_checks(self) -> List[Check]:
        return [c for c in self.layout.checks if c.ancilla not in self.disabled_anc]


# ----------------------------------------------------------------------
# Fixpoint pieces
# ----------------------------------------------------------------------
def _structural_fixpoint(state: _AdaptationState) -> bool:
    """Apply the ancilla/data excision rules until stable.  Returns change flag."""
    layout = state.layout
    changed_any = False
    for _ in range(_MAX_ITERATIONS):
        changed = False
        disabled_data = state.disabled_data()
        disabled_anc = state.disabled_anc
        # Rule A: ancillas with too little usable support.
        for check in layout.checks:
            if check.ancilla in disabled_anc:
                continue
            support = state.active_support(check, disabled_data)
            if len(support) <= 1:
                state.excised_anc.add(check.ancilla)
                changed = True
            elif len(support) == 2 and _is_diagonal_pair(*support):
                state.excised_anc.add(check.ancilla)
                changed = True
        # Rule B: data qubits with no enabled check of some type.
        disabled_anc = state.disabled_anc
        for data in layout.data_qubits:
            if data in disabled_data:
                continue
            kinds = {
                c.kind
                for c in layout.checks_containing[data]
                if c.ancilla not in disabled_anc
            }
            if "X" not in kinds or "Z" not in kinds:
                state.excised_data.add(data)
                changed = True
        if not changed:
            break
        changed_any = True
    return changed_any


def _broken_checks(state: _AdaptationState, disabled_data: Set[Coord]) -> List[Check]:
    return [
        c for c in state.enabled_checks()
        if any(d in disabled_data for d in c.data)
    ]


def _assign_clusters(
    state: _AdaptationState, disabled_data: Set[Coord]
) -> Tuple[List[Set[Coord]], Dict[int, List[Check]]]:
    """Cluster the disabled sites and attach each broken check to its cluster.

    Clusters that share a broken check are merged so that the gauge-group
    structure stays consistent.
    """
    disabled_sites = set(disabled_data) | state.disabled_anc
    clusters = defect_clusters(disabled_sites)
    site_to_cluster = {s: i for i, cl in enumerate(clusters) for s in cl}

    # Union-find over clusters to merge those bridged by one broken check.
    parent = list(range(len(clusters)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    broken = _broken_checks(state, disabled_data)
    check_clusters: Dict[Coord, Set[int]] = {}
    for check in broken:
        touched = {
            site_to_cluster[d] for d in check.data if d in site_to_cluster
        }
        check_clusters[check.ancilla] = touched
        touched = list(touched)
        for other in touched[1:]:
            union(touched[0], other)

    merged: Dict[int, Set[Coord]] = {}
    for i, cl in enumerate(clusters):
        merged.setdefault(find(i), set()).update(cl)
    # Re-index merged clusters densely.
    roots = sorted(merged)
    root_index = {root: k for k, root in enumerate(roots)}
    final_clusters = [merged[root] for root in roots]

    checks_by_cluster: Dict[int, List[Check]] = {k: [] for k in range(len(final_clusters))}
    for check in broken:
        touched = check_clusters[check.ancilla]
        if not touched:
            continue
        root = root_index[find(next(iter(touched)))]
        checks_by_cluster[root].append(check)
    return final_clusters, checks_by_cluster


def _cluster_violations(
    state: _AdaptationState,
    cluster_checks: Sequence[Check],
    disabled_data: Set[Coord],
) -> Set[Coord]:
    """Data qubits preventing a cluster from being handled by super-stabilizers.

    The operational requirement is that the product of the cluster's type-T
    gauge operators (the reliable super-stabilizer) commutes with every gauge
    operator of the opposite type in the same cluster.  When this holds the
    products behave as true stabilizers: they commute with everything that is
    ever measured, so their detectors are deterministic.

    Returns the set of data qubits in the offending odd overlaps (empty when
    the cluster is a valid super-stabilizer cluster).  Interior clusters are
    repaired by excising those qubits and re-testing - this grows a "shell"
    around irregularly shaped defect clusters, as in Strikis et al.; clusters
    too close to a patch boundary are handled by boundary deformation instead.
    """
    supports: Dict[str, List[Set[Coord]]] = {"X": [], "Z": []}
    for check in cluster_checks:
        supports[check.kind].append(set(state.active_support(check, disabled_data)))

    violations: Set[Coord] = set()
    for kind, other in (("X", "Z"), ("Z", "X")):
        product: Set[Coord] = set()
        for s in supports[kind]:
            product ^= s
        if not product and supports[kind]:
            # The gauges of this type multiply to the identity: excising their
            # remaining support forces the region to be re-handled.
            for s in supports[kind]:
                violations |= s
            continue
        for g in supports[other]:
            overlap = product & g
            if len(overlap) % 2 == 1:
                violations |= overlap
    return violations


def _cluster_is_interior(
    state: _AdaptationState,
    cluster_checks: Sequence[Check],
    disabled_data: Set[Coord],
) -> bool:
    """True when the cluster's gauge products already commute with its gauges."""
    return not _cluster_violations(state, cluster_checks, disabled_data)


def _touches_boundary_band(layout: RotatedSurfaceCodeLayout, cluster: Set[Coord]) -> bool:
    """True when a defect cluster lies within one plaquette of the patch edge."""
    l = layout.size
    for x, y in cluster:
        if x <= 2 or y <= 2 or x >= 2 * l - 2 or y >= 2 * l - 2:
            return True
    return False


def _nearest_boundary_kind(layout: RotatedSurfaceCodeLayout, coord: Coord) -> str:
    """Host type of the patch boundary nearest to a coordinate."""
    l = layout.size
    x, y = coord
    dist_y = min(y, 2 * l - y)          # distance to an X-hosting boundary
    dist_x = min(x, 2 * l - x)          # distance to a Z-hosting boundary
    if dist_y <= dist_x:
        return layout.boundary_sides()["top"]
    return layout.boundary_sides()["left"]


def _commutation_repair(
    state: _AdaptationState,
    regular_checks: List[Check],
    gauge_checks: List[Check],
    disabled_data: Set[Coord],
) -> Tuple[bool, Set[Coord]]:
    """Excise checks until all regular stabilizers commute.

    Returns ``(changed, clusters_to_demote)`` where the second element lists
    gauge ancillas whose cluster must be demoted to boundary handling because
    a gauge anticommutes with a regular stabilizer.
    """
    supports = {
        c.ancilla: set(state.active_support(c, disabled_data)) for c in regular_checks
    }
    gauge_supports = {
        c.ancilla: set(state.active_support(c, disabled_data)) for c in gauge_checks
    }
    changed = False
    demote: Set[Coord] = set()

    regular = [c for c in regular_checks]
    for i in range(len(regular)):
        a = regular[i]
        if a.ancilla in state.excised_anc:
            continue
        for j in range(i + 1, len(regular)):
            b = regular[j]
            if b.ancilla in state.excised_anc or a.kind == b.kind:
                continue
            overlap = len(supports[a.ancilla] & supports[b.ancilla])
            if overlap % 2 == 0:
                continue
            # Excise the check whose type differs from the nearest boundary's
            # host type; break ties towards the more damaged (smaller) check.
            boundary_kind = _nearest_boundary_kind(state.layout, a.ancilla)
            candidates = sorted(
                (a, b),
                key=lambda c: (c.kind == boundary_kind, len(supports[c.ancilla])),
            )
            victim = candidates[0]
            state.excised_anc.add(victim.ancilla)
            changed = True

    # Regular stabilizers must also commute with every gauge operator.
    for check in regular:
        if check.ancilla in state.excised_anc:
            continue
        for g in gauge_checks:
            if g.kind == check.kind:
                continue
            overlap = len(supports[check.ancilla] & gauge_supports[g.ancilla])
            if overlap % 2 == 1:
                demote.add(g.ancilla)
    return changed, demote


# ----------------------------------------------------------------------
# Main entry point
# ----------------------------------------------------------------------
def adapt_patch(layout: RotatedSurfaceCodeLayout, defects: DefectSet) -> AdaptedPatch:
    """Adapt the rotated surface code on ``layout`` to the given defects.

    Always returns an :class:`AdaptedPatch`; when the procedure cannot produce
    a sound single-logical-qubit code (pathological defect configurations),
    the returned patch has ``valid=False`` and a ``failure_reason`` - callers
    such as the yield model simply count it as an unusable chiplet.
    """
    state = _AdaptationState(layout, defects)

    clusters: List[Set[Coord]] = []
    checks_by_cluster: Dict[int, List[Check]] = {}
    interior: Dict[int, bool] = {}

    converged = False
    for _ in range(_MAX_ITERATIONS):
        changed = _structural_fixpoint(state)
        disabled_data = state.disabled_data()
        clusters, checks_by_cluster = _assign_clusters(state, disabled_data)

        interior = {}
        newly_demoted = False
        grew = False
        for idx, cluster in enumerate(clusters):
            if cluster & state.boundary_sites:
                interior[idx] = False
                continue
            violations = _cluster_violations(
                state, checks_by_cluster.get(idx, []), disabled_data
            )
            interior[idx] = not violations
            if interior[idx]:
                continue
            if _touches_boundary_band(layout, cluster):
                # Near-boundary defect: handle by deforming the boundary.
                state.boundary_sites |= cluster
                faulty_here = cluster & state.faulty_anc
                state.boundary_mode_anc |= faulty_here
                newly_demoted = True
            else:
                # Interior defect with an irregular shape: grow the disabled
                # region (a "shell") until its gauge products are consistent.
                state.excised_data |= {q for q in violations if layout.is_data(q)}
                grew = True
        if grew:
            continue

        if newly_demoted:
            # A cluster switched to boundary handling this iteration; restart
            # the fixpoint so excisions are recomputed from the fresh state
            # (its faulty measurement qubits no longer force-disable their
            # neighbours) before any commutation repair runs.
            continue

        # Split broken checks into gauge candidates (interior clusters) and
        # deformed regular stabilizers (boundary clusters).
        gauge_checks: List[Check] = []
        deformed_regular: List[Check] = []
        for idx, checks in checks_by_cluster.items():
            target = gauge_checks if interior.get(idx, False) else deformed_regular
            target.extend(checks)

        intact = [
            c for c in state.enabled_checks()
            if not any(d in disabled_data for d in c.data)
        ]
        repair_changed, demote = _commutation_repair(
            state, intact + deformed_regular, gauge_checks, disabled_data
        )
        if demote:
            # A gauge anticommutes with a regular stabilizer: its cluster must
            # be handled by boundary deformation instead.
            for idx, checks in checks_by_cluster.items():
                if any(c.ancilla in demote for c in checks):
                    state.boundary_sites |= clusters[idx]
                    state.boundary_mode_anc |= clusters[idx] & state.faulty_anc
            newly_demoted = True

        if not (changed or repair_changed or newly_demoted):
            converged = True
            break

    disabled_data = state.disabled_data()
    disabled_anc = state.disabled_anc

    # ------------------------------------------------------------------
    # Build the final patch description.
    # ------------------------------------------------------------------
    clusters, checks_by_cluster = _assign_clusters(state, disabled_data)
    stabilizers: List[Check] = []
    super_stabilizers: List[SuperStabilizer] = []
    cluster_repetitions: Dict[int, int] = {}

    intact = [
        c for c in state.enabled_checks()
        if not any(d in disabled_data for d in c.data)
    ]
    stabilizers.extend(intact)

    for idx, cluster in enumerate(clusters):
        checks = checks_by_cluster.get(idx, [])
        is_interior = (
            not (cluster & state.boundary_sites)
            and _cluster_is_interior(state, checks, disabled_data)
        )
        if not is_interior:
            for check in checks:
                support = state.active_support(check, disabled_data)
                stabilizers.append(Check(check.kind, check.ancilla, tuple(support)))
            continue
        by_kind: Dict[str, List[GaugeOperator]] = {"X": [], "Z": []}
        for check in checks:
            support = state.active_support(check, disabled_data)
            by_kind[check.kind].append(
                GaugeOperator(check.kind, check.ancilla, tuple(support))
            )
        cluster_repetitions[idx] = max(1, int(round(cluster_diameter(cluster))))
        for kind in ("X", "Z"):
            gauges = by_kind[kind]
            if not gauges:
                continue
            if len(gauges) == 1:
                # A single unbroken-product gauge is just a deformed stabilizer.
                g = gauges[0]
                stabilizers.append(Check(g.kind, g.ancilla, g.data))
                continue
            super_stabilizers.append(
                SuperStabilizer(kind=kind, cluster_id=idx, gauges=tuple(gauges))
            )

    patch = AdaptedPatch(
        layout=layout,
        defects=defects,
        disabled_data=frozenset(disabled_data),
        disabled_ancillas=frozenset(disabled_anc),
        stabilizers=tuple(stabilizers),
        super_stabilizers=tuple(super_stabilizers),
        cluster_repetitions=cluster_repetitions,
        valid=converged,
        failure_reason=None if converged else "adaptation did not converge",
    )
    if not converged:
        return patch

    # Cheap sanity checks (full invariant checking is done in the test suite;
    # here we only guard against situations that break downstream consumers).
    if len(patch.active_data) == 0:
        return _mark_invalid(patch, "no data qubits remain")
    return patch


def _mark_invalid(patch: AdaptedPatch, reason: str) -> AdaptedPatch:
    patch.valid = False
    patch.failure_reason = reason
    return patch
