"""Core contribution: defect adaptation, figures of merit, post-selection, codesign."""

from .adaptation import adapt_patch, cluster_diameter, defect_clusters
from .metrics import (
    ChainGraph,
    PatchMetrics,
    build_chain_graph,
    code_distance,
    evaluate_patch,
    num_shortest_logicals,
)
from .patch import AdaptedPatch, GaugeOperator, StabilizerUnit, SuperStabilizer
from .postselection import (
    DefectFreeCriterion,
    DistanceCriterion,
    PostSelectionCriterion,
    rank_by_chosen_indicators,
    rank_by_faulty_count,
    reference_metrics,
    select_fraction,
)

__all__ = [
    "DefectFreeCriterion",
    "DistanceCriterion",
    "PostSelectionCriterion",
    "rank_by_chosen_indicators",
    "rank_by_faulty_count",
    "reference_metrics",
    "select_fraction",
    "adapt_patch",
    "cluster_diameter",
    "defect_clusters",
    "ChainGraph",
    "PatchMetrics",
    "build_chain_graph",
    "code_distance",
    "evaluate_patch",
    "num_shortest_logicals",
    "AdaptedPatch",
    "GaugeOperator",
    "StabilizerUnit",
    "SuperStabilizer",
]
