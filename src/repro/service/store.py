"""SQLite-backed durable job store with leases, heartbeats and coalescing.

One database file (WAL mode) is shared by the API front end and every worker
process on the host — SQLite's locking is the only coordination primitive
the service needs, and WAL keeps readers (status polls, event long-polls)
from blocking writers (claims, heartbeats, finishes).

Crash-safety model
------------------
Every state transition is a single transaction guarded by a *state + owner*
predicate, so the store can never observe a half-transition no matter where
a process dies:

* ``submit`` inserts the job — and resolves request coalescing — in one
  ``BEGIN IMMEDIATE`` transaction, so two racing identical submissions can
  never both become primaries.
* ``claim`` is an atomic compare-and-swap: ``queued`` (or ``running`` with
  an **expired lease**) → ``running`` with a fresh lease and this worker as
  owner.  A worker killed mid-job simply stops heartbeating; when the lease
  runs out the job becomes claimable again and a surviving worker re-runs it
  from scratch — bit-identical, because the spec (not the worker) determines
  every RNG stream.
* ``record_progress`` (the wave heartbeat) and ``finish``/``fail`` only
  write while the caller still owns a ``running`` job, so a worker that lost
  its lease — or whose job was cancelled — is told so and backs off instead
  of interleaving stale writes with the new owner's.

States: ``queued → running → done | failed | cancelled`` (re-dispatch takes
``running → running`` with a new owner).  A *follower* — a job coalesced
into an identical in-flight primary — rests in ``queued`` with
``coalesced_into`` set; it is never claimed, and completes when its primary
does (:mod:`repro.service.coalesce`).
"""

from __future__ import annotations

import json
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

from . import coalesce

__all__ = ["Job", "JobStore", "JOB_STATES", "LIVE_STATES"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: States in which a job may still produce (or be waiting for) a result.
LIVE_STATES = ("queued", "running")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id             TEXT PRIMARY KEY,
    kind           TEXT NOT NULL,
    spec           TEXT NOT NULL,
    content_key    TEXT,
    state          TEXT NOT NULL DEFAULT 'queued',
    submitted_at   REAL NOT NULL,
    started_at     REAL,
    finished_at    REAL,
    worker_id      TEXT,
    lease_until    REAL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    coalesced_into TEXT,
    partial        TEXT,
    result         TEXT,
    error          TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state);
CREATE INDEX IF NOT EXISTS jobs_content_key ON jobs (content_key);
CREATE TABLE IF NOT EXISTS events (
    job_id     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    created_at REAL NOT NULL,
    body       TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""

_JOB_COLUMNS = ("id", "kind", "spec", "content_key", "state", "submitted_at",
                "started_at", "finished_at", "worker_id", "lease_until",
                "attempts", "coalesced_into", "partial", "result", "error")


@dataclass(frozen=True)
class Job:
    """One row of the job table, with JSON columns decoded."""

    id: str
    kind: str
    spec: dict
    content_key: Optional[str]
    state: str
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    worker_id: Optional[str]
    lease_until: Optional[float]
    attempts: int
    coalesced_into: Optional[str]
    partial: Optional[dict]
    result: Optional[dict]
    error: Optional[str]

    @property
    def is_terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def summary(self) -> dict:
        """The JSON shape the API lists jobs with (no spec/result bodies)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "coalesced_into": self.coalesced_into,
        }

    def detail(self) -> dict:
        """The JSON shape of ``GET /jobs/<id>`` (everything but raw SQL)."""
        out = self.summary()
        out.update({
            "spec": self.spec,
            "content_key": self.content_key,
            "started_at": self.started_at,
            "worker_id": self.worker_id,
            "lease_until": self.lease_until,
            "partial": self.partial,
            "result": self.result,
            "error": self.error,
        })
        return out


def _row_to_job(row) -> Job:
    data = dict(zip(_JOB_COLUMNS, row))
    data["spec"] = json.loads(data["spec"])
    for field in ("partial", "result"):
        if data[field] is not None:
            data[field] = json.loads(data[field])
    return Job(**data)


class JobStore:
    """Durable job queue over one SQLite file (see module docstring)."""

    def __init__(self, path, *, now=time.time):
        self.path = str(path)
        self._now = now
        parent = Path(self.path).parent
        if str(parent) not in ("", "."):
            parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """A fresh connection per operation: thread- and process-safe.

        WAL journaling plus a generous busy timeout lets API threads and
        worker processes hammer the same file; ``isolation_level=None``
        gives explicit transaction control (``BEGIN IMMEDIATE`` where a
        read-then-write must be atomic).
        """
        conn = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            yield conn
        finally:
            conn.close()

    @staticmethod
    def _select_job(conn, job_id: str) -> Optional[Job]:
        row = conn.execute(
            f"SELECT {', '.join(_JOB_COLUMNS)} FROM jobs WHERE id = ?",
            (job_id,)).fetchone()
        return None if row is None else _row_to_job(row)

    # ------------------------------------------------------------------
    # Submission (with in-flight coalescing)
    # ------------------------------------------------------------------
    def submit(self, kind: str, spec: dict,
               content_key: Optional[str]) -> Job:
        """Insert a job; coalesce onto a live identical primary if one exists.

        The primary lookup and the insert share one write transaction, so
        two racing identical submissions serialize: the first becomes the
        primary, the second its follower — never two executions.
        """
        job_id = uuid.uuid4().hex[:16]
        now = self._now()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                primary = None
                if content_key is not None:
                    primary = coalesce.find_live_primary(conn, content_key)
                conn.execute(
                    "INSERT INTO jobs (id, kind, spec, content_key, state,"
                    " submitted_at, coalesced_into)"
                    " VALUES (?, ?, ?, ?, 'queued', ?, ?)",
                    (job_id, kind, json.dumps(spec, sort_keys=True),
                     content_key, now, primary))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return self._select_job(conn, job_id)

    # ------------------------------------------------------------------
    # Claiming (lease CAS) — the worker side
    # ------------------------------------------------------------------
    def runnable_jobs(self) -> List[Job]:
        """Primaries a worker could claim right now: queued, or running with
        an expired lease (their worker is presumed dead)."""
        now = self._now()
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT {', '.join(_JOB_COLUMNS)} FROM jobs"
                " WHERE coalesced_into IS NULL AND"
                " (state = 'queued' OR (state = 'running' AND lease_until < ?))"
                " ORDER BY submitted_at, id",
                (now,)).fetchall()
        return [_row_to_job(r) for r in rows]

    def try_claim(self, job_id: str, worker_id: str,
                  lease_seconds: float) -> Optional[Job]:
        """Atomically claim one runnable job; None if someone else won.

        The compare-and-swap re-checks the runnable predicate inside the
        write, so ranking (which happens outside any lock, possibly on a
        stale snapshot) can never double-dispatch a job: at most one
        claimant's UPDATE matches.
        """
        now = self._now()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                cur = conn.execute(
                    "UPDATE jobs SET state = 'running', worker_id = ?,"
                    " lease_until = ?, attempts = attempts + 1,"
                    " started_at = COALESCE(started_at, ?), partial = NULL"
                    " WHERE id = ? AND coalesced_into IS NULL AND"
                    " (state = 'queued' OR"
                    "  (state = 'running' AND lease_until < ?))",
                    (worker_id, now + lease_seconds, now, job_id, now))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            if cur.rowcount != 1:
                return None
            return self._select_job(conn, job_id)

    # ------------------------------------------------------------------
    # Progress + ownership-guarded completion
    # ------------------------------------------------------------------
    def record_progress(self, job_id: str, worker_id: str,
                        lease_seconds: float, *,
                        partial: Optional[dict] = None,
                        event: Optional[dict] = None) -> str:
        """Heartbeat one wave of progress; returns ``ok|cancelled|lost``.

        Extends the lease, updates the job's latest ``partial`` snapshot and
        appends a streamable event — but only while the caller still owns
        the ``running`` job.  ``cancelled`` tells the worker to abort the
        execution; ``lost`` that another worker owns the job now (this
        worker's remaining work is wasted but harmless — results are
        deterministic and completion is ownership-guarded).
        """
        now = self._now()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT state, worker_id FROM jobs WHERE id = ?",
                    (job_id,)).fetchone()
                if row is None:
                    status = "lost"
                elif row[0] == "cancelled":
                    status = "cancelled"
                elif row[0] != "running" or row[1] != worker_id:
                    status = "lost"
                else:
                    status = "ok"
                    conn.execute(
                        "UPDATE jobs SET lease_until = ?,"
                        " partial = COALESCE(?, partial) WHERE id = ?",
                        (now + lease_seconds,
                         None if partial is None
                         else json.dumps(partial, sort_keys=True),
                         job_id))
                    if event is not None:
                        self._append_event(conn, job_id, now, event)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        return status

    @staticmethod
    def _append_event(conn, job_id: str, now: float, body: dict) -> None:
        conn.execute(
            "INSERT INTO events (job_id, seq, created_at, body)"
            " VALUES (?, (SELECT COALESCE(MAX(seq), -1) + 1 FROM events"
            "             WHERE job_id = ?), ?, ?)",
            (job_id, job_id, now, json.dumps(body, sort_keys=True)))

    def finish(self, job_id: str, worker_id: str, result: dict) -> bool:
        """Complete a job we own; propagate the result to coalesced
        followers; False (and no writes) if ownership was lost."""
        return self._complete(job_id, worker_id, "done", result=result)

    def fail(self, job_id: str, worker_id: str, error: str) -> bool:
        """Fail a job we own (followers fail with it — the execution is
        deterministic, so they would only fail identically)."""
        return self._complete(job_id, worker_id, "failed", error=error)

    def _complete(self, job_id: str, worker_id: str, state: str, *,
                  result: Optional[dict] = None,
                  error: Optional[str] = None) -> bool:
        now = self._now()
        result_json = None if result is None else json.dumps(result,
                                                             sort_keys=True)
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                cur = conn.execute(
                    "UPDATE jobs SET state = ?, result = ?, error = ?,"
                    " finished_at = ?, lease_until = NULL"
                    " WHERE id = ? AND state = 'running' AND worker_id = ?",
                    (state, result_json, error, now, job_id, worker_id))
                owned = cur.rowcount == 1
                if owned:
                    self._append_event(conn, job_id, now,
                                       {"type": state, "job": job_id})
                    coalesce.complete_followers(conn, job_id, state,
                                                result_json, error, now)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        return owned

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job; returns its resulting state (None if unknown).

        Terminal jobs are left alone.  Cancelling a *primary* with live
        followers promotes the oldest follower to primary (the work is
        still wanted — just not by this submitter); a running primary's
        worker learns of the cancellation at its next wave heartbeat and
        aborts.
        """
        now = self._now()
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                job = self._select_job(conn, job_id)
                if job is None or job.is_terminal:
                    conn.execute("COMMIT")
                    return None if job is None else job.state
                conn.execute(
                    "UPDATE jobs SET state = 'cancelled', finished_at = ?,"
                    " lease_until = NULL WHERE id = ?", (now, job_id))
                if job.coalesced_into is None:
                    # Followers have no event stream of their own (they read
                    # their primary's), so only primaries log the event.
                    self._append_event(conn, job_id, now,
                                       {"type": "cancelled", "job": job_id})
                coalesce.promote_followers(conn, job_id)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        return "cancelled"

    # ------------------------------------------------------------------
    # Reads (the API side)
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._connect() as conn:
            return self._select_job(conn, job_id)

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 200) -> List[Job]:
        query = (f"SELECT {', '.join(_JOB_COLUMNS)} FROM jobs"
                 " {} ORDER BY submitted_at DESC, id LIMIT ?")
        with self._connect() as conn:
            if state is None:
                rows = conn.execute(query.format(""), (limit,)).fetchall()
            else:
                rows = conn.execute(query.format("WHERE state = ?"),
                                    (state, limit)).fetchall()
        return [_row_to_job(r) for r in rows]

    def events(self, job_id: str, since: int = -1) -> List[dict]:
        """Events with ``seq > since`` — reading a follower streams its
        *primary's* events (they share one execution, hence one stream)."""
        with self._connect() as conn:
            job = self._select_job(conn, job_id)
            if job is None:
                return []
            effective = job.coalesced_into or job_id
            rows = conn.execute(
                "SELECT seq, created_at, body FROM events"
                " WHERE job_id = ? AND seq > ? ORDER BY seq",
                (effective, since)).fetchall()
        return [{"seq": seq, "time": created, **json.loads(body)}
                for seq, created, body in rows]

    def counts(self) -> dict:
        """Jobs per state (the ``GET /stats`` body)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state").fetchall()
        out = {state: 0 for state in JOB_STATES}
        out.update({state: n for state, n in rows})
        return out
