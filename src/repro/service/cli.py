"""``python -m repro.service.cli`` — thin HTTP client for the service API.

Stdlib only (:mod:`urllib.request`).  The server URL comes from
``--url`` or ``REPRO_SERVICE_URL`` (default ``http://127.0.0.1:7940``).

Commands::

    submit [--file spec.json]   submit a job spec (default: read stdin);
                                prints the submission response
    status <id>                 print the job's full detail JSON
    watch  <id>                 stream events (one JSON line each) until
                                the job is terminal; print the final detail
    cancel <id>                 cancel the job
    list   [--state S]          list job summaries
    stats                       jobs per state

``watch`` exits 0 on ``done`` and 1 on ``failed``/``cancelled``, so shell
scripts can gate on job success.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Optional

from .config import service_url

__all__ = ["main", "ServiceClient"]


class ServiceClient:
    """Minimal JSON client for one service API base URL."""

    def __init__(self, base_url: Optional[str] = None, timeout: float = 60.0):
        self.base_url = (base_url or service_url()).rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str, body: Optional[dict] = None):
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(self.base_url + path, data=data,
                                     method=method)
        if data is not None:
            req.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            # API errors are JSON bodies with an "error" key; surface them
            # as ordinary failures rather than tracebacks.
            try:
                detail = json.loads(exc.read())["error"]
            except Exception:
                detail = str(exc)
            raise SystemExit(f"error: {detail} ({exc.code})")

    # Convenience wrappers -------------------------------------------------
    def submit(self, spec: dict) -> dict:
        return self.request("POST", "/jobs", spec)

    def status(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, since: int = -1, wait: float = 0.0) -> dict:
        return self.request(
            "GET", f"/jobs/{job_id}/events?since={since}&wait={wait}")

    def cancel(self, job_id: str) -> dict:
        return self.request("DELETE", f"/jobs/{job_id}")

    def watch(self, job_id: str, *, wait: float = 10.0, emit=None) -> dict:
        """Long-poll events until the job is terminal; returns final detail.

        ``emit`` (default: print) receives each event dict as it arrives.
        """
        emit = emit or (lambda ev: print(json.dumps(ev, sort_keys=True),
                                         flush=True))
        since = -1
        while True:
            page = self.events(job_id, since, wait)
            for event in page["events"]:
                emit(event)
            since = page["next_since"]
            if page["state"] in ("done", "failed", "cancelled"):
                return self.status(job_id)


def _print(body: dict) -> None:
    print(json.dumps(body, indent=2, sort_keys=True))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.cli",
        description="Submit and watch jobs on a repro.service API.",
    )
    parser.add_argument("--url", default=None,
                        help="API base URL (default: REPRO_SERVICE_URL)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="submit a job spec")
    p_submit.add_argument("--file", default="-",
                          help="spec JSON path, - for stdin (default)")
    p_submit.add_argument("--watch", action="store_true",
                          help="watch the job after submitting")

    for name in ("status", "watch", "cancel"):
        p = sub.add_parser(name)
        p.add_argument("id")

    p_list = sub.add_parser("list", help="list job summaries")
    p_list.add_argument("--state", default=None)

    sub.add_parser("stats", help="jobs per state")

    args = parser.parse_args(argv)
    client = ServiceClient(args.url)

    if args.command == "submit":
        if args.file == "-":
            spec = json.load(sys.stdin)
        else:
            with open(args.file) as fh:
                spec = json.load(fh)
        response = client.submit(spec)
        _print(response)
        if args.watch:
            final = client.watch(response["id"])
            _print(final)
            return 0 if final["state"] == "done" else 1
        return 0
    if args.command == "status":
        _print(client.status(args.id))
        return 0
    if args.command == "watch":
        final = client.watch(args.id)
        _print(final)
        return 0 if final["state"] == "done" else 1
    if args.command == "cancel":
        _print(client.cancel(args.id))
        return 0
    if args.command == "list":
        path = "/jobs" if args.state is None else f"/jobs?state={args.state}"
        _print(client.request("GET", path))
        return 0
    _print(client.request("GET", "/stats"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
