"""Estimation-as-a-service: a durable queue + scheduler in front of the engine.

The engine (:mod:`repro.engine`) is a library: you build a frozen task spec,
call :meth:`Engine.run_ler`, and block until the numbers land.  This package
is the subsystem that turns it into a long-running, multi-user service:

* :mod:`~repro.service.store` — a SQLite-backed (WAL) durable job store with
  crash-safe state transitions (``queued → running → done/failed/cancelled``)
  and lease + heartbeat columns, so a killed worker loses nothing;
* :mod:`~repro.service.specs` — job specifications: JSON round-trips of the
  engine's frozen task specs plus shot policy, seed fingerprint and shard
  size — everything that determines a run's bytes;
* :mod:`~repro.service.scheduler` — a priority scheduler ranking runnable
  jobs by estimated cost (:meth:`ShotPolicy.estimated_cost` wave math),
  cache-hit probability (probing the content-addressed
  :class:`~repro.engine.cache.ResultCache`), and submission-age
  anti-starvation;
* :mod:`~repro.service.coalesce` — request coalescing: two queued or
  in-flight jobs with the same content key share one execution and both
  receive the result (the cache already dedups *completed* work; this
  extends dedup to *in-flight* work);
* :mod:`~repro.service.runner` / ``python -m repro.service.worker`` — the
  worker drain loop: claim under lease, execute through the existing
  ``Engine``/backend stack, persist wave-by-wave partial results, finish (or
  lose the lease and let another worker re-run — results are deterministic,
  so double execution is harmless and bit-identical);
* :mod:`~repro.service.api` / ``python -m repro.service.api`` — a
  stdlib-``http.server`` JSON front end (``POST /jobs``, ``GET /jobs/<id>``,
  long-pollable ``GET /jobs/<id>/events``, ``DELETE /jobs/<id>``);
* :mod:`~repro.service.cli` — ``python -m repro.service.cli
  submit|status|watch|cancel``.

The load-bearing invariant, inherited from the engine: a job submitted over
HTTP and drained by any worker on any host produces **bit-identical**
results — and byte-identical cache records — to calling
``Engine.run_ler``/``run_yield`` directly with the same task spec, because
the spec (not the transport) determines every RNG stream.
"""

from .coalesce import content_key
from .runner import JobCancelled, JobLost, ServiceWorker
from .scheduler import JobScheduler, SchedulerConfig
from .specs import normalize_spec, spec_cache_keys, spec_estimated_cost
from .store import Job, JobStore

__all__ = [
    "Job",
    "JobStore",
    "JobScheduler",
    "SchedulerConfig",
    "ServiceWorker",
    "JobCancelled",
    "JobLost",
    "content_key",
    "normalize_spec",
    "spec_cache_keys",
    "spec_estimated_cost",
]
