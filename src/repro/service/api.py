"""The JSON-over-HTTP front end: submit, watch and cancel estimation jobs.

Pure stdlib (:mod:`http.server`) — the service adds no dependencies the
library doesn't have.  The API process only ever touches the job store;
execution happens in separate worker processes
(``python -m repro.service.worker``) sharing the same SQLite file, so a
wedged estimation can never take the front end down with it.

Routes::

    POST   /jobs                  submit (body: a job spec; see specs.py)
    GET    /jobs[?state=...]      list summaries, newest first
    GET    /jobs/<id>             full detail (spec, partial, result, error)
    GET    /jobs/<id>/events      event stream; ?since=<seq> resumes,
                                  ?wait=<seconds> long-polls for the next
    DELETE /jobs/<id>             cancel
    GET    /stats                 jobs per state

Submission responses carry ``coalesced_into`` so clients can tell their
request attached to an identical in-flight job — the id they got is still
theirs to poll, and it completes when the shared execution does.

Long-polling (`GET /jobs/<id>/events?since=N&wait=S`) parks the request
until an event with ``seq > N`` exists, the job reaches a terminal state,
or ``S`` seconds pass — a watcher sees every scheduler wave (failures,
shots, Wilson CI) within one poll interval of it being merged, with no
busy-loop against the API.  Each response includes the job's current
``state`` so watchers know when to stop.
"""

from __future__ import annotations

import argparse
import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .config import service_db_path, service_host_port, service_poll_seconds
from .coalesce import content_key
from .specs import normalize_spec
from .store import JOB_STATES, JobStore

__all__ = ["ServiceAPIServer", "serve", "main"]

#: Ceiling on one long-poll park, so misbehaving clients can't pin an API
#: thread for minutes; watchers simply re-issue with the same ``since``.
MAX_WAIT_SECONDS = 30.0


class _ApiError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the store attached to the server instance."""

    protocol_version = "HTTP/1.1"
    server: "ServiceAPIServer"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # pragma: no cover - debugging aid
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, body: dict) -> None:
        payload = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _ApiError(400, "request body must be a JSON object")
        try:
            body = json.loads(raw)
        except ValueError:
            raise _ApiError(400, "request body is not valid JSON")
        if not isinstance(body, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return body

    def _route(self) -> Tuple[str, dict]:
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    def _dispatch(self, method: str) -> None:
        path, query = self._route()
        try:
            handler = self._resolve(method, path)
            if handler is None:
                raise _ApiError(404, f"no such route: {method} {path}")
            handler(query)
        except _ApiError as exc:
            self._send_json(exc.status, {"error": exc.message})
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _resolve(self, method: str, path: str):
        parts = [p for p in path.split("/") if p]
        if method == "POST" and parts == ["jobs"]:
            return self._post_job
        if method == "GET" and parts == ["jobs"]:
            return self._list_jobs
        if method == "GET" and parts == ["stats"]:
            return self._stats
        if len(parts) == 2 and parts[0] == "jobs":
            job_id = parts[1]
            if method == "GET":
                return lambda q: self._get_job(job_id, q)
            if method == "DELETE":
                return lambda q: self._cancel_job(job_id, q)
        if (len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events"
                and method == "GET"):
            return lambda q: self._get_events(parts[1], q)
        return None

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _post_job(self, query: dict) -> None:
        body = self._read_body()
        try:
            spec = normalize_spec(body)
        except ValueError as exc:
            raise _ApiError(400, str(exc))
        job = self.server.store.submit(spec["kind"], spec, content_key(spec))
        self._send_json(201, {
            "id": job.id,
            "state": job.state,
            "kind": job.kind,
            "content_key": job.content_key,
            "coalesced_into": job.coalesced_into,
        })

    def _list_jobs(self, query: dict) -> None:
        state = query.get("state")
        if state is not None and state not in JOB_STATES:
            raise _ApiError(400, f"unknown state {state!r}")
        try:
            limit = int(query.get("limit", 200))
        except ValueError:
            raise _ApiError(400, "limit must be an integer")
        jobs = self.server.store.list_jobs(state, limit)
        self._send_json(200, {"jobs": [job.summary() for job in jobs]})

    def _get_job(self, job_id: str, query: dict) -> None:
        job = self.server.store.get(job_id)
        if job is None:
            raise _ApiError(404, f"no such job: {job_id}")
        self._send_json(200, job.detail())

    def _get_events(self, job_id: str, query: dict) -> None:
        try:
            since = int(query.get("since", -1))
            wait = min(float(query.get("wait", 0.0)), MAX_WAIT_SECONDS)
        except ValueError:
            raise _ApiError(400, "since must be an integer, wait a number")
        store = self.server.store
        job = store.get(job_id)
        if job is None:
            raise _ApiError(404, f"no such job: {job_id}")
        deadline = time.monotonic() + wait
        while True:
            events = store.events(job_id, since)
            job = store.get(job_id)
            if events or job.is_terminal or time.monotonic() >= deadline:
                break
            time.sleep(self.server.poll_seconds)
        self._send_json(200, {
            "id": job_id,
            "state": job.state,
            "next_since": events[-1]["seq"] if events else since,
            "events": events,
        })

    def _stats(self, query: dict) -> None:
        self._send_json(200, {"states": self.server.store.counts()})

    def _cancel_job(self, job_id: str, query: dict) -> None:
        state = self.server.store.cancel(job_id)
        if state is None:
            raise _ApiError(404, f"no such job: {job_id}")
        self._send_json(200, {"id": job_id, "state": state})


class ServiceAPIServer(ThreadingHTTPServer):
    """An :class:`http.server.ThreadingHTTPServer` bound to one job store.

    Threading matters: long-polling watchers park their handler thread, and
    must not block fresh submissions.  Every handler opens its own SQLite
    connection (see :class:`JobStore`), so concurrent threads are safe.
    """

    daemon_threads = True

    def __init__(self, store: JobStore, host: str, port: int, *,
                 poll_seconds: Optional[float] = None, verbose: bool = False):
        self.store = store
        self.poll_seconds = min(
            service_poll_seconds() if poll_seconds is None else poll_seconds,
            0.5)
        self.verbose = verbose
        super().__init__((host, port), _Handler)


def serve(store: JobStore, host: Optional[str] = None,
          port: Optional[int] = None, **kwargs) -> ServiceAPIServer:
    """Bind (but don't run) an API server; port 0 picks a free port."""
    default_host, default_port = service_host_port()
    return ServiceAPIServer(store,
                            default_host if host is None else host,
                            default_port if port is None else port,
                            **kwargs)


# ----------------------------------------------------------------------
# Entry point (python -m repro.service.api)
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.api",
        description="Serve the repro.service JSON API over HTTP.",
    )
    parser.add_argument("--db", default=None,
                        help="job-store SQLite path (default:"
                             " REPRO_SERVICE_DB or .repro-service.db)")
    parser.add_argument("--host", default=None,
                        help="bind host (default: REPRO_SERVICE_HOST)")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port, 0 = ephemeral (default:"
                             " REPRO_SERVICE_PORT)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)

    store = JobStore(args.db or service_db_path())
    server = serve(store, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    # The one line launchers parse for the bound address (matters with
    # --port 0); flush so pipes see it before the first request.
    print(f"REPRO_SERVICE_LISTENING {host} {port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    main()
