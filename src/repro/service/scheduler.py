"""Cost-aware priority scheduling: which runnable job should a worker take?

Ranking combines three signals, in the spirit of the priority/aging
queue-to-scheduler stage the roadmap points at:

* **Estimated cost** — expected shots from the shot policy's own wave math
  (:meth:`ShotPolicy.estimated_cost`), yield samples in shot-equivalents.
  Cheaper jobs first (shortest-job-first keeps median latency low under
  multi-user load).
* **Cache-hit probability** — each of the job's engine cache keys is probed
  against the content-addressed result cache
  (:meth:`ResultCache.__contains__`); already-computed units cost nothing,
  so a fully warm job ranks (near) first and completes instantly, freeing
  capacity.
* **Submission-age anti-starvation** — effective cost decays with time in
  queue (``cost / (1 + aging_rate * age)``), so a big cold sweep submitted
  early cannot be starved forever by a stream of small fresh jobs: its
  discounted cost eventually undercuts everything.

Scheduling is a *ranking heuristic only*: it decides order, never numbers.
Ties break deterministically by (submission time, id), so a fleet of
workers draining one queue behaves reproducibly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..engine.cache import ResultCache
from .config import service_aging_rate
from .specs import spec_cache_keys, spec_estimated_cost
from .store import Job

__all__ = ["SchedulerConfig", "JobScheduler"]

#: Floor for a fully-cached job's cost: keeps it strictly cheapest without
#: zeroing the aging arithmetic.
_MIN_COST = 1.0


@dataclass(frozen=True)
class SchedulerConfig:
    """Ranking knobs (see module docstring; results are never affected).

    ``aging_rate`` is the per-second discount on effective cost (default
    from ``REPRO_SERVICE_AGING``); ``expected_rate`` is the logical error
    rate assumed when pricing adaptive policies (0 = worst-case budget).
    """

    aging_rate: float = 0.05
    expected_rate: float = 0.0

    @classmethod
    def from_env(cls, env=None) -> "SchedulerConfig":
        return cls(aging_rate=service_aging_rate(env))


class JobScheduler:
    """Ranks runnable jobs for claiming (cost, cache warmth, age)."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 config: Optional[SchedulerConfig] = None):
        self.cache = cache
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------
    def cache_hit_fraction(self, job: Job) -> float:
        """Share of the job's work units already present in the cache."""
        if self.cache is None:
            return 0.0
        keys = spec_cache_keys(job.spec)
        if not keys:
            return 0.0
        hits = sum(1 for key in keys if key is not None and key in self.cache)
        return hits / len(keys)

    def score(self, job: Job, now: float) -> float:
        """Effective cost of a job right now — lower runs sooner."""
        cost = spec_estimated_cost(job.spec, self.config.expected_rate)
        cost = max(cost * (1.0 - self.cache_hit_fraction(job)), _MIN_COST)
        age = max(now - job.submitted_at, 0.0)
        return cost / (1.0 + self.config.aging_rate * age)

    def rank(self, jobs: Sequence[Job], now: float) -> List[Job]:
        """Jobs in claim order: ascending score, ties by (submitted, id).

        A spec that fails to price (e.g. written by a newer schema) sinks
        to the back instead of wedging the queue.
        """
        def key(job: Job):
            try:
                return (0, self.score(job, now), job.submitted_at, job.id)
            except (KeyError, TypeError, ValueError):
                return (1, 0.0, job.submitted_at, job.id)

        return sorted(jobs, key=key)

    def select(self, jobs: Sequence[Job], now: float) -> Optional[Job]:
        """The single best claim candidate (None when nothing is runnable)."""
        ranked = self.rank(jobs, now)
        return ranked[0] if ranked else None
