"""``python -m repro.service.worker`` — drain jobs from the service store.

Thin entry point; the implementation lives in :mod:`repro.service.runner`
(kept separate so library users can embed :class:`ServiceWorker` without
touching argv).
"""

from .runner import main

if __name__ == "__main__":
    main()
