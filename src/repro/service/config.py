"""Service configuration knobs (``REPRO_SERVICE_*`` environment variables).

Every knob goes through the validated readers in :mod:`repro.env`, so a
typo'd value fails with the variable named.  None of these affect the
numbers a job produces — they size leases, polling and addressing only; the
bytes are pinned by the job spec (task payload + policy + seed + shard
size).

=====================  =======================  =================================
Variable               Default                  Meaning
=====================  =======================  =================================
REPRO_SERVICE_DB       ``.repro-service.db``    SQLite job-store path
REPRO_SERVICE_LEASE    ``60``                   worker lease seconds; a job whose
                                                lease expires is re-dispatched
REPRO_SERVICE_HOST     ``127.0.0.1``            API bind interface
REPRO_SERVICE_PORT     ``7940``                 API TCP port (0 = OS-assigned)
REPRO_SERVICE_POLL     ``0.5``                  worker idle poll seconds
REPRO_SERVICE_AGING    ``0.05``                 scheduler aging rate (per second
                                                cost discount; anti-starvation)
REPRO_SERVICE_URL      ``http://127.0.0.1:7940``  base URL the CLI talks to
=====================  =======================  =================================

The lease must comfortably exceed the longest *wave* of any job (the worker
heartbeats at wave boundaries); if a healthy worker does overrun its lease,
the job is merely executed twice — determinism makes the duplicate
bit-identical and the store's ownership guard lets exactly one finish win.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..env import env_float, env_int, env_str

__all__ = [
    "service_db_path",
    "service_lease_seconds",
    "service_host_port",
    "service_poll_seconds",
    "service_aging_rate",
    "service_url",
]

DEFAULT_DB = ".repro-service.db"
DEFAULT_LEASE = 60.0
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7940
DEFAULT_POLL = 0.5
DEFAULT_AGING = 0.05


def service_db_path(env: Optional[Mapping[str, str]] = None) -> str:
    """Job-store path from ``REPRO_SERVICE_DB`` (default ``.repro-service.db``)."""
    return env_str("REPRO_SERVICE_DB", DEFAULT_DB, env=env)


def service_lease_seconds(env: Optional[Mapping[str, str]] = None) -> float:
    """Worker lease duration from ``REPRO_SERVICE_LEASE`` (seconds, > 0)."""
    value = env_float("REPRO_SERVICE_LEASE", DEFAULT_LEASE, env=env)
    if value <= 0:
        raise ValueError(f"REPRO_SERVICE_LEASE must be positive, got {value}")
    return value


def service_host_port(env: Optional[Mapping[str, str]] = None) -> Tuple[str, int]:
    """API bind address from ``REPRO_SERVICE_HOST`` / ``REPRO_SERVICE_PORT``."""
    host = env_str("REPRO_SERVICE_HOST", DEFAULT_HOST, env=env)
    port = env_int("REPRO_SERVICE_PORT", DEFAULT_PORT, minimum=0, env=env)
    if port > 65535:
        raise ValueError(f"REPRO_SERVICE_PORT out of range: {port}")
    return host, port


def service_poll_seconds(env: Optional[Mapping[str, str]] = None) -> float:
    """Worker idle-poll interval from ``REPRO_SERVICE_POLL`` (seconds, > 0)."""
    value = env_float("REPRO_SERVICE_POLL", DEFAULT_POLL, env=env)
    if value <= 0:
        raise ValueError(f"REPRO_SERVICE_POLL must be positive, got {value}")
    return value


def service_aging_rate(env: Optional[Mapping[str, str]] = None) -> float:
    """Scheduler anti-starvation rate from ``REPRO_SERVICE_AGING`` (>= 0)."""
    return env_float("REPRO_SERVICE_AGING", DEFAULT_AGING, minimum=0.0, env=env)


def service_url(env: Optional[Mapping[str, str]] = None) -> str:
    """Base URL the CLI targets, from ``REPRO_SERVICE_URL``."""
    raw = env_str("REPRO_SERVICE_URL", env=env)
    if raw:
        return raw.rstrip("/")
    return f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
