"""Request coalescing: identical in-flight jobs share one execution.

The content-addressed result cache already dedups *completed* work — a
second identical request after the first finishes is a cache hit.  This
module closes the remaining window: a request identical to one that is
**queued or running right now** attaches to it as a *follower* instead of
executing again.  Exactly one execution happens; every attached job receives
the result (and, through the shared event stream, the same wave-by-wave
partials).

Identity is the job's *content key*: a hash over the engine cache keys its
execution will write (:func:`repro.service.specs.spec_cache_keys`) — i.e.
over task content hashes, seed fingerprints, shot policy and shard size.
Two jobs with the same content key are guaranteed bit-identical outcomes,
which is the only thing that makes handing one job's result to the other
sound.  Unseeded jobs have no content key and never coalesce.

The helpers here operate on an **open connection inside the caller's
transaction** (see :class:`~repro.service.store.JobStore`): coalescing
decisions must be atomic with the insert/completion they belong to, or two
racing submissions could both become primaries.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..engine.tasks import canonical_json
from .specs import spec_cache_keys

__all__ = ["content_key", "find_live_primary", "complete_followers",
           "promote_followers"]


def content_key(spec: dict) -> Optional[str]:
    """The job's execution identity, or ``None`` when it has none.

    Hashes the per-unit engine cache keys, so two specs coalesce exactly
    when every unit of work they would run is byte-for-byte the same —
    same tasks, same seeds, same policy, same shard split.  Any unseeded
    unit (a ``None`` cache key) makes the whole job non-reproducible and
    therefore uncoalescable.
    """
    keys = spec_cache_keys(spec)
    if any(k is None for k in keys):
        return None
    body = {"kind": spec["kind"], "keys": keys}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def find_live_primary(conn, key: str) -> Optional[str]:
    """The id of the queued/running primary for ``key``, if one exists.

    Must run inside the submitter's write transaction.  Only primaries
    (``coalesced_into IS NULL``) match, so follower chains stay one level
    deep and completion propagation is a single UPDATE.
    """
    row = conn.execute(
        "SELECT id FROM jobs WHERE content_key = ? AND"
        " coalesced_into IS NULL AND state IN ('queued', 'running')"
        " ORDER BY submitted_at, id LIMIT 1",
        (key,)).fetchone()
    return None if row is None else row[0]


def complete_followers(conn, primary_id: str, state: str,
                       result_json: Optional[str], error: Optional[str],
                       now: float) -> int:
    """Deliver a primary's outcome to every follower still waiting on it.

    Runs inside the finishing worker's transaction.  Followers that were
    individually cancelled keep their cancellation; the rest move to the
    primary's terminal state with the same result (or error — a
    deterministic execution would only have failed identically for them).
    """
    cur = conn.execute(
        "UPDATE jobs SET state = ?, result = ?, error = ?, finished_at = ?"
        " WHERE coalesced_into = ? AND state = 'queued'",
        (state, result_json, error, now, primary_id))
    return cur.rowcount


def promote_followers(conn, primary_id: str) -> Optional[str]:
    """After a primary is cancelled, keep its followers' work alive.

    The oldest follower becomes the new primary (clears
    ``coalesced_into``, stays ``queued``, claimable as usual); the rest
    re-point at it.  Returns the promoted id, or ``None`` if there were no
    followers.  Runs inside the canceller's transaction.
    """
    row = conn.execute(
        "SELECT id FROM jobs WHERE coalesced_into = ? AND state = 'queued'"
        " ORDER BY submitted_at, id LIMIT 1", (primary_id,)).fetchone()
    if row is None:
        return None
    new_primary = row[0]
    conn.execute(
        "UPDATE jobs SET coalesced_into = NULL WHERE id = ?", (new_primary,))
    conn.execute(
        "UPDATE jobs SET coalesced_into = ? WHERE coalesced_into = ?"
        " AND state = 'queued'", (new_primary, primary_id))
    return new_primary
