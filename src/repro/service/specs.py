"""Job specifications: the JSON contract between front end, store and workers.

A *job spec* is a plain-JSON dict that pins **everything that determines a
run's bytes** — the frozen task payload(s), the shot policy, the seed
fingerprint and the shard size — and nothing that doesn't (no backend, no
worker count, no host names).  It round-trips losslessly through the SQLite
store and the HTTP API: a worker on any machine rebuilds exactly the task
specs and RNG roots a direct in-process ``Engine`` call would use, so the
service's results are bit-identical (and its cache records byte-identical)
to library use.

Three job kinds cover the service's workloads:

``ler``
    One LER point: ``{"kind": "ler", "task_kind": ..., "task": <payload>,
    "policy": <payload>, "seed": <fingerprint|null>, "shard_size": n}``.
    Executed via :meth:`Engine.run_ler`.
``sweep``
    A bundle of LER points sharing one policy and one *root* seed —
    item ``i`` draws RNG child stream ``i``, mirroring
    :meth:`Engine.run_ler_many` exactly.
``yield``
    A chiplet yield Monte-Carlo: ``{"kind": "yield", "task": <payload>,
    "seed": <fingerprint|null>}``.  Executed via :meth:`Engine.run_yield`.

Task payloads carry every content-hash field, including ``rng_mode``: a
bitgen-mode LER job submitted over HTTP rebuilds a bitgen task on the
worker via ``task_from_payload`` (exact-mode payloads omit the field for
backward compatibility), and its cache records can never alias an
exact-mode run of the same parameters.

Seeds are stored as the engine's canonical *fingerprints*
(``[[entropy...], [spawn_key...]]``); the submission API additionally
accepts a bare integer and fingerprints it.  ``null`` means fresh OS
entropy: legal, but such jobs are neither cached nor coalesced (their
results are not reproducible, so they have no content identity).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..engine.executor import SweepItem, ler_cache_key, seeded_task_key
from ..engine.rng import as_seed_sequence, child_stream, from_fingerprint, seed_fingerprint
from ..engine.scheduler import ShotPolicy
from ..engine.tasks import LerPointTask, YieldTask, task_from_payload

__all__ = [
    "JOB_KINDS",
    "DEFAULT_SHARD_SIZE",
    "YIELD_SAMPLE_COST",
    "normalize_spec",
    "policy_from_payload",
    "sweep_items",
    "yield_job",
    "spec_cache_keys",
    "spec_estimated_cost",
]

JOB_KINDS = ("ler", "sweep", "yield")

#: Matches :attr:`repro.engine.executor.EngineConfig.shard_size` — the value
#: a plain ``Engine()`` uses, so service and library default to the same
#: cache keys.
DEFAULT_SHARD_SIZE = 4096

#: Scheduler cost of one yield sample, in shot-equivalents.  A yield sample
#: adapts a whole patch and evaluates its distance, which is orders of
#: magnitude heavier than one decoded shot; the exact weight only shapes
#: *ranking* between mixed job kinds, never results.
YIELD_SAMPLE_COST = 32.0

_POLICY_FIELDS = ("max_shots", "min_shots", "target_failures",
                  "target_rel_halfwidth", "z", "growth")
_LER_TASK_KINDS = ("ler_point", "cutoff_cell")


# ----------------------------------------------------------------------
# Seed handling
# ----------------------------------------------------------------------
def _normalize_seed(value) -> Optional[list]:
    """User-facing seed (int or fingerprint) to canonical fingerprint JSON."""
    if value is None:
        return None
    if isinstance(value, bool):
        raise ValueError("seed must be an integer or a fingerprint")
    if isinstance(value, int):
        fp = seed_fingerprint(value)
        return [list(fp[0]), list(fp[1])]
    if (isinstance(value, (list, tuple)) and len(value) == 2
            and all(isinstance(part, (list, tuple)) for part in value)):
        entropy, spawn = value
        if not entropy:
            raise ValueError("seed fingerprint has an empty entropy key")
        return [[int(e) for e in entropy], [int(k) for k in spawn]]
    raise ValueError(
        f"seed must be null, an integer or an [[entropy],[spawn_key]] "
        f"fingerprint, got {value!r}"
    )


def _seed_from_spec(spec: dict):
    """The spec's root seed as a ``SeedSequence`` (or ``None`` if unseeded)."""
    fp = spec.get("seed")
    if fp is None:
        return None
    return from_fingerprint((tuple(fp[0]), tuple(fp[1])))


# ----------------------------------------------------------------------
# Policy handling
# ----------------------------------------------------------------------
def policy_from_payload(payload) -> ShotPolicy:
    """A ``ShotPolicy`` from its canonical payload (or a ``{"shots": n}``
    convenience form); unknown keys are rejected loudly."""
    if not isinstance(payload, dict):
        raise ValueError(f"policy must be an object, got {payload!r}")
    if set(payload) == {"shots"}:
        return ShotPolicy.fixed(int(payload["shots"]))
    unknown = set(payload) - set(_POLICY_FIELDS)
    if unknown:
        raise ValueError(f"unknown policy fields: {', '.join(sorted(unknown))}")
    if "max_shots" not in payload:
        raise ValueError("policy needs max_shots (or the {'shots': n} form)")
    kwargs = {k: payload[k] for k in _POLICY_FIELDS if k in payload}
    return ShotPolicy(**kwargs)


def _policy_payload(body: dict) -> dict:
    """Extract and canonicalize the policy from a submission body."""
    if "policy" in body and "shots" in body:
        raise ValueError("give either policy or shots, not both")
    if "shots" in body:
        return ShotPolicy.fixed(int(body["shots"])).payload()
    if "policy" not in body:
        raise ValueError("LER jobs need a policy (or shots)")
    return policy_from_payload(body["policy"]).payload()


# ----------------------------------------------------------------------
# Normalization (the submission boundary)
# ----------------------------------------------------------------------
def normalize_spec(body: dict) -> dict:
    """Validate a submission body into the canonical stored spec.

    Every task payload is round-tripped through its frozen spec class, so a
    malformed payload fails here — at the API boundary, with a
    ``ValueError`` — rather than on a worker an hour later.
    """
    if not isinstance(body, dict):
        raise ValueError("job submission must be a JSON object")
    kind = body.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(
            f"unknown job kind {kind!r}; valid kinds: {', '.join(JOB_KINDS)}")
    seed = _normalize_seed(body.get("seed"))

    if kind == "yield":
        task = task_from_payload("yield", body.get("task"))
        return {"kind": "yield", "task": task.payload(), "seed": seed}

    shard_size = int(body.get("shard_size", DEFAULT_SHARD_SIZE))
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    policy = _policy_payload(body)

    if kind == "ler":
        task_kind = body.get("task_kind", "ler_point")
        if task_kind not in _LER_TASK_KINDS:
            raise ValueError(f"LER jobs take task_kind in {_LER_TASK_KINDS}, "
                             f"got {task_kind!r}")
        task = task_from_payload(task_kind, body.get("task"))
        return {"kind": "ler", "task_kind": task_kind, "task": task.payload(),
                "policy": policy, "seed": seed, "shard_size": shard_size}

    # sweep
    tasks = body.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        raise ValueError("sweep jobs need a non-empty tasks list")
    kinds = body.get("task_kinds", "ler_point")
    if isinstance(kinds, str):
        kinds = [kinds] * len(tasks)
    if len(kinds) != len(tasks):
        raise ValueError("task_kinds must match tasks in length")
    for k in kinds:
        if k not in _LER_TASK_KINDS:
            raise ValueError(f"sweep task kinds must be in {_LER_TASK_KINDS}, "
                             f"got {k!r}")
    payloads = [task_from_payload(k, t).payload()
                for k, t in zip(kinds, tasks)]
    return {"kind": "sweep", "task_kinds": list(kinds), "tasks": payloads,
            "policy": policy, "seed": seed, "shard_size": shard_size}


# ----------------------------------------------------------------------
# Execution-side reconstruction
# ----------------------------------------------------------------------
def _ler_tasks(spec: dict) -> List[LerPointTask]:
    if spec["kind"] == "ler":
        return [task_from_payload(spec["task_kind"], spec["task"])]
    return [task_from_payload(k, t)
            for k, t in zip(spec["task_kinds"], spec["tasks"])]


def _item_seeds(spec: dict, count: int) -> List:
    """Per-item seeds: the root itself for ``ler``, child streams for
    ``sweep`` — exactly the :meth:`Engine.run_ler_many` derivation."""
    root = _seed_from_spec(spec)
    if spec["kind"] == "ler":
        return [root]
    if root is None:
        return [None] * count
    root = as_seed_sequence(root)
    return [child_stream(root, i) for i in range(count)]


def sweep_items(spec: dict) -> List[SweepItem]:
    """The spec's :class:`SweepItem` list (kinds ``ler`` and ``sweep``)."""
    if spec["kind"] not in ("ler", "sweep"):
        raise ValueError(f"not an LER job spec: {spec.get('kind')!r}")
    tasks = _ler_tasks(spec)
    policy = policy_from_payload(spec["policy"])
    seeds = _item_seeds(spec, len(tasks))
    return [SweepItem(task, policy, seed)
            for task, seed in zip(tasks, seeds)]


def yield_job(spec: dict) -> Tuple[YieldTask, object]:
    """The spec's ``(YieldTask, seed)`` pair (kind ``yield``)."""
    if spec["kind"] != "yield":
        raise ValueError(f"not a yield job spec: {spec.get('kind')!r}")
    task = task_from_payload("yield", spec["task"])
    return task, _seed_from_spec(spec)


# ----------------------------------------------------------------------
# Identity and cost (scheduler/coalescer inputs)
# ----------------------------------------------------------------------
def spec_cache_keys(spec: dict) -> List[Optional[str]]:
    """Per-unit engine cache keys — the keys an execution *will* write.

    Minted by the same module-level functions the engine uses
    (:func:`ler_cache_key` / :func:`seeded_task_key`), so probing the
    result cache with these keys is an exact cache-hit predictor, and
    hashing them gives a job its content identity.  Unseeded units map to
    ``None`` (no reproducible identity).
    """
    if spec["kind"] == "yield":
        task, seed = yield_job(spec)
        fp = seed_fingerprint(seed)
        return [None if fp is None else seeded_task_key(task, fp)]
    shard_size = spec["shard_size"]
    return [ler_cache_key(item.task, item.seed, item.policy, shard_size)
            for item in sweep_items(spec)]


def spec_estimated_cost(spec: dict, expected_rate: float = 0.0) -> float:
    """Estimated execution cost in shot-equivalents (scheduler ranking).

    LER jobs price each item with the policy's wave math
    (:meth:`ShotPolicy.estimated_cost`), weighted by the item's
    ``rng_mode`` so a bitgen task prices at ~1/3 of an exact one with
    the same plan; yield jobs price samples at :data:`YIELD_SAMPLE_COST`
    shot-equivalents each.  Purely a ranking heuristic — it never
    touches results.
    """
    if spec["kind"] == "yield":
        task, _ = yield_job(spec)
        return float(task.samples) * YIELD_SAMPLE_COST
    policy = policy_from_payload(spec["policy"])
    shard_size = spec["shard_size"]
    if spec["kind"] == "ler":
        payloads = [spec["task"]]
    else:
        payloads = spec["tasks"]
    # Task payloads omit rng_mode when it is the "exact" default; cost a
    # sweep's items per distinct mode (one wave-plan walk per mode).
    cost_of: dict = {}
    total = 0
    for payload in payloads:
        mode = str(payload.get("rng_mode", "exact"))
        if mode not in cost_of:
            cost_of[mode] = policy.estimated_cost(
                shard_size, expected_rate, rng_mode=mode)
        total += cost_of[mode]
    return float(total)
