"""The worker drain loop: claim → execute → stream partials → finish.

``python -m repro.service.worker`` runs one of these per process.  Workers
share nothing but the SQLite job store (and, transitively, the on-disk
result cache): any number of them can drain one queue from any number of
shells or hosts with the database file in common.

Execution routes through the ordinary :class:`~repro.engine.Engine`, built
from the worker's environment (``REPRO_WORKERS`` / ``REPRO_BACKEND`` /
``REPRO_HOSTS``) with the *job's* shard size — so a service worker can
itself fan shards out over a local pool or a socket fleet, and the numbers
are still exactly what a direct library call would produce.

Fault model (the reason killing a worker loses nothing):

* The claim takes a **lease**; every merged scheduler wave heartbeats it
  forward and persists a partial result (failures/shots/Wilson CI).  A
  killed worker stops heartbeating, its lease expires, and the job is
  claimable again — the next worker re-runs it from scratch and gets
  bit-identical numbers, because all randomness is pinned by the spec.
* Completion is ownership-guarded: a worker that lost its lease (or whose
  job was cancelled mid-run) is told so at the next wave boundary, aborts
  the engine run, and discards its work without writing anything.
"""

from __future__ import annotations

import argparse
import os
import socket
import time
import uuid
from dataclasses import replace
from typing import Dict, Optional

from ..analysis.stats import wilson_interval
from ..engine.cache import ResultCache
from ..engine.executor import Engine, EngineConfig, WaveUpdate
from ..env import env_str
from ..engine.pipeline import memo_preload
from .config import service_db_path, service_lease_seconds, service_poll_seconds
from .scheduler import JobScheduler, SchedulerConfig
from .specs import spec_cache_keys, sweep_items, yield_job
from .store import Job, JobStore

__all__ = ["ServiceWorker", "JobCancelled", "JobLost", "main"]


class JobCancelled(Exception):
    """The job was cancelled while we were running it; abort and discard."""


class JobLost(Exception):
    """Another worker owns the job now (our lease expired); abort quietly."""


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class ServiceWorker:
    """Claims and executes jobs from a :class:`JobStore` (see module doc)."""

    def __init__(
        self,
        store: JobStore,
        *,
        worker_id: Optional[str] = None,
        lease_seconds: Optional[float] = None,
        cache_dir: Optional[str] = None,
        engine_config: Optional[EngineConfig] = None,
        scheduler: Optional[JobScheduler] = None,
    ):
        self.store = store
        self.worker_id = worker_id or _default_worker_id()
        self.lease_seconds = (service_lease_seconds()
                              if lease_seconds is None else lease_seconds)
        if self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.cache_dir = cache_dir if cache_dir else None
        self._base_config = engine_config or EngineConfig.from_env()
        self.scheduler = scheduler or JobScheduler(
            ResultCache(self.cache_dir) if self.cache_dir else None,
            SchedulerConfig.from_env())
        self._engines: Dict[int, Engine] = {}

    # ------------------------------------------------------------------
    def _engine_for(self, shard_size: int) -> Engine:
        """A memoised engine per shard size (jobs pin their shard split)."""
        engine = self._engines.get(shard_size)
        if engine is None:
            engine = Engine(replace(self._base_config,
                                    shard_size=shard_size,
                                    cache_dir=self.cache_dir))
            self._engines[shard_size] = engine
        return engine

    # ------------------------------------------------------------------
    # Claim
    # ------------------------------------------------------------------
    def claim_next(self) -> Optional[Job]:
        """Rank runnable jobs and atomically claim the best one.

        Ranking happens outside any lock (it probes the result cache on
        disk); the claim itself is a compare-and-swap, so losing a race
        just means trying the next candidate.
        """
        candidates = self.store.runnable_jobs()
        if not candidates:
            return None
        now = time.time()
        for job in self.scheduler.rank(candidates, now):
            claimed = self.store.try_claim(job.id, self.worker_id,
                                           self.lease_seconds)
            if claimed is not None:
                return claimed
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """Claim and fully process one job; False when the queue is idle."""
        job = self.claim_next()
        if job is None:
            return False
        self._execute(job)
        return True

    def drain(self, max_jobs: Optional[int] = None) -> int:
        """Process jobs until the queue has nothing runnable; returns count."""
        done = 0
        while max_jobs is None or done < max_jobs:
            if not self.run_once():
                break
            done += 1
        return done

    def run_forever(self, poll_seconds: Optional[float] = None) -> None:
        """The service loop: drain, then sleep-poll for new work."""
        poll = service_poll_seconds() if poll_seconds is None else poll_seconds
        while True:
            if not self.run_once():
                time.sleep(poll)

    # ------------------------------------------------------------------
    def _progress(self, job: Job, *, partial: Optional[dict] = None,
                  event: Optional[dict] = None) -> None:
        """Heartbeat; raises if the job is no longer ours to run."""
        status = self.store.record_progress(job.id, self.worker_id,
                                            self.lease_seconds,
                                            partial=partial, event=event)
        if status == "cancelled":
            raise JobCancelled(job.id)
        if status == "lost":
            raise JobLost(job.id)

    def _execute(self, job: Job) -> None:
        try:
            self._progress(job, event={"type": "claimed",
                                       "worker": self.worker_id,
                                       "attempt": job.attempts})
            if job.spec["kind"] in ("ler", "sweep"):
                result = self._execute_ler(job)
            else:
                result = self._execute_yield(job)
        except (JobCancelled, JobLost):
            return  # the store already reflects the outcome; discard quietly
        except Exception as exc:
            self.store.fail(job.id, self.worker_id,
                            f"{type(exc).__name__}: {exc}")
            return
        self.store.finish(job.id, self.worker_id, result)

    def _execute_ler(self, job: Job) -> dict:
        spec = job.spec
        items = sweep_items(spec)
        engine = self._engine_for(spec["shard_size"])

        def on_wave(update: WaveUpdate) -> None:
            low, high = wilson_interval(update.failures, update.shots)
            partial = {
                "item": update.index,
                "wave": update.wave,
                "failures": update.failures,
                "shots": update.shots,
                "ler": update.failures / update.shots,
                "ci_low": low,
                "ci_high": high,
            }
            self._progress(job, partial=partial,
                           event={"type": "wave", **partial})

        results = engine.run_sweep(items, on_wave=on_wave)
        keys = spec_cache_keys(spec)
        payload = []
        for r, key in zip(results, keys):
            low, high = wilson_interval(r.failures, r.shots)
            payload.append({
                "failures": r.failures,
                "shots": r.shots,
                "ler": r.failures / r.shots,
                "ci_low": low,
                "ci_high": high,
                "num_shards": r.num_shards,
                "num_detectors": r.num_detectors,
                "num_dem_errors": r.num_dem_errors,
                "from_cache": r.from_cache,
                "cache_key": key,
            })
        return {"kind": spec["kind"], "results": payload}

    def _execute_yield(self, job: Job) -> dict:
        spec = job.spec
        task, seed = yield_job(spec)
        engine = self._engine_for(EngineConfig().shard_size)
        result = engine.run_yield(task, seed=seed)
        # Yield runs are a single fan-out (no waves); one progress beat
        # covers lease renewal for queues of many small yield jobs.
        self._progress(job)
        return {
            "kind": "yield",
            "samples": result.samples,
            "accepted": result.accepted,
            "yield": result.accepted / result.samples,
            "distance_counts": {str(d): c for d, c in
                                sorted(result.distance_counts.items())},
            "accepted_distance_counts": {
                str(d): c for d, c in
                sorted(result.accepted_distance_counts.items())},
            "from_cache": result.from_cache,
            "cache_key": spec_cache_keys(spec)[0],
        }


# ----------------------------------------------------------------------
# Entry point (python -m repro.service.worker)
# ----------------------------------------------------------------------
def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Drain estimation jobs from a repro.service job store.",
    )
    parser.add_argument("--db", default=None,
                        help="job-store SQLite path (default:"
                             " REPRO_SERVICE_DB or .repro-service.db)")
    parser.add_argument("--cache", default=None,
                        help="result-cache directory shared with other"
                             " workers (default: REPRO_CACHE)")
    parser.add_argument("--lease", type=float, default=None,
                        help="lease seconds (default: REPRO_SERVICE_LEASE)")
    parser.add_argument("--poll", type=float, default=None,
                        help="idle poll seconds (default: REPRO_SERVICE_POLL)")
    parser.add_argument("--drain", action="store_true",
                        help="exit once the queue has nothing runnable"
                             " instead of polling forever")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit after processing this many jobs")
    args = parser.parse_args(argv)

    store = JobStore(args.db or service_db_path())
    cache_dir = args.cache if args.cache is not None \
        else env_str("REPRO_CACHE")
    # Point this worker process's decoding pipelines at the shared cache so
    # the first shard of a restarted worker imports any persisted syndrome
    # memo instead of re-paying the d=5 cold-start decode rebuild.  Done at
    # the process entry point (not in ServiceWorker) because the preload
    # target is process-wide state — in-process embedders opt in by calling
    # memo_preload themselves.
    memo_preload(cache_dir)
    worker = ServiceWorker(store, lease_seconds=args.lease,
                           cache_dir=cache_dir)
    # The one line launchers parse; flush so pipes see it immediately.
    print(f"REPRO_SERVICE_WORKER_READY {worker.worker_id}", flush=True)
    try:
        if args.drain or args.max_jobs is not None:
            count = worker.drain(args.max_jobs)
            print(f"REPRO_SERVICE_WORKER_DRAINED {worker.worker_id} {count}",
                  flush=True)
        else:
            worker.run_forever(args.poll)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    main()
