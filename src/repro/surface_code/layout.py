"""Rotated surface-code geometry.

Coordinate convention (matching the figures of the paper up to rotation):

* Data qubits live at odd-odd integer coordinates ``(x, y)`` with
  ``1 <= x, y <= 2l - 1`` for a patch of width ``l`` (so ``l x l`` data
  qubits).
* Candidate measurement (ancilla / syndrome) qubits live at even-even
  coordinates ``(x, y)`` with ``0 <= x, y <= 2l``; a candidate touches the
  data qubits at its four diagonal neighbours.
* The plaquette colour of a candidate at ``(x, y)`` is ``X`` when
  ``((x + y) // 2) % 2 == 0`` and ``Z`` otherwise.  Diagonally adjacent
  plaquettes share one data qubit and have equal colour; edge-adjacent
  plaquettes share two data qubits and have opposite colour, so all
  stabilizers commute.
* All interior candidates are active.  On the ``y = 0`` and ``y = 2l``
  boundaries only X-coloured candidates are active (weight-2 checks); on the
  ``x = 0`` and ``x = 2l`` boundaries only Z-coloured candidates are active.
  Corners are never active.  This yields the standard ``l**2 - 1`` checks.
* The logical X operator is a vertical column of X's (terminating on the
  ``y`` boundaries); the logical Z operator is a horizontal row of Z's
  (terminating on the ``x`` boundaries).

The same module also provides :class:`StabilityLayout`, a patch whose four
boundaries all carry Z-type checks, used for the stability experiment of
Sec. 6 (cutoff-fidelity study): on that patch the product of all Z checks is
the identity, which is the observable the stability experiment tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, List, Tuple

__all__ = [
    "Coord",
    "Check",
    "RotatedSurfaceCodeLayout",
    "StabilityLayout",
    "plaquette_kind",
]

Coord = Tuple[int, int]


def plaquette_kind(position: Coord) -> str:
    """Colour ('X' or 'Z') of the plaquette candidate at an even-even coordinate."""
    x, y = position
    if x % 2 or y % 2:
        raise ValueError(f"{position} is not a plaquette (even-even) coordinate")
    return "X" if ((x + y) // 2) % 2 == 0 else "Z"


@dataclass(frozen=True)
class Check:
    """A stabilizer check: its type, ancilla position and data support."""

    kind: str
    ancilla: Coord
    data: Tuple[Coord, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("X", "Z"):
            raise ValueError(f"check kind must be 'X' or 'Z', got {self.kind!r}")

    @property
    def weight(self) -> int:
        return len(self.data)


class RotatedSurfaceCodeLayout:
    """Defect-free rotated surface code of width ``l`` (``l x l`` data qubits)."""

    #: boundary sides hosting X-type weight-2 checks (where X logicals terminate)
    X_BOUNDARY_AXIS = "y"
    #: boundary sides hosting Z-type weight-2 checks (where Z logicals terminate)
    Z_BOUNDARY_AXIS = "x"

    def __init__(self, size: int):
        if size < 2:
            raise ValueError("surface code width must be at least 2")
        self.size = int(size)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @cached_property
    def data_qubits(self) -> Tuple[Coord, ...]:
        l = self.size
        return tuple(
            (x, y)
            for x in range(1, 2 * l, 2)
            for y in range(1, 2 * l, 2)
        )

    @cached_property
    def data_qubit_set(self) -> FrozenSet[Coord]:
        return frozenset(self.data_qubits)

    def candidate_plaquettes(self) -> List[Coord]:
        """All even-even positions in the bounding box (active or not)."""
        l = self.size
        return [(x, y) for x in range(0, 2 * l + 1, 2) for y in range(0, 2 * l + 1, 2)]

    def plaquette_data(self, position: Coord) -> Tuple[Coord, ...]:
        """Data qubits inside the patch diagonally adjacent to a plaquette."""
        x, y = position
        out = []
        for dx in (-1, 1):
            for dy in (-1, 1):
                d = (x + dx, y + dy)
                if d in self.data_qubit_set:
                    out.append(d)
        return tuple(sorted(out))

    def _is_active_plaquette(self, position: Coord) -> bool:
        l = self.size
        x, y = position
        interior = 0 < x < 2 * l and 0 < y < 2 * l
        if interior:
            return True
        kind = plaquette_kind(position)
        on_y_boundary = (y == 0 or y == 2 * l) and 0 < x < 2 * l
        on_x_boundary = (x == 0 or x == 2 * l) and 0 < y < 2 * l
        if on_y_boundary:
            return kind == "X"
        if on_x_boundary:
            return kind == "Z"
        return False  # corners

    @cached_property
    def checks(self) -> Tuple[Check, ...]:
        out = []
        for pos in self.candidate_plaquettes():
            if not self._is_active_plaquette(pos):
                continue
            data = self.plaquette_data(pos)
            if len(data) < 2:
                continue
            out.append(Check(plaquette_kind(pos), pos, data))
        return tuple(out)

    @cached_property
    def check_by_ancilla(self) -> Dict[Coord, Check]:
        return {c.ancilla: c for c in self.checks}

    @cached_property
    def ancilla_qubits(self) -> Tuple[Coord, ...]:
        return tuple(c.ancilla for c in self.checks)

    @cached_property
    def all_qubits(self) -> Tuple[Coord, ...]:
        return tuple(sorted(set(self.data_qubits) | set(self.ancilla_qubits)))

    def is_data(self, coord: Coord) -> bool:
        return coord in self.data_qubit_set

    def is_ancilla(self, coord: Coord) -> bool:
        return coord in self.check_by_ancilla

    @cached_property
    def links(self) -> Tuple[Tuple[Coord, Coord], ...]:
        """All fabricated data-ancilla couplers, as (data, ancilla) pairs."""
        out = []
        for check in self.checks:
            for d in check.data:
                out.append((d, check.ancilla))
        return tuple(out)

    @cached_property
    def checks_containing(self) -> Dict[Coord, Tuple[Check, ...]]:
        """Map from data qubit to the checks containing it."""
        mapping: Dict[Coord, List[Check]] = {d: [] for d in self.data_qubits}
        for check in self.checks:
            for d in check.data:
                mapping[d].append(check)
        return {d: tuple(cs) for d, cs in mapping.items()}

    # ------------------------------------------------------------------
    # Counts used by the resource-overhead analysis
    # ------------------------------------------------------------------
    @property
    def num_data_qubits(self) -> int:
        return self.size ** 2

    @property
    def num_ancilla_qubits(self) -> int:
        return len(self.checks)

    @property
    def num_fabricated_qubits(self) -> int:
        """Physical qubits per chiplet: data + measurement qubits (= 2 l**2 - 1)."""
        return self.num_data_qubits + self.num_ancilla_qubits

    @property
    def num_links(self) -> int:
        return len(self.links)

    # ------------------------------------------------------------------
    # Logical operators
    # ------------------------------------------------------------------
    def logical_x_support(self) -> Tuple[Coord, ...]:
        """A minimum-weight logical X representative: the column ``x = 1``."""
        return tuple((1, y) for y in range(1, 2 * self.size, 2))

    def logical_z_support(self) -> Tuple[Coord, ...]:
        """A minimum-weight logical Z representative: the row ``y = 1``."""
        return tuple((x, 1) for x in range(1, 2 * self.size, 2))

    def boundary_sides(self) -> Dict[str, str]:
        """Map side name -> type of boundary check hosted there."""
        return {"top": "X", "bottom": "X", "left": "Z", "right": "Z"}

    def side_of(self, coord: Coord) -> List[str]:
        """Which patch sides a coordinate lies on (may be several at corners)."""
        l = self.size
        x, y = coord
        sides = []
        if y <= 1:
            sides.append("top")
        if y >= 2 * l - 1:
            sides.append("bottom")
        if x <= 1:
            sides.append("left")
        if x >= 2 * l - 1:
            sides.append("right")
        return sides

    def __repr__(self) -> str:
        return f"RotatedSurfaceCodeLayout(size={self.size})"


class StabilityLayout(RotatedSurfaceCodeLayout):
    """A rotated patch whose four boundaries all carry Z-type checks.

    On this patch every data qubit belongs to exactly two Z checks, so the
    product of all Z checks is the identity; the XOR of all Z-check
    measurement outcomes in any single round is therefore deterministic and
    serves as the observable of the stability experiment (Gidney 2022), which
    the paper uses in Sec. 6 to identify cutoff fidelities.

    The all-Z-boundary construction only closes up for even patch widths (for
    odd widths two opposite corners end up in a single Z check), so the width
    is required to be even.  The paper's Fig. 20 uses a d = 5 region; the
    reproduction substitutes the closest even-width stability patch, which
    exercises the identical code path (see EXPERIMENTS.md).
    """

    def __init__(self, size: int):
        if size % 2 != 0:
            raise ValueError(
                "the stability patch requires an even width; for odd widths the "
                "product of the boundary Z checks is not the identity"
            )
        super().__init__(size)

    def _is_active_plaquette(self, position: Coord) -> bool:
        l = self.size
        x, y = position
        interior = 0 < x < 2 * l and 0 < y < 2 * l
        if interior:
            return True
        kind = plaquette_kind(position)
        on_boundary = (
            ((y == 0 or y == 2 * l) and 0 < x < 2 * l)
            or ((x == 0 or x == 2 * l) and 0 < y < 2 * l)
        )
        return on_boundary and kind == "Z"

    def logical_x_support(self) -> Tuple[Coord, ...]:  # pragma: no cover - not used
        raise NotImplementedError("the stability patch does not store a logical qubit")

    def logical_z_support(self) -> Tuple[Coord, ...]:  # pragma: no cover - not used
        raise NotImplementedError("the stability patch does not store a logical qubit")

    def boundary_sides(self) -> Dict[str, str]:
        return {"top": "Z", "bottom": "Z", "left": "Z", "right": "Z"}
