"""Syndrome-extraction circuits for adapted surface-code patches.

This module generates the noisy stabilizer circuits that the paper runs on
Stim; here they target :mod:`repro.stabilizer`.  One generic builder covers
both experiment families used in the paper:

* **memory experiments** (Sec. 4): data qubits initialised and measured in the
  Z basis, the observable is a logical-Z representative read from the final
  data measurements, and the relevant detectors are the Z-type checks;
* **stability experiments** (Sec. 6): data qubits initialised and measured in
  the X basis on the all-Z-boundary :class:`StabilityLayout`, the observable
  is the product of every Z-type check outcome in the first round (which is
  deterministic because the product of all Z checks is the identity on that
  patch), and the relevant detectors are again the Z-type checks, now forming
  a time-like matching problem.

Super-stabilizer handling follows Sec. 3: gauge operators of a defect cluster
are measured on a schedule of alternating blocks (``Z^n X^n Z^n ...`` with
``n`` the cluster repetition count); individual gauge outcomes are compared
between consecutive rounds inside a block, and only the gauge *products* are
compared across blocks and against the final data readout.

The standard interleaved CNOT schedule (Tomita & Svore) is used: Z-type
checks couple their data qubits in the order NE, NW, SE, SW and X-type checks
in the order NE, SE, NW, SW (directions are data-minus-ancilla), which keeps
every data qubit involved in at most one two-qubit gate per time step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..noise.circuit_noise import CircuitNoiseModel
from ..stabilizer.circuit import Circuit
from .layout import Coord

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance, types only
    from ..core.patch import AdaptedPatch

__all__ = [
    "CircuitBuildError",
    "build_memory_circuit",
    "build_stability_circuit",
    "SyndromeCircuitBuilder",
]

# Data-qubit coupling order relative to the ancilla, per check type.
_Z_ORDER: Tuple[Coord, ...] = ((1, 1), (-1, 1), (1, -1), (-1, -1))
_X_ORDER: Tuple[Coord, ...] = ((1, 1), (1, -1), (-1, 1), (-1, -1))


class CircuitBuildError(RuntimeError):
    """Raised when a valid circuit cannot be generated for a patch."""


@dataclass(frozen=True)
class _ScheduledCheck:
    """A check or gauge with its measurement-schedule metadata."""

    kind: str
    ancilla: Coord
    data: Tuple[Coord, ...]
    is_gauge: bool
    cluster_id: Optional[int] = None


class SyndromeCircuitBuilder:
    """Builds noisy syndrome-extraction circuits for an adapted patch."""

    def __init__(
        self,
        patch: "AdaptedPatch",
        noise: CircuitNoiseModel,
        rounds: int,
        *,
        detector_basis: str = "Z",
        data_init_basis: str = "Z",
        observable: str = "logical_z",
    ):
        if rounds < 1:
            raise ValueError("at least one measurement round is required")
        if detector_basis not in ("Z", "X", "both"):
            raise ValueError("detector_basis must be 'Z', 'X' or 'both'")
        if data_init_basis not in ("Z", "X"):
            raise ValueError("data_init_basis must be 'Z' or 'X'")
        if observable not in ("logical_z", "logical_x", "stability_z"):
            raise ValueError(f"unknown observable {observable!r}")
        if not patch.valid:
            raise CircuitBuildError(f"patch is invalid: {patch.failure_reason}")
        self.patch = patch
        self.noise = noise
        self.rounds = int(rounds)
        self.detector_basis = detector_basis
        self.data_init_basis = data_init_basis
        self.observable = observable

        self._index: Dict[Coord, int] = {}
        for coord in list(patch.active_data) + list(patch.active_ancillas):
            self._index[coord] = len(self._index)
        self._scheduled = self._collect_checks()
        self._meas_key: Dict[Tuple[Coord, int], int] = {}
        self._final_key: Dict[Coord, int] = {}

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------
    def _collect_checks(self) -> List[_ScheduledCheck]:
        out: List[_ScheduledCheck] = []
        for check in self.patch.stabilizers:
            out.append(_ScheduledCheck(check.kind, check.ancilla, tuple(check.data),
                                       is_gauge=False))
        for ss in self.patch.super_stabilizers:
            for g in ss.gauges:
                out.append(_ScheduledCheck(g.kind, g.ancilla, g.data,
                                           is_gauge=True, cluster_id=ss.cluster_id))
        return out

    def _block_kind(self, cluster_id: int, round_index: int) -> str:
        """Which gauge type a cluster measures in a given round (Z blocks first)."""
        reps = self.patch.cluster_repetitions.get(cluster_id, 1)
        return "Z" if (round_index // reps) % 2 == 0 else "X"

    def _measured_this_round(self, item: _ScheduledCheck, round_index: int) -> bool:
        if not item.is_gauge:
            return True
        return self._block_kind(item.cluster_id, round_index) == item.kind

    def _rounds_measured(self, item: _ScheduledCheck) -> List[int]:
        return [r for r in range(self.rounds) if self._measured_this_round(item, r)]

    def qubit_index(self, coord: Coord) -> int:
        return self._index[coord]

    # ------------------------------------------------------------------
    # Observable supports
    # ------------------------------------------------------------------
    def _logical_support(self, logical: str) -> Tuple[Coord, ...]:
        """A logical representative avoiding every gauge-operator qubit.

        Logical Z must commute with the individually-measured X gauges (and
        vice versa), so the representative is routed around super-stabilizer
        regions.  Raises :class:`CircuitBuildError` when no such routing
        exists (extremely damaged patches).
        """
        from ..core.metrics import build_chain_graph

        error_type = "Z" if logical == "logical_z" else "X"
        avoid = {d for g in self.patch.gauge_operators for d in g.data}
        graph = build_chain_graph(self.patch, error_type)
        path = graph.shortest_path_qubits(avoid=avoid)
        if path is None:
            path = graph.shortest_path_qubits()
        if path is None:
            raise CircuitBuildError(
                f"no {logical} representative exists on this patch"
            )
        return tuple(path)

    # ------------------------------------------------------------------
    # Circuit assembly
    # ------------------------------------------------------------------
    def build(self) -> Circuit:
        circuit = Circuit(num_qubits=len(self._index))
        data = list(self.patch.active_data)
        data_idx = [self._index[d] for d in data]
        noise = self.noise

        # Initial resets.
        reset_gate = "R" if self.data_init_basis == "Z" else "RX"
        circuit.append(reset_gate, data_idx)
        all_anc = sorted({self._index[c.ancilla] for c in self._scheduled})
        circuit.append("R", all_anc)
        if noise.reset_factor > 0:
            for d in data:
                circuit.append("X_ERROR", [self._index[d]], noise.reset_rate(d))

        for r in range(self.rounds):
            self._append_round(circuit, r)
            self._append_round_detectors(circuit, r)

        self._append_final_readout(circuit)
        self._append_final_detectors(circuit)
        self._append_observable(circuit)
        circuit.validate()
        return circuit

    # ------------------------------------------------------------------
    def _append_round(self, circuit: Circuit, round_index: int) -> None:
        noise = self.noise
        measured = [c for c in self._scheduled
                    if self._measured_this_round(c, round_index)]
        x_ancillas = [c.ancilla for c in measured if c.kind == "X"]

        circuit.append("TICK")
        if x_ancillas:
            circuit.append("H", [self._index[a] for a in x_ancillas])
            for a in x_ancillas:
                circuit.append("DEPOLARIZE1", [self._index[a]], noise.single_qubit_rate(a))

        for phase in range(4):
            pairs: List[int] = []
            pair_coords: List[Tuple[Coord, Coord]] = []
            for item in measured:
                order = _Z_ORDER if item.kind == "Z" else _X_ORDER
                dx, dy = order[phase]
                target = (item.ancilla[0] + dx, item.ancilla[1] + dy)
                if target not in item.data:
                    continue
                if item.kind == "Z":
                    control, victim = target, item.ancilla
                else:
                    control, victim = item.ancilla, target
                pairs.extend((self._index[control], self._index[victim]))
                pair_coords.append((control, victim))
            if pairs:
                circuit.append("CX", pairs)
                for a, b in pair_coords:
                    circuit.append(
                        "DEPOLARIZE2",
                        [self._index[a], self._index[b]],
                        noise.two_qubit_rate(a, b),
                    )

        if x_ancillas:
            circuit.append("H", [self._index[a] for a in x_ancillas])
            for a in x_ancillas:
                circuit.append("DEPOLARIZE1", [self._index[a]], noise.single_qubit_rate(a))

        # Readout errors, then measure-and-reset every scheduled ancilla.
        for item in measured:
            circuit.append("X_ERROR", [self._index[item.ancilla]],
                           noise.readout_rate(item.ancilla))
        for item in measured:
            circuit.append("MR", [self._index[item.ancilla]])
            self._meas_key[(item.ancilla, round_index)] = circuit.num_measurements - 1

        # Idle noise on data qubits while the ancillas are processed.
        if noise.idle_data_factor > 0:
            for d in self.patch.active_data:
                circuit.append("DEPOLARIZE1", [self._index[d]], noise.idle_rate(d))

    # ------------------------------------------------------------------
    def _wants_detectors(self, kind: str) -> bool:
        return self.detector_basis == "both" or self.detector_basis == kind

    def _append_round_detectors(self, circuit: Circuit, round_index: int) -> None:
        # Regular stabilizers: compare to the previous round (or to the
        # deterministic initial value on the first round).
        for item in self._scheduled:
            if item.is_gauge or not self._wants_detectors(item.kind):
                continue
            current = self._meas_key[(item.ancilla, round_index)]
            if round_index == 0:
                if item.kind == self.data_init_basis:
                    circuit.append("DETECTOR", [current])
            else:
                previous = self._meas_key[(item.ancilla, round_index - 1)]
                circuit.append("DETECTOR", [current, previous])

        # Gauge operators: individual comparisons inside a block, product
        # comparisons across blocks.
        for ss in self.patch.super_stabilizers:
            if not self._wants_detectors(ss.kind):
                continue
            if self._block_kind(ss.cluster_id, round_index) != ss.kind:
                continue
            first_round_of_kind = min(
                r for r in range(self.rounds)
                if self._block_kind(ss.cluster_id, r) == ss.kind
            ) if any(self._block_kind(ss.cluster_id, r) == ss.kind
                     for r in range(self.rounds)) else None
            if round_index == first_round_of_kind:
                # First time this gauge type is measured.
                if ss.kind == self.data_init_basis and round_index == 0:
                    for g in ss.gauges:
                        circuit.append("DETECTOR",
                                       [self._meas_key[(g.ancilla, round_index)]])
                continue
            prev_round = max(
                r for r in range(round_index)
                if self._block_kind(ss.cluster_id, r) == ss.kind
            )
            if prev_round == round_index - 1:
                # Same block: individual gauge outcomes are comparable.
                for g in ss.gauges:
                    circuit.append(
                        "DETECTOR",
                        [self._meas_key[(g.ancilla, round_index)],
                         self._meas_key[(g.ancilla, prev_round)]],
                    )
            else:
                # Across an opposite-type block: only the product is reliable.
                targets = []
                for g in ss.gauges:
                    targets.append(self._meas_key[(g.ancilla, round_index)])
                    targets.append(self._meas_key[(g.ancilla, prev_round)])
                circuit.append("DETECTOR", targets)

    # ------------------------------------------------------------------
    def _append_final_readout(self, circuit: Circuit) -> None:
        noise = self.noise
        measure_gate = "M" if self.data_init_basis == "Z" else "MX"
        circuit.append("TICK")
        for d in self.patch.active_data:
            circuit.append("X_ERROR" if measure_gate == "M" else "Z_ERROR",
                           [self._index[d]], noise.readout_rate(d))
        for d in self.patch.active_data:
            circuit.append(measure_gate, [self._index[d]])
            self._final_key[d] = circuit.num_measurements - 1

    def _append_final_detectors(self, circuit: Circuit) -> None:
        # Only checks of the same type as the final measurement basis can be
        # reconstructed from the data readout.
        final_kind = self.data_init_basis
        if not self._wants_detectors(final_kind):
            return
        last_round = self.rounds - 1
        for item in self._scheduled:
            if item.is_gauge or item.kind != final_kind:
                continue
            targets = [self._final_key[d] for d in item.data]
            targets.append(self._meas_key[(item.ancilla, last_round)])
            circuit.append("DETECTOR", targets)
        for ss in self.patch.super_stabilizers:
            if ss.kind != final_kind:
                continue
            rounds_of_kind = [
                r for r in range(self.rounds)
                if self._block_kind(ss.cluster_id, r) == ss.kind
            ]
            if not rounds_of_kind:
                continue
            last = rounds_of_kind[-1]
            targets = [self._final_key[d] for d in ss.product_support]
            for g in ss.gauges:
                targets.append(self._meas_key[(g.ancilla, last)])
            circuit.append("DETECTOR", targets)

    # ------------------------------------------------------------------
    def _append_observable(self, circuit: Circuit) -> None:
        if self.observable in ("logical_z", "logical_x"):
            support = self._logical_support(self.observable)
            targets = [self._final_key[d] for d in support]
            circuit.append("OBSERVABLE_INCLUDE", targets, 0)
        elif self.observable == "stability_z":
            targets = []
            for item in self._scheduled:
                if item.kind != "Z":
                    continue
                if (item.ancilla, 0) in self._meas_key:
                    targets.append(self._meas_key[(item.ancilla, 0)])
            if not targets:
                raise CircuitBuildError("stability observable has no Z checks in round 0")
            circuit.append("OBSERVABLE_INCLUDE", targets, 0)


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def build_memory_circuit(
    patch: "AdaptedPatch",
    noise: CircuitNoiseModel,
    rounds: Optional[int] = None,
    *,
    detector_basis: str = "Z",
) -> Circuit:
    """Memory-Z experiment circuit for an adapted patch.

    ``rounds`` defaults to the patch width (the usual d-round memory
    experiment).
    """
    if rounds is None:
        rounds = patch.layout.size
    builder = SyndromeCircuitBuilder(
        patch, noise, rounds,
        detector_basis=detector_basis,
        data_init_basis="Z",
        observable="logical_z",
    )
    return builder.build()


def build_stability_circuit(
    patch: "AdaptedPatch",
    noise: CircuitNoiseModel,
    rounds: int,
) -> Circuit:
    """Stability experiment circuit (Gidney 2022) for an all-Z-boundary patch."""
    builder = SyndromeCircuitBuilder(
        patch, noise, rounds,
        detector_basis="Z",
        data_init_basis="X",
        observable="stability_z",
    )
    return builder.build()
