"""Rotated surface-code layouts and syndrome-extraction circuits.

The circuit-builder symbols are loaded lazily so that low-level modules
(noise models, the core adaptation code) can import :mod:`.layout` without
pulling in the whole circuit-generation stack, which would create an import
cycle.
"""

from .layout import Check, Coord, RotatedSurfaceCodeLayout, StabilityLayout, plaquette_kind

__all__ = [
    "Check",
    "Coord",
    "RotatedSurfaceCodeLayout",
    "StabilityLayout",
    "plaquette_kind",
    "CircuitBuildError",
    "SyndromeCircuitBuilder",
    "build_memory_circuit",
    "build_stability_circuit",
]

_LAZY = {
    "CircuitBuildError",
    "SyndromeCircuitBuilder",
    "build_memory_circuit",
    "build_stability_circuit",
}


def __getattr__(name):
    if name in _LAZY:
        from . import circuits

        return getattr(circuits, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
