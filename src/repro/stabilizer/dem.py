"""Detector-error-model (DEM) extraction from noisy stabilizer circuits.

A DEM is the decoder-facing summary of a noisy circuit: a list of independent
error mechanisms, each with a probability, the set of detectors it flips and
the set of logical observables it flips.  It plays the role of
``stim.Circuit.detector_error_model(decompose_errors=True)``.

Extraction strategy
-------------------
Pauli-frame propagation is linear over GF(2): the detector signature of a
product of Pauli faults is the XOR of the signatures of its factors.  We
therefore:

1. Enumerate *basis faults* - single-qubit X or Z faults at a specific point
   in the circuit - one for every qubit touched by every noise channel.
2. Propagate **all** basis faults through the remainder of the circuit in a
   single vectorised pass (one column per basis fault), producing a detector
   signature and observable signature for each.
3. Expand each noise channel into its Pauli components (e.g. the 15 equally
   likely two-qubit Paulis of ``DEPOLARIZE2``), compute each component's
   signature as the XOR of its basis-fault signatures, and accumulate
   probabilities.
4. Components that flip more than two detectors are decomposed into their
   constituent basis faults (the standard independent-decomposition
   approximation used by matching decoders), so that every error mechanism in
   the final DEM touches at most two detectors and maps onto a matching-graph
   edge.

Probabilities of mechanisms with identical (detectors, observables) keys are
combined with the XOR rule ``p <- p1 (1-p2) + p2 (1-p1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .circuit import Circuit

__all__ = ["DemError", "DetectorErrorModel", "build_detector_error_model"]


@dataclass(frozen=True)
class DemError:
    """A single independent error mechanism.

    Attributes
    ----------
    probability:
        Probability that this mechanism fires in one shot.
    detectors:
        Sorted tuple of detector indices flipped.
    observables:
        Sorted tuple of logical-observable indices flipped.
    """

    probability: float
    detectors: Tuple[int, ...]
    observables: Tuple[int, ...]

    def is_graphlike(self) -> bool:
        return len(self.detectors) <= 2


@dataclass
class DetectorErrorModel:
    """A collection of independent error mechanisms plus counts."""

    num_detectors: int
    num_observables: int
    errors: List[DemError] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.errors)

    def __iter__(self):
        return iter(self.errors)

    def total_error_probability_bound(self) -> float:
        """Union bound on the probability that any mechanism fires."""
        return float(min(1.0, sum(e.probability for e in self.errors)))

    def undetectable_logical_errors(self) -> List[DemError]:
        """Mechanisms that flip an observable without flipping any detector.

        A correct surface-code circuit should have none of these; their
        presence indicates a distance-0 construction bug.
        """
        return [e for e in self.errors if not e.detectors and e.observables]


def _xor_combine(p1: float, p2: float) -> float:
    """Probability that an odd number of two independent events occurs."""
    return p1 * (1 - p2) + p2 * (1 - p1)


_DEP2_COMPONENTS: List[Tuple[int, ...]] = []
# Basis-fault membership of each of the 15 DEPOLARIZE2 components.
# Basis order per pair: (Xa, Za, Xb, Zb).  Component code c in 1..15 encodes
# (pa, pb) base 4 with 0=I, 1=X, 2=Y, 3=Z.
for _code in range(1, 16):
    _pa, _pb = _code // 4, _code % 4
    members = []
    if _pa in (1, 2):
        members.append(0)
    if _pa in (2, 3):
        members.append(1)
    if _pb in (1, 2):
        members.append(2)
    if _pb in (2, 3):
        members.append(3)
    _DEP2_COMPONENTS.append(tuple(members))


def _enumerate_basis_faults(circuit: Circuit) -> Tuple[List[Tuple[int, int, str]],
                                                       List[Tuple[float, Tuple[int, ...]]]]:
    """Walk the circuit and list basis faults plus channel components.

    Returns
    -------
    basis_faults:
        List of ``(instruction_index, qubit, pauli)`` triples; position in the
        list is the basis-fault id.
    components:
        List of ``(probability, basis_fault_ids)`` tuples, one per Pauli
        component of every noise channel.
    """
    basis_faults: List[Tuple[int, int, str]] = []
    components: List[Tuple[float, Tuple[int, ...]]] = []

    for idx, inst in enumerate(circuit.instructions):
        name = inst.name
        p = inst.arg
        if p == 0.0 and name in ("X_ERROR", "Z_ERROR", "Y_ERROR",
                                 "DEPOLARIZE1", "DEPOLARIZE2"):
            continue
        if name == "X_ERROR":
            for q in inst.targets:
                fid = len(basis_faults)
                basis_faults.append((idx, q, "X"))
                components.append((p, (fid,)))
        elif name == "Z_ERROR":
            for q in inst.targets:
                fid = len(basis_faults)
                basis_faults.append((idx, q, "Z"))
                components.append((p, (fid,)))
        elif name == "Y_ERROR":
            for q in inst.targets:
                fx = len(basis_faults)
                basis_faults.append((idx, q, "X"))
                fz = len(basis_faults)
                basis_faults.append((idx, q, "Z"))
                components.append((p, (fx, fz)))
        elif name == "DEPOLARIZE1":
            for q in inst.targets:
                fx = len(basis_faults)
                basis_faults.append((idx, q, "X"))
                fz = len(basis_faults)
                basis_faults.append((idx, q, "Z"))
                components.append((p / 3, (fx,)))        # X
                components.append((p / 3, (fx, fz)))     # Y
                components.append((p / 3, (fz,)))        # Z
        elif name == "DEPOLARIZE2":
            for a, b in inst.target_pairs():
                base = len(basis_faults)
                basis_faults.append((idx, a, "X"))
                basis_faults.append((idx, a, "Z"))
                basis_faults.append((idx, b, "X"))
                basis_faults.append((idx, b, "Z"))
                for comp in _DEP2_COMPONENTS:
                    components.append((p / 15, tuple(base + m for m in comp)))
    return basis_faults, components


def _propagate_basis_faults(
    circuit: Circuit, basis_faults: Sequence[Tuple[int, int, str]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Propagate every basis fault through the circuit in one vectorised pass.

    Returns boolean arrays ``det_sig`` of shape ``(num_detectors, F)`` and
    ``obs_sig`` of shape ``(num_observables, F)``.
    """
    n = circuit.num_qubits
    f = len(basis_faults)
    x = np.zeros((n, f), dtype=bool)
    z = np.zeros((n, f), dtype=bool)
    meas = np.zeros((circuit.num_measurements, f), dtype=bool)
    det = np.zeros((circuit.num_detectors, f), dtype=bool)
    obs = np.zeros((max(circuit.num_observables, 1), f), dtype=bool)

    # Group basis-fault injections by instruction index for O(1) lookup.
    inject: Dict[int, List[Tuple[int, int, str]]] = {}
    for fid, (idx, q, pauli) in enumerate(basis_faults):
        inject.setdefault(idx, []).append((fid, q, pauli))

    m_idx = 0
    d_idx = 0
    for idx, inst in enumerate(circuit.instructions):
        name = inst.name
        # Inject the basis faults that occur *at* this noise channel before
        # continuing propagation (the fault happens where the channel sits).
        if idx in inject:
            for fid, q, pauli in inject[idx]:
                if pauli == "X":
                    x[q, fid] = True
                else:
                    z[q, fid] = True
        if name == "CX":
            for c, t in inst.target_pairs():
                x[t] ^= x[c]
                z[c] ^= z[t]
        elif name == "H":
            for q in inst.targets:
                x[q], z[q] = z[q].copy(), x[q].copy()
        elif name == "CZ":
            for a, b in inst.target_pairs():
                z[a] ^= x[b]
                z[b] ^= x[a]
        elif name == "S":
            for q in inst.targets:
                z[q] ^= x[q]
        elif name in ("R", "RX"):
            for q in inst.targets:
                x[q] = False
                z[q] = False
        elif name == "M":
            for q in inst.targets:
                meas[m_idx] = x[q]
                m_idx += 1
        elif name == "MX":
            for q in inst.targets:
                meas[m_idx] = z[q]
                m_idx += 1
        elif name == "MR":
            for q in inst.targets:
                meas[m_idx] = x[q]
                x[q] = False
                z[q] = False
                m_idx += 1
        elif name == "DETECTOR":
            acc = np.zeros(f, dtype=bool)
            for mi in inst.targets:
                acc ^= meas[mi]
            det[d_idx] = acc
            d_idx += 1
        elif name == "OBSERVABLE_INCLUDE":
            o = int(inst.arg)
            for mi in inst.targets:
                obs[o] ^= meas[mi]
        # Pauli gates, noise probabilities and TICKs do not move the frame.
    return det, obs[: circuit.num_observables]


def build_detector_error_model(
    circuit: Circuit, decompose: bool = True
) -> DetectorErrorModel:
    """Extract the detector error model of a noisy circuit.

    Parameters
    ----------
    circuit:
        The noisy circuit (detectors and observables already annotated).
    decompose:
        When True (default), error components that flip more than two
        detectors are replaced by their constituent basis faults so that the
        result is graph-like.  When False they are kept as hyperedges.
    """
    circuit.validate()
    basis_faults, components = _enumerate_basis_faults(circuit)
    if not basis_faults:
        return DetectorErrorModel(circuit.num_detectors, circuit.num_observables, [])
    det_sig, obs_sig = _propagate_basis_faults(circuit, basis_faults)

    # Pre-compute sparse signatures per basis fault.
    basis_dets: List[Tuple[int, ...]] = []
    basis_obs: List[Tuple[int, ...]] = []
    for fid in range(len(basis_faults)):
        basis_dets.append(tuple(int(i) for i in np.flatnonzero(det_sig[:, fid])))
        basis_obs.append(tuple(int(i) for i in np.flatnonzero(obs_sig[:, fid])))

    accumulated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}

    def _add(dets: Tuple[int, ...], obs: Tuple[int, ...], p: float) -> None:
        if not dets and not obs:
            return
        key = (dets, obs)
        accumulated[key] = _xor_combine(accumulated.get(key, 0.0), p)

    for p, fault_ids in components:
        if p <= 0.0:
            continue
        det_acc: set[int] = set()
        obs_acc: set[int] = set()
        for fid in fault_ids:
            det_acc ^= set(basis_dets[fid])
            obs_acc ^= set(basis_obs[fid])
        dets = tuple(sorted(det_acc))
        obs = tuple(sorted(obs_acc))
        if len(dets) <= 2 or not decompose:
            _add(dets, obs, p)
        else:
            # Independent decomposition: attribute the component probability
            # to each constituent basis fault separately.
            for fid in fault_ids:
                _add(basis_dets[fid], basis_obs[fid], p)

    errors = [
        DemError(probability=pv, detectors=dets, observables=obs)
        for (dets, obs), pv in sorted(accumulated.items())
        if pv > 0.0
    ]
    return DetectorErrorModel(circuit.num_detectors, circuit.num_observables, errors)
