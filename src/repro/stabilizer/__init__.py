"""Stabilizer-circuit substrate: Pauli algebra, circuit IR, samplers, DEMs.

This subpackage is the in-repo replacement for the Stim simulator used by the
original paper.  See DESIGN.md section 2 for the substitution rationale.
"""

from .circuit import Circuit, Instruction, MeasurementTracker
from .dem import DemError, DetectorErrorModel, build_detector_error_model
from .frame import DetectorSamples, FrameSimulator, sample_detectors
from .packed import (
    PackedDetectorSamples,
    PackedFrameSimulator,
    sample_detectors_packed,
)
from .pauli import PauliString, batch_commutes, commutes, pauli_product
from .tableau import TableauSimulator

__all__ = [
    "Circuit",
    "Instruction",
    "MeasurementTracker",
    "DemError",
    "DetectorErrorModel",
    "build_detector_error_model",
    "DetectorSamples",
    "FrameSimulator",
    "sample_detectors",
    "PackedDetectorSamples",
    "PackedFrameSimulator",
    "sample_detectors_packed",
    "PauliString",
    "pauli_product",
    "commutes",
    "batch_commutes",
    "TableauSimulator",
]
