"""Stabilizer-circuit intermediate representation.

This is the Stim-equivalent circuit language used throughout the library.  A
:class:`Circuit` is an ordered list of :class:`Instruction` objects drawn from
a small gate set that is sufficient for surface-code syndrome extraction:

Clifford gates
    ``H``, ``CX``, ``X``, ``Z``, ``S`` (S is provided for completeness).

State preparation / measurement
    ``R`` (reset to |0>), ``RX`` (reset to |+>), ``M`` (Z-basis measure),
    ``MX`` (X-basis measure), ``MR`` (measure then reset, Z basis).

Pauli noise channels
    ``X_ERROR(p)``, ``Z_ERROR(p)``, ``Y_ERROR(p)``, ``DEPOLARIZE1(p)``,
    ``DEPOLARIZE2(p)``.

Annotations
    ``DETECTOR`` - the XOR of a set of measurement results that is
    deterministic in the absence of noise.  Targets are *absolute*
    measurement-record indices (0-based, in order of appearance).

    ``OBSERVABLE_INCLUDE`` - accumulates measurement results into a logical
    observable, identified by ``observable_index``.

    ``TICK`` - a no-op time boundary, useful for debugging and statistics.

The builder interface (:meth:`Circuit.append`, :class:`MeasurementTracker`)
keeps the representation simple while making it hard to produce an
inconsistent circuit: detectors and observables are validated against the
number of measurements actually present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "Instruction",
    "Circuit",
    "MeasurementTracker",
    "GATE_SET",
    "NOISE_CHANNELS",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "MEASUREMENT_GATES",
    "RESET_GATES",
]

SINGLE_QUBIT_GATES = frozenset({"H", "X", "Z", "S"})
TWO_QUBIT_GATES = frozenset({"CX", "CZ"})
MEASUREMENT_GATES = frozenset({"M", "MX", "MR"})
RESET_GATES = frozenset({"R", "RX"})
NOISE_CHANNELS = frozenset(
    {"X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1", "DEPOLARIZE2"}
)
ANNOTATIONS = frozenset({"DETECTOR", "OBSERVABLE_INCLUDE", "TICK"})

GATE_SET = (
    SINGLE_QUBIT_GATES
    | TWO_QUBIT_GATES
    | MEASUREMENT_GATES
    | RESET_GATES
    | NOISE_CHANNELS
    | ANNOTATIONS
)


@dataclass(frozen=True)
class Instruction:
    """A single circuit instruction.

    Attributes
    ----------
    name:
        One of the names in :data:`GATE_SET`.
    targets:
        Qubit indices for gates/noise, measurement-record indices for
        ``DETECTOR`` / ``OBSERVABLE_INCLUDE``, empty for ``TICK``.
        Two-qubit gates list pairs flattened: ``(c0, t0, c1, t1, ...)``.
    arg:
        Probability for noise channels, observable index for
        ``OBSERVABLE_INCLUDE``, unused otherwise.
    """

    name: str
    targets: Tuple[int, ...] = ()
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in GATE_SET:
            raise ValueError(f"unknown instruction name {self.name!r}")
        if self.name in TWO_QUBIT_GATES or self.name == "DEPOLARIZE2":
            if len(self.targets) % 2 != 0:
                raise ValueError(f"{self.name} requires an even number of targets")
        if self.name in NOISE_CHANNELS and not 0.0 <= self.arg <= 1.0:
            raise ValueError(f"noise probability {self.arg} outside [0, 1]")

    def target_pairs(self) -> List[Tuple[int, int]]:
        """Interpret targets as a flattened list of pairs."""
        return [
            (self.targets[i], self.targets[i + 1]) for i in range(0, len(self.targets), 2)
        ]


class Circuit:
    """An ordered stabilizer circuit with measurement/detector bookkeeping."""

    def __init__(self, num_qubits: int = 0):
        self.num_qubits = int(num_qubits)
        self.instructions: List[Instruction] = []
        self.num_measurements = 0
        self.num_detectors = 0
        self._observable_indices: set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(
        self, name: str, targets: Iterable[int] = (), arg: float = 0.0
    ) -> Instruction:
        """Append an instruction, updating qubit/measurement/detector counts."""
        targets = tuple(int(t) for t in targets)
        inst = Instruction(name, targets, arg)

        if name in (SINGLE_QUBIT_GATES | TWO_QUBIT_GATES | MEASUREMENT_GATES
                    | RESET_GATES | NOISE_CHANNELS):
            if targets:
                self.num_qubits = max(self.num_qubits, max(targets) + 1)
            if name in TWO_QUBIT_GATES or name == "DEPOLARIZE2":
                pairs = inst.target_pairs()
                for a, b in pairs:
                    if a == b:
                        raise ValueError(f"{name} applied to identical qubits {a}")
        if name in MEASUREMENT_GATES:
            self.num_measurements += len(targets)
        if name == "DETECTOR":
            for t in targets:
                if not 0 <= t < self.num_measurements:
                    raise ValueError(
                        f"DETECTOR references measurement {t} but only "
                        f"{self.num_measurements} exist so far"
                    )
            self.num_detectors += 1
        if name == "OBSERVABLE_INCLUDE":
            for t in targets:
                if not 0 <= t < self.num_measurements:
                    raise ValueError(
                        f"OBSERVABLE_INCLUDE references measurement {t} but only "
                        f"{self.num_measurements} exist so far"
                    )
            self._observable_indices.add(int(arg))

        self.instructions.append(inst)
        return inst

    @property
    def num_observables(self) -> int:
        if not self._observable_indices:
            return 0
        return max(self._observable_indices) + 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def count(self, name: str) -> int:
        """Number of instructions with the given name."""
        return sum(1 for inst in self.instructions if inst.name == name)

    def count_targets(self, name: str) -> int:
        """Total number of targets across instructions with the given name."""
        return sum(len(i.targets) for i in self.instructions if i.name == name)

    def noise_channel_count(self) -> int:
        return sum(1 for inst in self.instructions if inst.name in NOISE_CHANNELS)

    def without_noise(self) -> "Circuit":
        """A copy of the circuit with all noise channels removed."""
        out = Circuit(self.num_qubits)
        for inst in self.instructions:
            if inst.name in NOISE_CHANNELS:
                continue
            out.append(inst.name, inst.targets, inst.arg)
        return out

    def detectors(self) -> List[Tuple[int, ...]]:
        """List of measurement-index tuples, one per detector, in order."""
        return [i.targets for i in self.instructions if i.name == "DETECTOR"]

    def observables(self) -> Dict[int, List[int]]:
        """Mapping observable index -> accumulated measurement indices."""
        out: Dict[int, List[int]] = {}
        for inst in self.instructions:
            if inst.name == "OBSERVABLE_INCLUDE":
                out.setdefault(int(inst.arg), []).extend(inst.targets)
        return out

    def validate(self) -> None:
        """Raise ``ValueError`` if the circuit is internally inconsistent."""
        measured = 0
        for inst in self.instructions:
            if inst.name in MEASUREMENT_GATES:
                measured += len(inst.targets)
            if inst.name in ("DETECTOR", "OBSERVABLE_INCLUDE"):
                for t in inst.targets:
                    if t >= measured:
                        raise ValueError(
                            f"{inst.name} references a measurement ({t}) that has "
                            f"not happened yet ({measured} so far)"
                        )
            for t in inst.targets:
                if inst.name not in ("DETECTOR", "OBSERVABLE_INCLUDE") and t >= self.num_qubits:
                    raise ValueError(f"target {t} exceeds num_qubits={self.num_qubits}")
        if measured != self.num_measurements:
            raise ValueError("measurement count bookkeeping is inconsistent")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __str__(self) -> str:
        lines = []
        for inst in self.instructions:
            parts = [inst.name]
            if inst.name in NOISE_CHANNELS or inst.name == "OBSERVABLE_INCLUDE":
                parts.append(f"({inst.arg})")
            if inst.targets:
                parts.append(" " + " ".join(str(t) for t in inst.targets))
            lines.append("".join(parts))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Circuit qubits={self.num_qubits} instructions={len(self.instructions)} "
            f"measurements={self.num_measurements} detectors={self.num_detectors} "
            f"observables={self.num_observables}>"
        )


@dataclass
class MeasurementTracker:
    """Helps circuit builders remember where each labelled measurement landed.

    Builders record measurements under an arbitrary hashable key (for surface
    codes: ``(ancilla_coordinate, round_index)``) and later retrieve the
    absolute measurement-record index to define detectors and observables.
    """

    index_of: Dict[object, int] = field(default_factory=dict)
    history: Dict[object, List[int]] = field(default_factory=dict)
    total: int = 0

    def record(self, key: object) -> int:
        """Register the next measurement under ``key`` and return its index."""
        idx = self.total
        self.total += 1
        self.index_of[key] = idx
        self.history.setdefault(key, []).append(idx)
        return idx

    def get(self, key: object) -> int:
        """Absolute index of the most recent measurement recorded under ``key``."""
        return self.index_of[key]

    def has(self, key: object) -> bool:
        return key in self.index_of

    def all(self, key: object) -> List[int]:
        """All measurement indices ever recorded under ``key``."""
        return list(self.history.get(key, []))
