"""Frozen per-target packed sampler: the pre-vectorisation reference.

This is a verbatim freeze of the ``PackedFrameSimulator.sample`` loop as it
stood before the vectorised instruction dispatch landed: one Python loop
iteration — and one ``rng.random(shots)`` draw per noisy target — per qubit
per instruction.  It exists for the same reason
:mod:`repro.decoder.reference` does:

* the instruction-level equivalence tests check the vectorised sampler
  against it (bit-identity, trace by trace), and
* ``benchmarks/test_sampler_throughput.py`` times it as the per-target
  baseline, so the vectorised sampler cannot accidentally accelerate its
  own yardstick.

Do not "improve" this module; its value is that it never changes.
"""

from __future__ import annotations


import numpy as np

from .bitpack import num_words, pack_bits, unpack_bits
from .circuit import Circuit

__all__ = ["reference_packed_sample"]


def reference_packed_sample(
    circuit: Circuit,
    shots: int,
    seed=None,
    *,
    trace=None,
):
    """Sample ``shots`` with the frozen per-target packed loop.

    Returns a :class:`~repro.stabilizer.packed.PackedDetectorSamples`;
    ``trace`` follows the same per-instruction hook contract as the live
    simulators.
    """
    from .packed import PackedDetectorSamples

    circuit.validate()
    if shots <= 0:
        raise ValueError("shots must be positive")
    rng = np.random.default_rng(seed)
    n = circuit.num_qubits
    nw = num_words(shots)

    x = np.zeros((n, nw), dtype=np.uint64)
    z = np.zeros((n, nw), dtype=np.uint64)
    meas_flips = np.zeros((circuit.num_measurements, nw), dtype=np.uint64)
    detectors = np.zeros((circuit.num_detectors, nw), dtype=np.uint64)
    observables = np.zeros((max(circuit.num_observables, 1), nw), dtype=np.uint64)

    def draw(p: float) -> np.ndarray:
        return pack_bits(rng.random(shots) < p)

    m_idx = 0
    d_idx = 0
    for i_idx, inst in enumerate(circuit.instructions):
        name = inst.name
        t = inst.targets
        if name == "CX":
            for c, tg in inst.target_pairs():
                x[tg] ^= x[c]
                z[c] ^= z[tg]
        elif name == "H":
            for q in t:
                x[q], z[q] = z[q].copy(), x[q].copy()
        elif name == "CZ":
            for a, b in inst.target_pairs():
                z[a] ^= x[b]
                z[b] ^= x[a]
        elif name == "S":
            for q in t:
                z[q] ^= x[q]
        elif name in ("X", "Z"):
            pass
        elif name in ("R", "RX"):
            for q in t:
                x[q] = 0
                z[q] = 0
        elif name == "M":
            for q in t:
                meas_flips[m_idx] = x[q]
                z[q] ^= draw(0.5)
                m_idx += 1
        elif name == "MX":
            for q in t:
                meas_flips[m_idx] = z[q]
                x[q] ^= draw(0.5)
                m_idx += 1
        elif name == "MR":
            for q in t:
                meas_flips[m_idx] = x[q]
                x[q] = 0
                z[q] = 0
                m_idx += 1
        elif name == "X_ERROR":
            for q in t:
                x[q] ^= draw(inst.arg)
        elif name == "Z_ERROR":
            for q in t:
                z[q] ^= draw(inst.arg)
        elif name == "Y_ERROR":
            for q in t:
                flip = draw(inst.arg)
                x[q] ^= flip
                z[q] ^= flip
        elif name == "DEPOLARIZE1":
            for q in t:
                r = rng.random(shots)
                p = inst.arg
                is_x = r < p / 3
                is_y = (r >= p / 3) & (r < 2 * p / 3)
                is_z = (r >= 2 * p / 3) & (r < p)
                x[q] ^= pack_bits(is_x | is_y)
                z[q] ^= pack_bits(is_z | is_y)
        elif name == "DEPOLARIZE2":
            for a, b in inst.target_pairs():
                r = rng.random(shots)
                p = inst.arg
                k = np.full(shots, -1, dtype=np.int8)
                hit = r < p
                k[hit] = (r[hit] / (p / 15)).astype(np.int8)
                np.clip(k, -1, 14, out=k)
                code = k + 1
                pa = code // 4
                pb = code % 4
                x[a] ^= pack_bits((pa == 1) | (pa == 2))
                z[a] ^= pack_bits((pa == 2) | (pa == 3))
                x[b] ^= pack_bits((pb == 1) | (pb == 2))
                z[b] ^= pack_bits((pb == 2) | (pb == 3))
        elif name == "DETECTOR":
            acc = np.zeros(nw, dtype=np.uint64)
            for mi in t:
                acc ^= meas_flips[mi]
            detectors[d_idx] = acc
            d_idx += 1
        elif name == "OBSERVABLE_INCLUDE":
            obs = int(inst.arg)
            for mi in t:
                observables[obs] ^= meas_flips[mi]
        elif name == "TICK":
            pass
        else:  # pragma: no cover - circuit validation prevents this
            raise ValueError(f"unhandled instruction {name}")
        if trace is not None:
            trace(i_idx, inst, unpack_bits(x, shots), unpack_bits(z, shots),
                  unpack_bits(meas_flips, shots) if meas_flips.size
                  else np.zeros((0, shots), dtype=bool))

    num_obs = circuit.num_observables
    return PackedDetectorSamples(
        detectors_packed=detectors,
        observables_packed=observables[:num_obs] if num_obs
        else np.zeros((0, nw), dtype=np.uint64),
        num_shots=shots,
    )
