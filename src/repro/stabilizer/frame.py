"""Vectorised Pauli-frame Monte-Carlo sampler.

This is the workhorse that replaces Stim's detector sampler.  A *Pauli frame*
tracks, for each shot, the Pauli difference between the noisy run and the
noiseless reference run.  Because all gates are Clifford and all noise is
Pauli, the frame propagates through the circuit by simple bit operations and
the flip of each measurement result equals the anticommutation of the frame
with the measured observable on that qubit.

Detectors are defined (by construction of the circuits in this library) to be
deterministic in the absence of noise, so the XOR of measurement *flips*
referenced by a detector directly gives the detector outcome.  The same holds
for logical observables.

The frame is stored as two ``(num_qubits, num_shots)`` boolean arrays so that
every instruction is applied to all shots at once with numpy.

Frame update rules (per qubit ``q``; ``x`` is the X component of the frame,
``z`` the Z component):

==============  ==========================================================
Instruction     Effect on the frame
==============  ==========================================================
``H q``         swap ``x[q]`` and ``z[q]``
``S q``         ``z[q] ^= x[q]``
``X/Z q``       nothing (deterministic Paulis never change the frame)
``CX c t``      ``x[t] ^= x[c]``; ``z[c] ^= z[t]``
``CZ a b``      ``z[a] ^= x[b]``; ``z[b] ^= x[a]``
``R q``         clear ``x[q]`` and ``z[q]`` (reset destroys the error)
``RX q``        clear ``x[q]`` and ``z[q]``
``M q``         record flip ``x[q]``; randomise ``z[q]``
``MX q``        record flip ``z[q]``; randomise ``x[q]``
``MR q``        record flip ``x[q]``; clear both
noise           XOR sampled Paulis into the frame
==============  ==========================================================

The post-measurement randomisation mirrors Stim's frame simulator: after a
collapse the frame component that anticommutes with the collapsed stabilizer
is no longer physically meaningful, and randomising it keeps later
measurements statistically faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .circuit import Circuit

__all__ = ["DetectorSamples", "FrameSimulator", "sample_detectors"]


@dataclass
class DetectorSamples:
    """Sampled detector and observable flip data.

    Attributes
    ----------
    detectors:
        Boolean array of shape ``(num_shots, num_detectors)``.
    observables:
        Boolean array of shape ``(num_shots, num_observables)``.
    """

    detectors: np.ndarray
    observables: np.ndarray

    @property
    def num_shots(self) -> int:
        return int(self.detectors.shape[0])

    @property
    def num_detectors(self) -> int:
        return int(self.detectors.shape[1])

    @property
    def num_observables(self) -> int:
        return int(self.observables.shape[1])

    def detection_fraction(self) -> float:
        """Mean fraction of detectors that fired per shot (a health metric)."""
        if self.detectors.size == 0:
            return 0.0
        return float(self.detectors.mean())


class FrameSimulator:
    """Samples detector/observable flips for a noisy stabilizer circuit."""

    def __init__(self, circuit: Circuit, seed: int | None = None):
        circuit.validate()
        self.circuit = circuit
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample(self, shots: int, *, trace=None) -> DetectorSamples:
        """Run ``shots`` Monte-Carlo samples of the circuit.

        ``trace``, if given, is called after every instruction with
        ``(instruction_index, instruction, x, z, meas_flips)`` — the same
        hook :class:`~repro.stabilizer.packed.PackedFrameSimulator` offers,
        which is how the test suite checks that the packed and unpacked
        simulators agree instruction by instruction.

        ``shots=0`` returns an empty sample without consuming RNG state —
        the same zero-shot contract as the packed simulator, so engine
        shard math may pass degenerate requests through either.
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        if shots == 0:
            return DetectorSamples(
                detectors=np.zeros((0, self.circuit.num_detectors), dtype=bool),
                observables=np.zeros((0, self.circuit.num_observables), dtype=bool),
            )
        circuit = self.circuit
        n = circuit.num_qubits
        rng = self.rng

        x = np.zeros((n, shots), dtype=bool)
        z = np.zeros((n, shots), dtype=bool)
        meas_flips = np.zeros((circuit.num_measurements, shots), dtype=bool)
        detectors = np.zeros((circuit.num_detectors, shots), dtype=bool)
        observables = np.zeros((max(circuit.num_observables, 1), shots), dtype=bool)

        m_idx = 0
        d_idx = 0
        for i_idx, inst in enumerate(circuit.instructions):
            name = inst.name
            t = inst.targets
            if name == "CX":
                for c, tg in inst.target_pairs():
                    x[tg] ^= x[c]
                    z[c] ^= z[tg]
            elif name == "H":
                for q in t:
                    x[q], z[q] = z[q].copy(), x[q].copy()
            elif name == "CZ":
                for a, b in inst.target_pairs():
                    z[a] ^= x[b]
                    z[b] ^= x[a]
            elif name == "S":
                for q in t:
                    z[q] ^= x[q]
            elif name in ("X", "Z"):
                pass
            elif name in ("R", "RX"):
                for q in t:
                    x[q] = False
                    z[q] = False
            elif name == "M":
                for q in t:
                    meas_flips[m_idx] = x[q]
                    z[q] ^= rng.random(shots) < 0.5
                    m_idx += 1
            elif name == "MX":
                for q in t:
                    meas_flips[m_idx] = z[q]
                    x[q] ^= rng.random(shots) < 0.5
                    m_idx += 1
            elif name == "MR":
                for q in t:
                    meas_flips[m_idx] = x[q]
                    x[q] = False
                    z[q] = False
                    m_idx += 1
            elif name == "X_ERROR":
                for q in t:
                    x[q] ^= rng.random(shots) < inst.arg
            elif name == "Z_ERROR":
                for q in t:
                    z[q] ^= rng.random(shots) < inst.arg
            elif name == "Y_ERROR":
                for q in t:
                    flip = rng.random(shots) < inst.arg
                    x[q] ^= flip
                    z[q] ^= flip
            elif name == "DEPOLARIZE1":
                for q in t:
                    r = rng.random(shots)
                    p = inst.arg
                    # Equal chance p/3 for each of X, Y, Z.
                    is_x = r < p / 3
                    is_y = (r >= p / 3) & (r < 2 * p / 3)
                    is_z = (r >= 2 * p / 3) & (r < p)
                    x[q] ^= is_x | is_y
                    z[q] ^= is_z | is_y
            elif name == "DEPOLARIZE2":
                for a, b in inst.target_pairs():
                    r = rng.random(shots)
                    p = inst.arg
                    # Uniform over the 15 non-identity two-qubit Paulis.
                    k = np.full(shots, -1, dtype=np.int8)
                    hit = r < p
                    k[hit] = (r[hit] / (p / 15)).astype(np.int8)
                    np.clip(k, -1, 14, out=k)
                    # Encode k+1 in base 4: (pa, pb) with 0=I,1=X,2=Y,3=Z.
                    code = k + 1
                    pa = code // 4
                    pb = code % 4
                    x[a] ^= (pa == 1) | (pa == 2)
                    z[a] ^= (pa == 2) | (pa == 3)
                    x[b] ^= (pb == 1) | (pb == 2)
                    z[b] ^= (pb == 2) | (pb == 3)
            elif name == "DETECTOR":
                acc = np.zeros(shots, dtype=bool)
                for mi in t:
                    acc ^= meas_flips[mi]
                detectors[d_idx] = acc
                d_idx += 1
            elif name == "OBSERVABLE_INCLUDE":
                obs = int(inst.arg)
                for mi in t:
                    observables[obs] ^= meas_flips[mi]
            elif name == "TICK":
                pass
            else:  # pragma: no cover - circuit validation prevents this
                raise ValueError(f"unhandled instruction {name}")
            if trace is not None:
                trace(i_idx, inst, x.copy(), z.copy(), meas_flips.copy())

        num_obs = self.circuit.num_observables
        return DetectorSamples(
            detectors=detectors.T.copy(),
            observables=observables[:num_obs].T.copy() if num_obs else
            np.zeros((shots, 0), dtype=bool),
        )

    # ------------------------------------------------------------------
    def sample_noiseless_check(self) -> bool:
        """Return True if all detectors are zero when noise is removed.

        This is the key self-consistency check used by the test suite: every
        detector annotation must be deterministic in the absence of noise.
        """
        noiseless = self.circuit.without_noise()
        sim = FrameSimulator(noiseless, seed=0)
        samples = sim.sample(shots=8)
        return not bool(samples.detectors.any() or samples.observables.any())


def sample_detectors(circuit: Circuit, shots: int, seed: int | None = None) -> DetectorSamples:
    """Convenience wrapper: sample detector data for ``circuit``."""
    return FrameSimulator(circuit, seed=seed).sample(shots)
