"""Bit-packed Pauli-frame sampler: the pipeline-facing twin of ``frame.py``.

:class:`PackedFrameSimulator` implements exactly the same frame-update rules
as :class:`~repro.stabilizer.frame.FrameSimulator` (see that module's table)
but stores the X/Z frame components, the measurement-flip record and the
detector/observable outputs as little-endian ``uint64`` bit rows
(:mod:`~repro.stabilizer.bitpack`): one word carries 64 shots.

Instruction dispatch is **vectorised**: at construction the circuit is
compiled into a small program whose ops carry precomputed target index
arrays, per-row noise probabilities, flattened measurement maps and
read/write-hazard-free two-qubit groups, so each op executes as one (or a
few) whole-array numpy kernels instead of a per-target Python loop:

* noise channels draw their variates per *op* with
  ``rng.random((rows, shots))`` — C-order row fill reproduces the
  per-target sequential draw order exactly — into a reused scratch buffer,
  and turn them into packed flip rows by whole-matrix packing
  (:func:`~repro.stabilizer.bitpack.pack_rows`);
* the depolarizing channels additionally pick a *sparse* strategy below
  ``_SPARSE_P_MAX``: the packed hit mask is scanned at word granularity
  (64 lanes per compare), only the few hit words are expanded to lane
  indices, and the per-lane Pauli choice is computed on those lanes alone
  before XOR-scattering single bits into the frame — at p = 1e-3 fewer
  than 0.1% of lanes flip, so full-lane Pauli arithmetic is almost all
  wasted memory traffic;
* draws are *row-blocked* (``_BLOCK_BYTES``): an op covering many targets
  draws consecutive row blocks instead of one giant matrix, which keeps
  the float64 scratch inside the cache sweet spot without touching draw
  order (block rows concatenate in exactly the C order of the full draw);
* gate updates are fancy-indexed XORs on target index arrays
  (``x[tgt] ^= x[ctrl]``), with CX/CZ pair lists split greedily into
  duplicate-free groups so chained pairs keep their sequential meaning;
* DETECTOR / OBSERVABLE_INCLUDE reduce with ``np.bitwise_xor.reduceat`` /
  ``np.bitwise_xor.reduce`` over measurement-index arrays resolved at
  compile time;
* runs of *consecutive same-channel instructions* (the dominant shape in
  the surface-code circuits, which emit one-target noise instructions) fuse
  into a single op — RNG draw order is unchanged because the fused block
  draw fills rows in exactly the per-instruction order.

Noise draws consume the **same** ``rng`` variates in the **same order** as
the unpacked simulator, so a packed run is bit-identical to an unpacked run
with the same seed; the test suite checks this instruction by instruction
via the ``trace`` hooks, and against the frozen per-target loop in
:mod:`repro.stabilizer.reference`.  When a ``trace`` hook is given, the
simulator switches to a stepwise program (one op per instruction, still
vectorised within the instruction) so the hook keeps firing after every
instruction with identical dense views.

**Fast RNG mode** (``rng_mode="bitgen"``): the default ``"exact"`` mode is
RNG-generation-bound at large shot counts — every noise row burns ``shots``
float64 variates just to compare them against p.  The opt-in bitgen mode
draws noise at the *bit level* instead:

* each noise row draws ``_BITGEN_K`` (12) raw ``uint64`` words per packed
  shot word off a fast ``SFC64`` stream and combines them by the binary
  expansion of ``m = ceil(p * 2**K)`` — starting from zero and folding the
  words least-significant-bit-first (``out = w | out`` where the bit of
  ``m`` is set, ``w & out`` where it is clear) realises a packed Bernoulli
  mask with ``P(bit) = m / 2**K >= p`` directly in packed form — ~5x fewer
  random bytes and no float scratch, compare or packing pass at all (rows
  sharing one ``p``, the overwhelmingly common fused-channel shape, fold
  with whole-array in-place ops);
* a **residual-correction pass** makes any ``p`` exact: every coarse
  candidate lane draws one double ``u`` from a separate thinning stream and
  survives iff ``u * p_hi < p`` (so ``P = p_hi * p/p_hi = p`` exactly); the
  surviving draw ``u * p_hi`` is uniform on ``[0, p)`` and picks the Pauli
  for the depolarizing channels with the same arithmetic as the exact
  sparse path;
* measurement randomisation is ``p = 1/2`` exactly — one raw word per 64
  lanes, no correction pass;
* the word stream and the thinning stream are two child streams of the
  sampler seed, so word consumption never depends on the (data-dependent)
  number of thinning draws: bitgen results are invariant to instruction
  fusion, ``trace`` hooks and row-block splits, and remain deterministic
  per seed across processes and hosts.

Bitgen mode consumes a **different** (still deterministic) RNG stream than
exact mode, so it is statistically equivalent but not bit-identical — which
is why the engine carries it as a task-spec field that flows into content
hashes and is never the default (see ``LerPointTask.rng_mode``).

The sampler returns :class:`PackedDetectorSamples`, which keeps the packed
rows and offers

* dense compatibility copies (``.detectors`` / ``.observables``) matching
  :class:`~repro.stabilizer.frame.DetectorSamples`, so existing callers keep
  working, and
* *sparse syndrome extraction* (:meth:`PackedDetectorSamples.fired_detectors`
  / :meth:`PackedDetectorSamples.flipped_observables`): per-shot tuples of
  fired detector indices, which is what the deduplicating batch decoders
  consume.  At low physical error rates most rows are empty or nearly so,
  and the index lists are far smaller than dense rows.

**Heterogeneous task fusion**: :class:`FusedProgram` concatenates the
compiled programs of several simulators (one per sweep task) into one
invocation that samples every segment back to back against a shared
:class:`DrawScratch`, so a many-small-circuit sweep pays one dispatch and
one scratch allocation for N tasks instead of N of each.  Segment RNG
streams are untouched — fused output is bit-identical to running each
segment alone (see the class docstring for the contract).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .bitpack import WORD_BITS, num_words, pack_rows, unpack_bits
from .circuit import Circuit
from .frame import DetectorSamples

__all__ = ["DrawScratch", "FusedProgram", "PackedDetectorSamples",
           "PackedFrameSimulator", "RNG_MODES", "fused_shot_budget",
           "sample_detectors_packed"]

#: Supported RNG modes: ``"exact"`` reproduces the paper-exact per-target
#: draw stream bit-for-bit; ``"bitgen"`` is the opt-in fast bit-level
#: Bernoulli stream (statistically equivalent, different variates).
RNG_MODES = ("exact", "bitgen")

# Trace hook signature shared with FrameSimulator: called after every
# instruction with (instruction_index, instruction, x_bool, z_bool,
# meas_flips_bool) where the arrays are dense ``(rows, shots)`` booleans.
TraceHook = Callable[[int, object, np.ndarray, np.ndarray, np.ndarray], None]


@dataclass
class PackedDetectorSamples:
    """Detector/observable flip data in packed bit rows.

    ``detectors_packed`` has shape ``(num_detectors, num_words)`` and
    ``observables_packed`` shape ``(num_observables, num_words)``; bit
    ``s % 64`` of word ``s // 64`` is shot ``s``.
    """

    detectors_packed: np.ndarray
    observables_packed: np.ndarray
    num_shots: int

    @property
    def num_detectors(self) -> int:
        return int(self.detectors_packed.shape[0])

    @property
    def num_observables(self) -> int:
        return int(self.observables_packed.shape[0])

    # -- dense compatibility copies ------------------------------------
    @property
    def detectors(self) -> np.ndarray:
        """Dense ``(shots, num_detectors)`` boolean copy (unpacked on demand).

        A fresh array per access — mutating it never touches the packed
        rows, so cache it if you read it in a loop.
        """
        if self.num_detectors == 0:
            return np.zeros((self.num_shots, 0), dtype=bool)
        return unpack_bits(self.detectors_packed, self.num_shots).T.copy()

    @property
    def observables(self) -> np.ndarray:
        """Dense ``(shots, num_observables)`` boolean copy (unpacked on demand)."""
        if self.num_observables == 0:
            return np.zeros((self.num_shots, 0), dtype=bool)
        return unpack_bits(self.observables_packed, self.num_shots).T.copy()

    def to_detector_samples(self) -> DetectorSamples:
        """Fully unpacked :class:`DetectorSamples` (legacy-shaped)."""
        return DetectorSamples(detectors=self.detectors, observables=self.observables)

    def detection_fraction(self) -> float:
        """Mean fraction of detectors that fired per shot (a health metric)."""
        if self.num_detectors == 0 or self.num_shots == 0:
            return 0.0
        from .bitpack import popcount

        return popcount(self.detectors_packed) / (self.num_detectors * self.num_shots)

    # -- sparse extraction ---------------------------------------------
    def _sparse_rows(self, packed: np.ndarray, start: int, stop: int) -> List[Tuple[int, ...]]:
        """Per-shot sorted index tuples for shots ``start..stop`` of a row set.

        Only the words covering the requested shot range are unpacked, so a
        chunked consumer never materialises the full dense matrix.
        """
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= self.num_shots:
            raise ValueError(f"shot range [{start}, {stop}) outside 0..{self.num_shots}")
        n = stop - start
        if n == 0:
            return []
        if packed.shape[0] == 0:
            return [() for _ in range(n)]
        word_lo = start // WORD_BITS
        word_hi = num_words(stop)
        bits = unpack_bits(packed[:, word_lo:word_hi], (word_hi - word_lo) * WORD_BITS)
        window = bits[:, start - word_lo * WORD_BITS: start - word_lo * WORD_BITS + n]
        rows, cols = np.nonzero(window.T)  # (shot, index) pairs, shot-major
        out: List[Tuple[int, ...]] = [()] * n
        if rows.size:
            split_at = np.searchsorted(rows, np.arange(1, n))
            for shot, idx in enumerate(np.split(cols, split_at)):
                if idx.size:
                    out[shot] = tuple(int(i) for i in idx)
        return out

    def fired_detectors(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[int, ...]]:
        """Sparse syndromes: one sorted tuple of fired detectors per shot."""
        stop = self.num_shots if stop is None else stop
        return self._sparse_rows(self.detectors_packed, start, stop)

    def flipped_observables(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[int, ...]]:
        """One sorted tuple of flipped observable indices per shot."""
        stop = self.num_shots if stop is None else stop
        return self._sparse_rows(self.observables_packed, start, stop)


# ----------------------------------------------------------------------
# Compiled program
# ----------------------------------------------------------------------
# An op is (kind, first_instruction_index, data).  In the fused program one
# op may cover a run of consecutive same-channel instructions; the stepwise
# program (used when a trace hook is installed) has exactly one op per
# instruction so the hook contract is preserved.

# Instruction families whose consecutive runs may fuse into one op without
# changing RNG draw order or frame semantics (all are either draw-free and
# idempotent/parity-reducible, or pure XOR scatters of fresh variates).
_FUSABLE = frozenset({
    "RESET", "H", "S", "M", "MX", "MR", "DETECTOR",
    "X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1", "DEPOLARIZE2",
})

# Cap on the float64 scratch of one noise-draw block.  Fused ops covering
# hundreds of targets at tens of thousands of shots would otherwise
# materialise ~100MB temporaries per op and lose to cache misses what they
# won in dispatch.
_BLOCK_BYTES = 8 << 20

# Depolarizing channels whose probabilities never exceed this use the
# sparse flip strategy (hit words -> lane indices -> per-lane Pauli choice
# -> per-bit XOR scatter); denser channels compute the Pauli choice on
# every lane and pack whole rows.  Both strategies are bit-exact.
_SPARSE_P_MAX = 0.02


def _row_blocks(rows: int, shots: int):
    """Split ``rows`` draw rows into blocks of bounded float64 footprint."""
    step = max(1, _BLOCK_BYTES // max(shots * 8, 1))
    return ((s, min(s + step, rows)) for s in range(0, rows, step))


def _fuse_key(name: str) -> str:
    # R and RX clear both frame components identically, so they fuse as one
    # family.
    return "RESET" if name in ("R", "RX") else name


def _idx(values: Sequence[int]) -> np.ndarray:
    return np.asarray(list(values), dtype=np.intp)


def _has_dup(arr: np.ndarray) -> bool:
    return arr.size != np.unique(arr).size


def _pair_groups(pairs: List[Tuple[int, int]]) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split an ordered pair list into hazard-free fancy-index groups.

    Within a group every qubit appears at most once, so gathering all reads
    before scattering all writes reproduces the sequential per-pair update;
    a chained pair (reusing a qubit of an earlier pair) starts a new group.
    """
    groups: List[Tuple[np.ndarray, np.ndarray]] = []
    left: List[int] = []
    right: List[int] = []
    used: set = set()
    for a, b in pairs:
        if a in used or b in used:
            groups.append((_idx(left), _idx(right)))
            left, right, used = [], [], set()
        left.append(a)
        right.append(b)
        used.add(a)
        used.add(b)
    if left:
        groups.append((_idx(left), _idx(right)))
    return groups


def _odd_multiplicity(targets: List[int]) -> np.ndarray:
    """Targets appearing an odd number of times (even repeats cancel)."""
    arr = _idx(targets)
    qs, counts = np.unique(arr, return_counts=True)
    return qs[counts % 2 == 1]


# Op kinds that consume RNG rows (used to size the shared draw scratch).
_DRAW_KINDS = frozenset({"m", "mx", "xerr", "zerr", "yerr", "dep1", "dep2"})

# Fixed-point precision of the bitgen coarse Bernoulli masks: a noise row
# always combines exactly this many raw uint64 words per packed shot word,
# regardless of p, so word-stream consumption is a pure function of the
# compiled rows and never of the drawn data.  16 bits keeps the coarse
# overshoot (and therefore the thinning-candidate surplus) below 2**-16 per
# lane while still drawing 4x fewer raw words than the exact float stream.
_BITGEN_K = 12

# Noise-channel op kinds that build a coarse bitgen mask (M/MX are exactly
# p = 1/2 and draw single raw words instead).
_BITGEN_CHANNELS = frozenset({"xerr", "zerr", "yerr", "dep1", "dep2"})


def _raw_words(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` uniform ``uint64`` words straight off the bit generator."""
    bg = rng.bit_generator
    if hasattr(bg, "random_raw"):
        return bg.random_raw(n)
    # Exotic bit generators without random_raw (never numpy's defaults):
    # full-range integers draw one word per call just the same.
    return rng.integers(0, np.iinfo(np.uint64).max, size=n,
                        dtype=np.uint64, endpoint=True)


def _compile_bitgen_channel(pflat: np.ndarray) -> tuple:
    """Per-row fixed-point data for a bitgen coarse-mask channel.

    Returns ``(mbits, full, p_hi, ubits)``: ``mbits[j, row]`` is bit ``j``
    of ``m_row = ceil(p_row * 2**K)`` (LSB first — the combine order),
    ``full`` flags rows whose coarse mask saturates to all-ones
    (``m >= 2**K``, i.e. p within 2**-K of 1), and ``p_hi = m / 2**K`` is
    the exact coarse probability the correction pass thins down from.
    ``p_hi >= p`` always holds: scaling by a power of two is exact in
    binary floating point, so ``ceil`` can never land below ``p * 2**K``.

    When every row shares one ``m`` (the usual fused-channel shape under a
    uniform noise model) ``ubits`` carries that single bit pattern so the
    fold can run whole-array in-place ops instead of per-row boolean
    selections; otherwise ``ubits`` is ``None``.
    """
    scale = 1 << _BITGEN_K
    m = np.ceil(pflat * scale).astype(np.int64)
    np.clip(m, 0, scale, out=m)
    full = m >= scale
    p_hi = m / float(scale)
    work = np.where(full, 0, m)
    shifts = np.arange(_BITGEN_K, dtype=np.int64)
    mbits = ((work[None, :] >> shifts[:, None]) & 1).astype(bool)
    ubits = None
    if m.size and bool(np.all(m == m[0])):
        ubits = tuple(bool(b) for b in mbits[:, 0])
    return mbits, (full if bool(full.any()) else None), p_hi, ubits


def _compile_bitgen_aux(ops: List[Tuple[str, int, tuple]]) -> dict:
    """Coarse-mask data for every channel op of a compiled program."""
    aux = {}
    for idx, (kind, _first, data) in enumerate(ops):
        if kind in _BITGEN_CHANNELS:
            pflat = data[2] if kind == "dep2" else data[1]
            aux[idx] = _compile_bitgen_channel(pflat)
    return aux


def _tail_mask(shots: int) -> np.uint64:
    """Mask keeping only the first ``shots % 64`` lanes of the last word.

    Bitgen draws whole words, so without this the ghost lanes beyond
    ``shots`` would accumulate frame bits and corrupt word-granular
    consumers (popcounts, detection fractions).  Exact mode never needs it:
    per-shot draws simply stop at ``shots``.
    """
    rem = shots % WORD_BITS
    return np.uint64((1 << rem) - 1) if rem else np.uint64(0xFFFFFFFFFFFFFFFF)


def _bitgen_mask(wrng: np.random.Generator, aux: tuple, i0: int, i1: int,
                 nw: int, tail: np.uint64) -> np.ndarray:
    """Packed coarse Bernoulli(p_hi) mask for draw rows ``[i0, i1)``.

    Folds the fresh words least-significant-bit first: after processing bit
    ``j`` the lane probability is ``(m >> j << j) / 2**K`` restricted to the
    bits seen so far, so the full pass realises exactly ``m / 2**K``.  Rows
    draw their words in C order (row-major), which is what makes block
    splits and stepwise programs consume the identical word stream.
    """
    mbits, full, _p_hi, ubits = aux
    rows = i1 - i0
    raw = _raw_words(wrng, rows * _BITGEN_K * nw).reshape(rows, _BITGEN_K, nw)
    if ubits is not None and True in ubits:
        # Uniform-m fast path: one bit pattern for every row, so each fold
        # layer is a whole-array in-place op.  Layers below the lowest set
        # bit AND into an all-zero mask — skipping their *compute* changes
        # nothing, and their words were consumed by the block draw above,
        # so the stream stays put.
        j0 = ubits.index(True)
        out = raw[:, j0].copy()
        for j in range(j0 + 1, _BITGEN_K):
            if ubits[j]:
                np.bitwise_or(out, raw[:, j], out=out)
            else:
                np.bitwise_and(out, raw[:, j], out=out)
    else:
        out = np.zeros((rows, nw), dtype=np.uint64)
        for j in range(_BITGEN_K):
            b = mbits[j, i0:i1]
            out[b] |= raw[b, j]
            nb = ~b
            out[nb] &= raw[nb, j]
    if full is not None:
        out[full[i0:i1]] = np.uint64(0xFFFFFFFFFFFFFFFF)
    out[:, -1] &= tail
    return out


def _draw_scratch(rows: int, shots: int) -> Tuple[np.ndarray, np.ndarray]:
    """Allocate the shared exact-mode draw/compare scratch, validated once.

    ``rng.random(out=...)`` requires a C-contiguous float64 target and
    would otherwise re-derive that fact on every op x row-block call; a
    freshly allocated 2-D array satisfies it by construction, and row
    slices ``buf[:k]`` of a C-contiguous array stay C-contiguous, so one
    explicit check here covers every per-block view the hot loop takes.
    """
    rbuf = np.empty((rows, shots))
    hbuf = np.empty((rows, shots), dtype=bool)
    if rbuf.dtype != np.float64 or not rbuf.flags.c_contiguous:
        raise AssertionError("draw scratch must be C-contiguous float64")
    if hbuf.dtype != np.bool_ or not hbuf.flags.c_contiguous:
        raise AssertionError("hit scratch must be C-contiguous bool")
    return rbuf, hbuf


class DrawScratch:
    """Reusable exact-mode draw/compare scratch shared across sampler calls.

    The fused execution layer runs several compiled programs back to back in
    one worker invocation; each call would otherwise allocate (and fault in)
    its own multi-MB :func:`_draw_scratch`.  A ``DrawScratch`` keeps one
    flat float64 buffer and one flat bool buffer, growing them on demand,
    and hands out ``(rows, shots)`` views of their prefixes.  Reshaping the
    prefix of a flat C-contiguous array yields a C-contiguous view — the
    property ``rng.random(out=...)`` requires — so segments with *different*
    shot counts can share the same bytes.

    Sharing can never change a drawn variate: every view is fully
    overwritten by ``rng.random(out=...)`` / ``np.less(..., out=...)``
    before it is read, so bit-identity with per-call allocation is
    structural, not statistical.
    """

    __slots__ = ("_rflat", "_hflat")

    def __init__(self) -> None:
        self._rflat: Optional[np.ndarray] = None
        self._hflat: Optional[np.ndarray] = None

    def view(self, rows: int, shots: int) -> Tuple[np.ndarray, np.ndarray]:
        """C-contiguous ``(rows, shots)`` float64/bool views, grown on demand."""
        n = rows * shots
        if self._rflat is None or self._rflat.size < n:
            self._rflat = np.empty(n)
            self._hflat = np.empty(n, dtype=bool)
        rbuf = self._rflat[:n].reshape(rows, shots)
        hbuf = self._hflat[:n].reshape(rows, shots)
        if rbuf.dtype != np.float64 or not rbuf.flags.c_contiguous:
            raise AssertionError("draw scratch must be C-contiguous float64")
        if hbuf.dtype != np.bool_ or not hbuf.flags.c_contiguous:
            raise AssertionError("hit scratch must be C-contiguous bool")
        return rbuf, hbuf


def fused_shot_budget() -> int:
    """Largest per-segment shot count a fused shard-group may carry.

    One draw-scratch row holds ``shots`` float64 variates; past
    ``_BLOCK_BYTES // 8`` shots even a single row outgrows the blocked-draw
    cache budget, and an oversized segment would force the *shared* scratch
    every other segment inherits to grow with it.  The fusion planner
    (:func:`repro.engine.executor._plan_fused_groups`) clamps such shards
    out of fused groups — they dispatch as plain singletons instead.
    """
    return _BLOCK_BYTES // 8


def _compile_program(circuit: Circuit, fuse: bool) -> Tuple[List[Tuple[str, int, tuple]], int]:
    """Lower the circuit to vectorised ops (index arrays resolved once).

    Returns ``(ops, max_draw_rows)`` where ``max_draw_rows`` is the largest
    number of RNG rows any single op draws — the scratch-buffer bound.
    """
    insts = circuit.instructions
    ops: List[Tuple[str, int, tuple]] = []
    m_idx = 0
    d_idx = 0
    i = 0
    n = len(insts)
    while i < n:
        name = insts[i].name
        key = _fuse_key(name)
        j = i + 1
        if fuse and key in _FUSABLE:
            while j < n and _fuse_key(insts[j].name) == key:
                j += 1
        group = insts[i:j]
        targets = [q for inst in group for q in inst.targets]

        if key in ("CX", "CZ"):
            pairs = group[0].target_pairs()
            ops.append(("nop", i, ()) if not pairs
                       else (key.lower(), i, (_pair_groups(pairs),)))
        elif key == "H":
            odd = _odd_multiplicity(targets)
            ops.append(("h", i, (odd,)) if odd.size else ("nop", i, ()))
        elif key == "S":
            odd = _odd_multiplicity(targets)
            ops.append(("s", i, (odd,)) if odd.size else ("nop", i, ()))
        elif key == "RESET":
            ops.append(("reset", i, (np.unique(_idx(targets)),)) if targets
                       else ("nop", i, ()))
        elif key in ("M", "MX"):
            k = len(targets)
            if k:
                tgt = _idx(targets)
                ops.append((key.lower(), i, (tgt, m_idx, _has_dup(tgt))))
            else:
                ops.append(("nop", i, ()))
            m_idx += k
        elif key == "MR":
            k = len(targets)
            if not k:
                ops.append(("nop", i, ()))
            elif len(set(targets)) != k:
                # A repeated qubit must observe its own reset mid-run; keep
                # the sequential semantics for this (pathological) shape.
                ops.append(("mr_seq", i, (tuple(targets), m_idx)))
            else:
                ops.append(("mr", i, (_idx(targets), m_idx)))
            m_idx += k
        elif key in ("X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1"):
            if targets:
                tgt = _idx(targets)
                pflat = np.array([inst.arg for inst in group
                                  for _ in inst.targets], dtype=np.float64)
                kind = {"X_ERROR": "xerr", "Z_ERROR": "zerr",
                        "Y_ERROR": "yerr", "DEPOLARIZE1": "dep1"}[key]
                data = (tgt, pflat, _has_dup(tgt))
                if kind == "dep1":
                    data += (float(pflat.max()) <= _SPARSE_P_MAX,)
                ops.append((kind, i, data))
            else:
                ops.append(("nop", i, ()))
        elif key == "DEPOLARIZE2":
            pairs = [(a, b) for inst in group for a, b in inst.target_pairs()]
            if pairs:
                a_arr = _idx([a for a, _ in pairs])
                b_arr = _idx([b for _, b in pairs])
                pflat = np.array([inst.arg for inst in group
                                  for _ in inst.target_pairs()], dtype=np.float64)
                ops.append(("dep2", i, (a_arr, b_arr, pflat,
                                        _has_dup(a_arr), _has_dup(b_arr),
                                        float(pflat.max()) <= _SPARSE_P_MAX)))
            else:
                ops.append(("nop", i, ()))
        elif key == "DETECTOR":
            rows: List[int] = []
            flat: List[int] = []
            offsets: List[int] = []
            for off, inst in enumerate(group):
                if inst.targets:  # empty detectors keep their all-zero row
                    rows.append(d_idx + off)
                    offsets.append(len(flat))
                    flat.extend(inst.targets)
            d_idx += len(group)
            ops.append(("det", i, (_idx(flat), _idx(offsets), _idx(rows)))
                       if rows else ("nop", i, ()))
        elif key == "OBSERVABLE_INCLUDE":
            inst = group[0]
            ops.append(("obs", i, (_idx(inst.targets), int(inst.arg)))
                       if inst.targets else ("nop", i, ()))
        elif key in ("X", "Z", "TICK"):
            # Deterministic Paulis / time markers: no-ops on the frame.
            ops.append(("nop", i, ()))
        else:  # pragma: no cover - circuit validation prevents this
            raise ValueError(f"unhandled instruction {name}")
        i = j

    max_draw_rows = max((op[2][0].size for op in ops if op[0] in _DRAW_KINDS),
                        default=0)
    return ops, max_draw_rows


def _xor_scatter(dest: np.ndarray, idx: np.ndarray, rows: np.ndarray,
                 dup: bool) -> None:
    """``dest[idx] ^= rows``, falling back to the unbuffered ufunc when
    ``idx`` holds duplicates (buffered fancy XOR would drop all but one)."""
    if dup:
        np.bitwise_xor.at(dest, idx, rows)
    else:
        dest[idx] ^= rows


def _scatter_bits(dest: np.ndarray, qubits: np.ndarray, cols: np.ndarray) -> None:
    """Flip shot-bit ``cols[j]`` of packed row ``qubits[j]`` for every ``j``.

    The sparse-strategy scatter: unbuffered per-lane XOR, so repeated
    (qubit, shot) flips cancel exactly like sequential mask XORs.
    """
    words = cols >> 6
    bits = np.uint64(1) << (cols & 63).astype(np.uint64)
    np.bitwise_xor.at(dest, (qubits, words), bits)


def _hit_lanes(hit_words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(row, shot) indices of set bits in packed hit rows, C order.

    Scans at word granularity (64 lanes per element) and expands only the
    hit words to bit positions — the low-p fast path that replaces a
    ``nonzero`` pass over the full boolean mask.
    """
    wr, wc = np.nonzero(hit_words)
    if not wr.size:
        return wr, wc
    bits = np.unpackbits(hit_words[wr, wc].view(np.uint8).reshape(-1, 8),
                         axis=1, bitorder="little")
    sel, bitpos = np.nonzero(bits)
    return wr[sel], wc[sel] * WORD_BITS + bitpos


class PackedFrameSimulator:
    """Samples detector/observable flips on a bit-packed Pauli frame.

    ``rng_mode="exact"`` (the default) draws the paper-exact per-target
    variate stream; ``rng_mode="bitgen"`` selects the fast bit-level
    Bernoulli stream (see the module docstring) — same distribution,
    different variates, so the mode must be chosen per task, not flipped
    silently.
    """

    def __init__(self, circuit: Circuit, seed=None, *, rng_mode: str = "exact"):
        if rng_mode not in RNG_MODES:
            raise ValueError(f"unknown rng_mode {rng_mode!r}; "
                             f"valid modes: {', '.join(RNG_MODES)}")
        circuit.validate()
        self.circuit = circuit
        self.rng_mode = rng_mode
        # fuse(bool) -> (ops, max_draw_rows, bitgen_aux); the fused program
        # runs the no-trace hot path, the stepwise one preserves the
        # per-instruction trace contract.  bitgen_aux is None in exact mode
        # and the per-channel coarse-mask data in bitgen mode — a second
        # compiled-program flavour sharing the same op stream.
        self._programs: dict = {}
        self._wrng: Optional[np.random.Generator] = None
        self._trng: Optional[np.random.Generator] = None
        self.reseed(seed)

    def _program(self, fuse: bool) -> Tuple[List[Tuple[str, int, tuple]], int, Optional[dict]]:
        prog = self._programs.get(fuse)
        if prog is None:
            ops, max_draw_rows = _compile_program(self.circuit, fuse)
            aux = (_compile_bitgen_aux(ops) if self.rng_mode == "bitgen"
                   else None)
            prog = (ops, max_draw_rows, aux)
            self._programs[fuse] = prog
        return prog

    def reseed(self, seed=None) -> "PackedFrameSimulator":
        """Replace the RNG stream, keeping the compiled program warm.

        ``sim.reseed(s).sample(n)`` is bit-identical to
        ``PackedFrameSimulator(circuit, seed=s, rng_mode=...).sample(n)``
        without paying validation + compilation again — what the decoding
        pipeline uses to run one warm simulator across shards and scheduler
        waves.

        Bitgen mode derives two child streams from the seed — one for raw
        words, one for thinning doubles — so the (data-dependent) number of
        correction draws can never shift word consumption.  Both ride
        ``SFC64``: raw-word generation is the bitgen hot path and SFC64
        emits full-width words ~1.6x faster than the default PCG64 (the
        exact-mode ``self.rng`` stays PCG64 — its stream is pinned by the
        paper-reproduction contract).
        """
        self.rng = np.random.default_rng(seed)
        if self.rng_mode == "bitgen":
            root = (seed if isinstance(seed, np.random.SeedSequence)
                    else np.random.SeedSequence(seed))
            key = tuple(root.spawn_key)
            self._wrng = np.random.Generator(np.random.SFC64(
                np.random.SeedSequence(entropy=root.entropy,
                                       spawn_key=key + (0,))))
            self._trng = np.random.Generator(np.random.SFC64(
                np.random.SeedSequence(entropy=root.entropy,
                                       spawn_key=key + (1,))))
        return self

    # ------------------------------------------------------------------
    def sample(self, shots: int, *, trace: Optional[TraceHook] = None,
               scratch: Optional[DrawScratch] = None) -> PackedDetectorSamples:
        """Run ``shots`` Monte-Carlo samples; bit-identical to the unpacked
        :meth:`FrameSimulator.sample` for the same seed.

        ``shots=0`` returns an empty sample without consuming RNG state
        (engine shard math may legitimately produce zero-shot requests).
        ``scratch`` substitutes a caller-owned :class:`DrawScratch` for the
        per-call exact-mode draw buffers — the fused execution layer shares
        one across segments; the variate stream is identical either way.
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        circuit = self.circuit
        nw = num_words(shots)
        num_obs = circuit.num_observables
        if shots == 0:
            return PackedDetectorSamples(
                detectors_packed=np.zeros((circuit.num_detectors, 0), dtype=np.uint64),
                observables_packed=np.zeros((num_obs, 0), dtype=np.uint64),
                num_shots=0,
            )
        rng = self.rng

        x = np.zeros((circuit.num_qubits, nw), dtype=np.uint64)
        z = np.zeros((circuit.num_qubits, nw), dtype=np.uint64)
        meas_flips = np.zeros((circuit.num_measurements, nw), dtype=np.uint64)
        detectors = np.zeros((circuit.num_detectors, nw), dtype=np.uint64)
        observables = np.zeros((max(num_obs, 1), nw), dtype=np.uint64)

        ops, max_draw_rows, bg_aux = self._program(fuse=trace is None)
        bitgen = self.rng_mode == "bitgen"
        # Shared draw/compare scratch, sized to one row block: reusing the
        # buffers keeps the hot loop free of multi-MB allocations.  Bitgen
        # never touches float scratch — its masks are born packed.
        rbuf = hbuf = None
        if max_draw_rows and not bitgen:
            buf_rows = min(max_draw_rows,
                           max(1, _BLOCK_BYTES // max(shots * 8, 1)))
            if scratch is None:
                rbuf, hbuf = _draw_scratch(buf_rows, shots)
            else:
                rbuf, hbuf = scratch.view(buf_rows, shots)
        if bitgen:
            wrng, trng = self._wrng, self._trng
            tail = _tail_mask(shots)

        insts = circuit.instructions
        for op_index, (kind, first, data) in enumerate(ops):
            if bitgen and kind in _BITGEN_CHANNELS:
                self._run_bitgen_channel(kind, data, bg_aux[op_index],
                                         wrng, trng, x, z, nw, tail, shots)
            elif bitgen and kind in ("m", "mx"):
                tgt, m0, dup = data
                frame, other = (x, z) if kind == "m" else (z, x)
                meas_flips[m0:m0 + tgt.size] = frame[tgt]
                # Measurement randomisation is Bernoulli(1/2) exactly: one
                # fresh word per 64 lanes, no correction pass needed.
                for i0, i1 in _row_blocks(tgt.size, shots):
                    raw = _raw_words(wrng, (i1 - i0) * nw).reshape(i1 - i0, nw)
                    raw[:, -1] &= tail
                    _xor_scatter(other, tgt[i0:i1], raw, dup)
            elif kind == "dep2":
                a, b, pflat, dup_a, dup_b, sparse = data
                for i0, i1 in _row_blocks(a.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    hit = np.less(r, pflat[i0:i1, None], out=hbuf[:i1 - i0])
                    # Uniform over the 15 non-identity two-qubit Paulis,
                    # encoded base 4 as (pa, pb) with 0=I,1=X,2=Y,3=Z; hit
                    # lanes reproduce the per-pair scalar arithmetic exactly.
                    if sparse:
                        rows_i, cols_i = _hit_lanes(pack_rows(hit))
                        # The minimum mirrors the reference's np.clip(k, -1,
                        # 14): a draw within 1 ulp below p can round
                        # r/(p/15) to exactly 15.0.
                        code = np.minimum(
                            (r[rows_i, cols_i]
                             / (pflat[i0 + rows_i] / 15)).astype(np.int8),
                            np.int8(14)) + 1
                        pa = code // 4
                        pb = code % 4
                        for dest, q, sel in (
                            (x, a, (pa == 1) | (pa == 2)),
                            (z, a, (pa == 2) | (pa == 3)),
                            (x, b, (pb == 1) | (pb == 2)),
                            (z, b, (pb == 2) | (pb == 3)),
                        ):
                            _scatter_bits(dest, q[i0 + rows_i[sel]], cols_i[sel])
                    else:
                        pcol = pflat[i0:i1, None]
                        scaled = np.zeros_like(r)
                        np.divide(r, pcol / 15, out=scaled, where=hit)
                        # np.minimum mirrors the reference's np.clip(k, -1,
                        # 14) on the 1-ulp-below-p rounding edge.
                        code = np.where(
                            hit,
                            np.minimum(scaled.astype(np.int8), np.int8(14)) + 1,
                            np.int8(0))
                        pa = code // 4
                        pb = code % 4
                        _xor_scatter(x, a[i0:i1], pack_rows((pa == 1) | (pa == 2)), dup_a)
                        _xor_scatter(z, a[i0:i1], pack_rows((pa == 2) | (pa == 3)), dup_a)
                        _xor_scatter(x, b[i0:i1], pack_rows((pb == 1) | (pb == 2)), dup_b)
                        _xor_scatter(z, b[i0:i1], pack_rows((pb == 2) | (pb == 3)), dup_b)
            elif kind == "dep1":
                tgt, pflat, dup, sparse = data
                for i0, i1 in _row_blocks(tgt.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    # Equal chance p/3 for each of X, Y, Z.
                    if sparse:
                        hit = np.less(r, pflat[i0:i1, None], out=hbuf[:i1 - i0])
                        rows_i, cols_i = _hit_lanes(pack_rows(hit))
                        rv = r[rows_i, cols_i]
                        pv = pflat[i0 + rows_i]
                        is_x = rv < pv / 3
                        is_y = (rv >= pv / 3) & (rv < 2 * pv / 3)
                        is_z = rv >= 2 * pv / 3  # rv < pv holds by selection
                        xf = is_x | is_y
                        zf = is_z | is_y
                        _scatter_bits(x, tgt[i0 + rows_i[xf]], cols_i[xf])
                        _scatter_bits(z, tgt[i0 + rows_i[zf]], cols_i[zf])
                    else:
                        pcol = pflat[i0:i1, None]
                        is_x = r < pcol / 3
                        is_y = (r >= pcol / 3) & (r < 2 * pcol / 3)
                        is_z = (r >= 2 * pcol / 3) & (r < pcol)
                        _xor_scatter(x, tgt[i0:i1], pack_rows(is_x | is_y), dup)
                        _xor_scatter(z, tgt[i0:i1], pack_rows(is_z | is_y), dup)
            elif kind in ("xerr", "zerr", "yerr"):
                # Packed-row XOR is cheap at any density, so Bernoulli
                # channels always take the dense compare->pack->XOR path.
                tgt, pflat, dup = data
                for i0, i1 in _row_blocks(tgt.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    hit = np.less(r, pflat[i0:i1, None], out=hbuf[:i1 - i0])
                    rows = pack_rows(hit)
                    if kind != "zerr":
                        _xor_scatter(x, tgt[i0:i1], rows, dup)
                    if kind != "xerr":
                        _xor_scatter(z, tgt[i0:i1], rows, dup)
            elif kind == "det":
                flat, offsets, rows = data
                detectors[rows] = np.bitwise_xor.reduceat(
                    meas_flips[flat], offsets, axis=0)
            elif kind == "mr":
                tgt, m0 = data
                meas_flips[m0:m0 + tgt.size] = x[tgt]
                x[tgt] = 0
                z[tgt] = 0
            elif kind in ("m", "mx"):
                tgt, m0, dup = data
                frame, other = (x, z) if kind == "m" else (z, x)
                meas_flips[m0:m0 + tgt.size] = frame[tgt]
                for i0, i1 in _row_blocks(tgt.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    hit = np.less(r, 0.5, out=hbuf[:i1 - i0])
                    _xor_scatter(other, tgt[i0:i1], pack_rows(hit), dup)
            elif kind == "cx":
                for c, t in data[0]:
                    x[t] ^= x[c]
                    z[c] ^= z[t]
            elif kind == "cz":
                for a, b in data[0]:
                    z[a] ^= x[b]
                    z[b] ^= x[a]
            elif kind == "h":
                tgt, = data
                tmp = x[tgt]  # fancy indexing gathers a copy
                x[tgt] = z[tgt]
                z[tgt] = tmp
            elif kind == "s":
                tgt, = data
                z[tgt] ^= x[tgt]
            elif kind == "reset":
                tgt, = data
                x[tgt] = 0
                z[tgt] = 0
            elif kind == "mr_seq":
                tgts, m0 = data
                for q in tgts:
                    meas_flips[m0] = x[q]
                    x[q] = 0
                    z[q] = 0
                    m0 += 1
            elif kind == "obs":
                midx, obs = data
                observables[obs] ^= np.bitwise_xor.reduce(meas_flips[midx], axis=0)
            # else "nop": X/Z/TICK and empty-target ops change nothing.
            if trace is not None:
                trace(first, insts[first], unpack_bits(x, shots), unpack_bits(z, shots),
                      unpack_bits(meas_flips, shots) if meas_flips.size
                      else np.zeros((0, shots), dtype=bool))

        return PackedDetectorSamples(
            detectors_packed=detectors,
            observables_packed=observables[:num_obs] if num_obs
            else np.zeros((0, nw), dtype=np.uint64),
            num_shots=shots,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _run_bitgen_channel(kind: str, data: tuple, aux: tuple,
                            wrng: np.random.Generator,
                            trng: np.random.Generator,
                            x: np.ndarray, z: np.ndarray,
                            nw: int, tail: np.uint64, shots: int) -> None:
        """One noise-channel op on the bit-level path.

        Coarse packed Bernoulli(p_hi) mask -> candidate lanes -> one
        thinning double per candidate (``u * p_hi < p`` keeps the lane, and
        the kept ``u * p_hi`` is uniform on ``[0, p)``, reusing the exact
        sparse path's Pauli-choice arithmetic).  Candidates enumerate in
        row-major C order and blocks partition rows contiguously, so the
        thinning stream — like the word stream — is consumed identically
        for any block split and for stepwise (trace) programs.
        """
        if kind == "dep2":
            a, b, pflat, _dup_a, _dup_b, _sparse = data
            rows = a.size
        else:
            tgt, pflat = data[0], data[1]
            rows = tgt.size
        p_hi = aux[2]
        for i0, i1 in _row_blocks(rows, shots):
            coarse = _bitgen_mask(wrng, aux, i0, i1, nw, tail)
            rows_i, cols_i = _hit_lanes(coarse)
            if not rows_i.size:
                continue
            u = trng.random(rows_i.size)
            pv = pflat[i0 + rows_i]
            w = u * p_hi[i0 + rows_i]
            keep = w < pv
            rows_k = rows_i[keep]
            cols_k = cols_i[keep]
            if not rows_k.size:
                continue
            if kind in ("xerr", "zerr", "yerr"):
                if kind != "zerr":
                    _scatter_bits(x, tgt[i0 + rows_k], cols_k)
                if kind != "xerr":
                    _scatter_bits(z, tgt[i0 + rows_k], cols_k)
                continue
            w = w[keep]
            pv = pv[keep]
            if kind == "dep1":
                # Equal chance p/3 for each of X, Y, Z (w ~ U[0, p)).
                is_x = w < pv / 3
                is_y = (w >= pv / 3) & (w < 2 * pv / 3)
                xf = is_x | is_y
                zf = ~is_x  # is_z | is_y, since w < pv by construction
                _scatter_bits(x, tgt[i0 + rows_k[xf]], cols_k[xf])
                _scatter_bits(z, tgt[i0 + rows_k[zf]], cols_k[zf])
            else:  # dep2
                # Uniform over the 15 non-identity two-qubit Paulis; the
                # minimum mirrors the exact path's 1-ulp rounding guard.
                code = np.minimum((w / (pv / 15)).astype(np.int8),
                                  np.int8(14)) + 1
                pa = code // 4
                pb = code % 4
                for dest, q, sel in (
                    (x, a, (pa == 1) | (pa == 2)),
                    (z, a, (pa == 2) | (pa == 3)),
                    (x, b, (pb == 1) | (pb == 2)),
                    (z, b, (pb == 2) | (pb == 3)),
                ):
                    _scatter_bits(dest, q[i0 + rows_k[sel]], cols_k[sel])


# ----------------------------------------------------------------------
# Heterogeneous task fusion
# ----------------------------------------------------------------------
class FusedProgram:
    """Several compiled task programs executed as one worker invocation.

    The engine's sweeps are many-small-circuit workloads: a 7-task d=3/d=5
    grid dispatches dozens of sub-second shards, each paying its own
    submission round-trip and its own draw-scratch allocation.  A
    ``FusedProgram`` concatenates the *compiled* programs of several
    :class:`PackedFrameSimulator` segments — one per (task, seed, shots)
    request — so one call advances every segment back to back:

    * each segment keeps its **own** compiled op stream, detector/observable
      row maps and shot-block output (requests may carry different shot
      counts), forced through the fused (no-trace) program at construction
      so compilation never lands inside the timed run;
    * exact-mode segments share one :class:`DrawScratch` sized to the
      largest segment, replacing N multi-MB allocations with one;
    * each segment reseeds its simulator with the request's own seed before
      sampling, so segment ``k`` consumes **exactly** the RNG stream an
      unfused ``reseed(seed).sample(shots)`` call would — fusion shares
      dispatch and scratch, never variates, which is what makes fused
      results bit-identical to unfused execution for any grouping.

    Segments must share one ``rng_mode``: exact and bitgen draw different
    stream kinds (PCG64 floats vs SFC64 words) and a mixed group could not
    share scratch usefully, so the planner never builds one and the
    constructor rejects it loudly.
    """

    def __init__(self, sims: Sequence[PackedFrameSimulator]):
        if not sims:
            raise ValueError("FusedProgram needs at least one segment")
        modes = sorted({sim.rng_mode for sim in sims})
        if len(modes) > 1:
            raise ValueError("fused segments must share one rng_mode, got "
                             + ", ".join(modes))
        self.rng_mode = modes[0]
        self.sims: List[PackedFrameSimulator] = list(sims)
        for sim in self.sims:
            sim._program(fuse=True)  # compile (or reuse) outside the timed run
        self._scratch = DrawScratch() if self.rng_mode == "exact" else None
        #: Wall-clock seconds per segment of the last :meth:`run` call, in
        #: segment order — the per-task sample timings the pipeline stats
        #: carry forward.
        self.segment_seconds: List[float] = []

    @property
    def num_segments(self) -> int:
        return len(self.sims)

    def run(self, requests: Sequence[Tuple[int, object]]) -> List[PackedDetectorSamples]:
        """Sample every segment; ``requests[k]`` is segment ``k``'s
        ``(shots, seed)``.

        Returns one :class:`PackedDetectorSamples` per segment, in segment
        order, each bit-identical to
        ``sims[k].reseed(seed).sample(shots)`` run alone.
        """
        if len(requests) != len(self.sims):
            raise ValueError(
                f"got {len(requests)} requests for {len(self.sims)} segments")
        out: List[PackedDetectorSamples] = []
        seconds: List[float] = []
        for sim, (shots, seed) in zip(self.sims, requests):
            t0 = time.perf_counter()
            out.append(sim.reseed(seed).sample(shots, scratch=self._scratch))
            seconds.append(time.perf_counter() - t0)
        self.segment_seconds = seconds
        return out


def sample_detectors_packed(circuit: Circuit, shots: int, seed=None, *,
                            rng_mode: str = "exact") -> PackedDetectorSamples:
    """Convenience wrapper: packed detector data for ``circuit``."""
    return PackedFrameSimulator(circuit, seed=seed,
                                rng_mode=rng_mode).sample(shots)
