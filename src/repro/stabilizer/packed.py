"""Bit-packed Pauli-frame sampler: the pipeline-facing twin of ``frame.py``.

:class:`PackedFrameSimulator` implements exactly the same frame-update rules
as :class:`~repro.stabilizer.frame.FrameSimulator` (see that module's table)
but stores the X/Z frame components, the measurement-flip record and the
detector/observable outputs as little-endian ``uint64`` bit rows
(:mod:`~repro.stabilizer.bitpack`): one word carries 64 shots.  Gate updates
become word-wide XOR/swap operations — 8x less memory traffic than numpy
bool arrays and 64 shots per ALU op — while noise channels draw the **same**
``rng.random(shots)`` variates in the **same order** as the unpacked
simulator and only then pack the resulting flip masks.  Consequently a
packed run is bit-identical to an unpacked run with the same seed; the test
suite checks this instruction by instruction via the ``trace`` hooks.

The sampler returns :class:`PackedDetectorSamples`, which keeps the packed
rows and offers

* dense compatibility views (``.detectors`` / ``.observables``) matching
  :class:`~repro.stabilizer.frame.DetectorSamples`, so existing callers keep
  working, and
* *sparse syndrome extraction* (:meth:`PackedDetectorSamples.fired_detectors`
  / :meth:`PackedDetectorSamples.flipped_observables`): per-shot tuples of
  fired detector indices, which is what the deduplicating batch decoders
  consume.  At low physical error rates most rows are empty or nearly so,
  and the index lists are far smaller than dense rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from .bitpack import WORD_BITS, num_words, pack_bits, unpack_bits
from .circuit import Circuit
from .frame import DetectorSamples

__all__ = ["PackedDetectorSamples", "PackedFrameSimulator", "sample_detectors_packed"]

# Trace hook signature shared with FrameSimulator: called after every
# instruction with (instruction_index, instruction, x_bool, z_bool,
# meas_flips_bool) where the arrays are dense ``(rows, shots)`` booleans.
TraceHook = Callable[[int, object, np.ndarray, np.ndarray, np.ndarray], None]


@dataclass
class PackedDetectorSamples:
    """Detector/observable flip data in packed bit rows.

    ``detectors_packed`` has shape ``(num_detectors, num_words)`` and
    ``observables_packed`` shape ``(num_observables, num_words)``; bit
    ``s % 64`` of word ``s // 64`` is shot ``s``.
    """

    detectors_packed: np.ndarray
    observables_packed: np.ndarray
    num_shots: int

    @property
    def num_detectors(self) -> int:
        return int(self.detectors_packed.shape[0])

    @property
    def num_observables(self) -> int:
        return int(self.observables_packed.shape[0])

    # -- dense compatibility views -------------------------------------
    @property
    def detectors(self) -> np.ndarray:
        """Dense ``(shots, num_detectors)`` boolean view (unpacks on demand)."""
        if self.num_detectors == 0:
            return np.zeros((self.num_shots, 0), dtype=bool)
        return unpack_bits(self.detectors_packed, self.num_shots).T.copy()

    @property
    def observables(self) -> np.ndarray:
        """Dense ``(shots, num_observables)`` boolean view."""
        if self.num_observables == 0:
            return np.zeros((self.num_shots, 0), dtype=bool)
        return unpack_bits(self.observables_packed, self.num_shots).T.copy()

    def to_detector_samples(self) -> DetectorSamples:
        """Fully unpacked :class:`DetectorSamples` (legacy-shaped)."""
        return DetectorSamples(detectors=self.detectors, observables=self.observables)

    def detection_fraction(self) -> float:
        """Mean fraction of detectors that fired per shot (a health metric)."""
        if self.num_detectors == 0 or self.num_shots == 0:
            return 0.0
        from .bitpack import popcount

        return popcount(self.detectors_packed) / (self.num_detectors * self.num_shots)

    # -- sparse extraction ---------------------------------------------
    def _sparse_rows(self, packed: np.ndarray, start: int, stop: int) -> List[Tuple[int, ...]]:
        """Per-shot sorted index tuples for shots ``start..stop`` of a row set.

        Only the words covering the requested shot range are unpacked, so a
        chunked consumer never materialises the full dense matrix.
        """
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= self.num_shots:
            raise ValueError(f"shot range [{start}, {stop}) outside 0..{self.num_shots}")
        n = stop - start
        if n == 0:
            return []
        if packed.shape[0] == 0:
            return [() for _ in range(n)]
        word_lo = start // WORD_BITS
        word_hi = num_words(stop)
        bits = unpack_bits(packed[:, word_lo:word_hi], (word_hi - word_lo) * WORD_BITS)
        window = bits[:, start - word_lo * WORD_BITS: start - word_lo * WORD_BITS + n]
        rows, cols = np.nonzero(window.T)  # (shot, index) pairs, shot-major
        out: List[Tuple[int, ...]] = [()] * n
        if rows.size:
            split_at = np.searchsorted(rows, np.arange(1, n))
            for shot, idx in enumerate(np.split(cols, split_at)):
                if idx.size:
                    out[shot] = tuple(int(i) for i in idx)
        return out

    def fired_detectors(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[int, ...]]:
        """Sparse syndromes: one sorted tuple of fired detectors per shot."""
        stop = self.num_shots if stop is None else stop
        return self._sparse_rows(self.detectors_packed, start, stop)

    def flipped_observables(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[int, ...]]:
        """One sorted tuple of flipped observable indices per shot."""
        stop = self.num_shots if stop is None else stop
        return self._sparse_rows(self.observables_packed, start, stop)


class PackedFrameSimulator:
    """Samples detector/observable flips on a bit-packed Pauli frame."""

    def __init__(self, circuit: Circuit, seed=None):
        circuit.validate()
        self.circuit = circuit
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample(self, shots: int, *, trace: Optional[TraceHook] = None) -> PackedDetectorSamples:
        """Run ``shots`` Monte-Carlo samples; bit-identical to the unpacked
        :meth:`FrameSimulator.sample` for the same seed."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        circuit = self.circuit
        n = circuit.num_qubits
        rng = self.rng
        nw = num_words(shots)

        x = np.zeros((n, nw), dtype=np.uint64)
        z = np.zeros((n, nw), dtype=np.uint64)
        meas_flips = np.zeros((circuit.num_measurements, nw), dtype=np.uint64)
        detectors = np.zeros((circuit.num_detectors, nw), dtype=np.uint64)
        observables = np.zeros((max(circuit.num_observables, 1), nw), dtype=np.uint64)

        def draw(p: float) -> np.ndarray:
            """Sample a packed flip mask; RNG order matches the unpacked sim."""
            return pack_bits(rng.random(shots) < p)

        m_idx = 0
        d_idx = 0
        for i_idx, inst in enumerate(circuit.instructions):
            name = inst.name
            t = inst.targets
            if name == "CX":
                for c, tg in inst.target_pairs():
                    x[tg] ^= x[c]
                    z[c] ^= z[tg]
            elif name == "H":
                for q in t:
                    x[q], z[q] = z[q].copy(), x[q].copy()
            elif name == "CZ":
                for a, b in inst.target_pairs():
                    z[a] ^= x[b]
                    z[b] ^= x[a]
            elif name == "S":
                for q in t:
                    z[q] ^= x[q]
            elif name in ("X", "Z"):
                pass
            elif name in ("R", "RX"):
                for q in t:
                    x[q] = 0
                    z[q] = 0
            elif name == "M":
                for q in t:
                    meas_flips[m_idx] = x[q]
                    z[q] ^= draw(0.5)
                    m_idx += 1
            elif name == "MX":
                for q in t:
                    meas_flips[m_idx] = z[q]
                    x[q] ^= draw(0.5)
                    m_idx += 1
            elif name == "MR":
                for q in t:
                    meas_flips[m_idx] = x[q]
                    x[q] = 0
                    z[q] = 0
                    m_idx += 1
            elif name == "X_ERROR":
                for q in t:
                    x[q] ^= draw(inst.arg)
            elif name == "Z_ERROR":
                for q in t:
                    z[q] ^= draw(inst.arg)
            elif name == "Y_ERROR":
                for q in t:
                    flip = draw(inst.arg)
                    x[q] ^= flip
                    z[q] ^= flip
            elif name == "DEPOLARIZE1":
                for q in t:
                    r = rng.random(shots)
                    p = inst.arg
                    is_x = r < p / 3
                    is_y = (r >= p / 3) & (r < 2 * p / 3)
                    is_z = (r >= 2 * p / 3) & (r < p)
                    x[q] ^= pack_bits(is_x | is_y)
                    z[q] ^= pack_bits(is_z | is_y)
            elif name == "DEPOLARIZE2":
                for a, b in inst.target_pairs():
                    r = rng.random(shots)
                    p = inst.arg
                    k = np.full(shots, -1, dtype=np.int8)
                    hit = r < p
                    k[hit] = (r[hit] / (p / 15)).astype(np.int8)
                    np.clip(k, -1, 14, out=k)
                    code = k + 1
                    pa = code // 4
                    pb = code % 4
                    x[a] ^= pack_bits((pa == 1) | (pa == 2))
                    z[a] ^= pack_bits((pa == 2) | (pa == 3))
                    x[b] ^= pack_bits((pb == 1) | (pb == 2))
                    z[b] ^= pack_bits((pb == 2) | (pb == 3))
            elif name == "DETECTOR":
                acc = np.zeros(nw, dtype=np.uint64)
                for mi in t:
                    acc ^= meas_flips[mi]
                detectors[d_idx] = acc
                d_idx += 1
            elif name == "OBSERVABLE_INCLUDE":
                obs = int(inst.arg)
                for mi in t:
                    observables[obs] ^= meas_flips[mi]
            elif name == "TICK":
                pass
            else:  # pragma: no cover - circuit validation prevents this
                raise ValueError(f"unhandled instruction {name}")
            if trace is not None:
                trace(i_idx, inst, unpack_bits(x, shots), unpack_bits(z, shots),
                      unpack_bits(meas_flips, shots) if meas_flips.size
                      else np.zeros((0, shots), dtype=bool))

        num_obs = self.circuit.num_observables
        return PackedDetectorSamples(
            detectors_packed=detectors,
            observables_packed=observables[:num_obs] if num_obs
            else np.zeros((0, nw), dtype=np.uint64),
            num_shots=shots,
        )


def sample_detectors_packed(circuit: Circuit, shots: int, seed=None) -> PackedDetectorSamples:
    """Convenience wrapper: packed detector data for ``circuit``."""
    return PackedFrameSimulator(circuit, seed=seed).sample(shots)
