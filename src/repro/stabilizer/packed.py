"""Bit-packed Pauli-frame sampler: the pipeline-facing twin of ``frame.py``.

:class:`PackedFrameSimulator` implements exactly the same frame-update rules
as :class:`~repro.stabilizer.frame.FrameSimulator` (see that module's table)
but stores the X/Z frame components, the measurement-flip record and the
detector/observable outputs as little-endian ``uint64`` bit rows
(:mod:`~repro.stabilizer.bitpack`): one word carries 64 shots.

Instruction dispatch is **vectorised**: at construction the circuit is
compiled into a small program whose ops carry precomputed target index
arrays, per-row noise probabilities, flattened measurement maps and
read/write-hazard-free two-qubit groups, so each op executes as one (or a
few) whole-array numpy kernels instead of a per-target Python loop:

* noise channels draw their variates per *op* with
  ``rng.random((rows, shots))`` — C-order row fill reproduces the
  per-target sequential draw order exactly — into a reused scratch buffer,
  and turn them into packed flip rows by whole-matrix packing
  (:func:`~repro.stabilizer.bitpack.pack_rows`);
* the depolarizing channels additionally pick a *sparse* strategy below
  ``_SPARSE_P_MAX``: the packed hit mask is scanned at word granularity
  (64 lanes per compare), only the few hit words are expanded to lane
  indices, and the per-lane Pauli choice is computed on those lanes alone
  before XOR-scattering single bits into the frame — at p = 1e-3 fewer
  than 0.1% of lanes flip, so full-lane Pauli arithmetic is almost all
  wasted memory traffic;
* draws are *row-blocked* (``_BLOCK_BYTES``): an op covering many targets
  draws consecutive row blocks instead of one giant matrix, which keeps
  the float64 scratch inside the cache sweet spot without touching draw
  order (block rows concatenate in exactly the C order of the full draw);
* gate updates are fancy-indexed XORs on target index arrays
  (``x[tgt] ^= x[ctrl]``), with CX/CZ pair lists split greedily into
  duplicate-free groups so chained pairs keep their sequential meaning;
* DETECTOR / OBSERVABLE_INCLUDE reduce with ``np.bitwise_xor.reduceat`` /
  ``np.bitwise_xor.reduce`` over measurement-index arrays resolved at
  compile time;
* runs of *consecutive same-channel instructions* (the dominant shape in
  the surface-code circuits, which emit one-target noise instructions) fuse
  into a single op — RNG draw order is unchanged because the fused block
  draw fills rows in exactly the per-instruction order.

Noise draws consume the **same** ``rng`` variates in the **same order** as
the unpacked simulator, so a packed run is bit-identical to an unpacked run
with the same seed; the test suite checks this instruction by instruction
via the ``trace`` hooks, and against the frozen per-target loop in
:mod:`repro.stabilizer.reference`.  When a ``trace`` hook is given, the
simulator switches to a stepwise program (one op per instruction, still
vectorised within the instruction) so the hook keeps firing after every
instruction with identical dense views.

The sampler returns :class:`PackedDetectorSamples`, which keeps the packed
rows and offers

* dense compatibility copies (``.detectors`` / ``.observables``) matching
  :class:`~repro.stabilizer.frame.DetectorSamples`, so existing callers keep
  working, and
* *sparse syndrome extraction* (:meth:`PackedDetectorSamples.fired_detectors`
  / :meth:`PackedDetectorSamples.flipped_observables`): per-shot tuples of
  fired detector indices, which is what the deduplicating batch decoders
  consume.  At low physical error rates most rows are empty or nearly so,
  and the index lists are far smaller than dense rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .bitpack import WORD_BITS, num_words, pack_rows, unpack_bits
from .circuit import Circuit
from .frame import DetectorSamples

__all__ = ["PackedDetectorSamples", "PackedFrameSimulator", "sample_detectors_packed"]

# Trace hook signature shared with FrameSimulator: called after every
# instruction with (instruction_index, instruction, x_bool, z_bool,
# meas_flips_bool) where the arrays are dense ``(rows, shots)`` booleans.
TraceHook = Callable[[int, object, np.ndarray, np.ndarray, np.ndarray], None]


@dataclass
class PackedDetectorSamples:
    """Detector/observable flip data in packed bit rows.

    ``detectors_packed`` has shape ``(num_detectors, num_words)`` and
    ``observables_packed`` shape ``(num_observables, num_words)``; bit
    ``s % 64`` of word ``s // 64`` is shot ``s``.
    """

    detectors_packed: np.ndarray
    observables_packed: np.ndarray
    num_shots: int

    @property
    def num_detectors(self) -> int:
        return int(self.detectors_packed.shape[0])

    @property
    def num_observables(self) -> int:
        return int(self.observables_packed.shape[0])

    # -- dense compatibility copies ------------------------------------
    @property
    def detectors(self) -> np.ndarray:
        """Dense ``(shots, num_detectors)`` boolean copy (unpacked on demand).

        A fresh array per access — mutating it never touches the packed
        rows, so cache it if you read it in a loop.
        """
        if self.num_detectors == 0:
            return np.zeros((self.num_shots, 0), dtype=bool)
        return unpack_bits(self.detectors_packed, self.num_shots).T.copy()

    @property
    def observables(self) -> np.ndarray:
        """Dense ``(shots, num_observables)`` boolean copy (unpacked on demand)."""
        if self.num_observables == 0:
            return np.zeros((self.num_shots, 0), dtype=bool)
        return unpack_bits(self.observables_packed, self.num_shots).T.copy()

    def to_detector_samples(self) -> DetectorSamples:
        """Fully unpacked :class:`DetectorSamples` (legacy-shaped)."""
        return DetectorSamples(detectors=self.detectors, observables=self.observables)

    def detection_fraction(self) -> float:
        """Mean fraction of detectors that fired per shot (a health metric)."""
        if self.num_detectors == 0 or self.num_shots == 0:
            return 0.0
        from .bitpack import popcount

        return popcount(self.detectors_packed) / (self.num_detectors * self.num_shots)

    # -- sparse extraction ---------------------------------------------
    def _sparse_rows(self, packed: np.ndarray, start: int, stop: int) -> List[Tuple[int, ...]]:
        """Per-shot sorted index tuples for shots ``start..stop`` of a row set.

        Only the words covering the requested shot range are unpacked, so a
        chunked consumer never materialises the full dense matrix.
        """
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= self.num_shots:
            raise ValueError(f"shot range [{start}, {stop}) outside 0..{self.num_shots}")
        n = stop - start
        if n == 0:
            return []
        if packed.shape[0] == 0:
            return [() for _ in range(n)]
        word_lo = start // WORD_BITS
        word_hi = num_words(stop)
        bits = unpack_bits(packed[:, word_lo:word_hi], (word_hi - word_lo) * WORD_BITS)
        window = bits[:, start - word_lo * WORD_BITS: start - word_lo * WORD_BITS + n]
        rows, cols = np.nonzero(window.T)  # (shot, index) pairs, shot-major
        out: List[Tuple[int, ...]] = [()] * n
        if rows.size:
            split_at = np.searchsorted(rows, np.arange(1, n))
            for shot, idx in enumerate(np.split(cols, split_at)):
                if idx.size:
                    out[shot] = tuple(int(i) for i in idx)
        return out

    def fired_detectors(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[int, ...]]:
        """Sparse syndromes: one sorted tuple of fired detectors per shot."""
        stop = self.num_shots if stop is None else stop
        return self._sparse_rows(self.detectors_packed, start, stop)

    def flipped_observables(self, start: int = 0, stop: Optional[int] = None) -> List[Tuple[int, ...]]:
        """One sorted tuple of flipped observable indices per shot."""
        stop = self.num_shots if stop is None else stop
        return self._sparse_rows(self.observables_packed, start, stop)


# ----------------------------------------------------------------------
# Compiled program
# ----------------------------------------------------------------------
# An op is (kind, first_instruction_index, data).  In the fused program one
# op may cover a run of consecutive same-channel instructions; the stepwise
# program (used when a trace hook is installed) has exactly one op per
# instruction so the hook contract is preserved.

# Instruction families whose consecutive runs may fuse into one op without
# changing RNG draw order or frame semantics (all are either draw-free and
# idempotent/parity-reducible, or pure XOR scatters of fresh variates).
_FUSABLE = frozenset({
    "RESET", "H", "S", "M", "MX", "MR", "DETECTOR",
    "X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1", "DEPOLARIZE2",
})

# Cap on the float64 scratch of one noise-draw block.  Fused ops covering
# hundreds of targets at tens of thousands of shots would otherwise
# materialise ~100MB temporaries per op and lose to cache misses what they
# won in dispatch.
_BLOCK_BYTES = 8 << 20

# Depolarizing channels whose probabilities never exceed this use the
# sparse flip strategy (hit words -> lane indices -> per-lane Pauli choice
# -> per-bit XOR scatter); denser channels compute the Pauli choice on
# every lane and pack whole rows.  Both strategies are bit-exact.
_SPARSE_P_MAX = 0.02


def _row_blocks(rows: int, shots: int):
    """Split ``rows`` draw rows into blocks of bounded float64 footprint."""
    step = max(1, _BLOCK_BYTES // max(shots * 8, 1))
    return ((s, min(s + step, rows)) for s in range(0, rows, step))


def _fuse_key(name: str) -> str:
    # R and RX clear both frame components identically, so they fuse as one
    # family.
    return "RESET" if name in ("R", "RX") else name


def _idx(values: Sequence[int]) -> np.ndarray:
    return np.asarray(list(values), dtype=np.intp)


def _has_dup(arr: np.ndarray) -> bool:
    return arr.size != np.unique(arr).size


def _pair_groups(pairs: List[Tuple[int, int]]) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split an ordered pair list into hazard-free fancy-index groups.

    Within a group every qubit appears at most once, so gathering all reads
    before scattering all writes reproduces the sequential per-pair update;
    a chained pair (reusing a qubit of an earlier pair) starts a new group.
    """
    groups: List[Tuple[np.ndarray, np.ndarray]] = []
    left: List[int] = []
    right: List[int] = []
    used: set = set()
    for a, b in pairs:
        if a in used or b in used:
            groups.append((_idx(left), _idx(right)))
            left, right, used = [], [], set()
        left.append(a)
        right.append(b)
        used.add(a)
        used.add(b)
    if left:
        groups.append((_idx(left), _idx(right)))
    return groups


def _odd_multiplicity(targets: List[int]) -> np.ndarray:
    """Targets appearing an odd number of times (even repeats cancel)."""
    arr = _idx(targets)
    qs, counts = np.unique(arr, return_counts=True)
    return qs[counts % 2 == 1]


# Op kinds that consume RNG rows (used to size the shared draw scratch).
_DRAW_KINDS = frozenset({"m", "mx", "xerr", "zerr", "yerr", "dep1", "dep2"})


def _compile_program(circuit: Circuit, fuse: bool) -> Tuple[List[Tuple[str, int, tuple]], int]:
    """Lower the circuit to vectorised ops (index arrays resolved once).

    Returns ``(ops, max_draw_rows)`` where ``max_draw_rows`` is the largest
    number of RNG rows any single op draws — the scratch-buffer bound.
    """
    insts = circuit.instructions
    ops: List[Tuple[str, int, tuple]] = []
    m_idx = 0
    d_idx = 0
    i = 0
    n = len(insts)
    while i < n:
        name = insts[i].name
        key = _fuse_key(name)
        j = i + 1
        if fuse and key in _FUSABLE:
            while j < n and _fuse_key(insts[j].name) == key:
                j += 1
        group = insts[i:j]
        targets = [q for inst in group for q in inst.targets]

        if key in ("CX", "CZ"):
            pairs = group[0].target_pairs()
            ops.append(("nop", i, ()) if not pairs
                       else (key.lower(), i, (_pair_groups(pairs),)))
        elif key == "H":
            odd = _odd_multiplicity(targets)
            ops.append(("h", i, (odd,)) if odd.size else ("nop", i, ()))
        elif key == "S":
            odd = _odd_multiplicity(targets)
            ops.append(("s", i, (odd,)) if odd.size else ("nop", i, ()))
        elif key == "RESET":
            ops.append(("reset", i, (np.unique(_idx(targets)),)) if targets
                       else ("nop", i, ()))
        elif key in ("M", "MX"):
            k = len(targets)
            if k:
                tgt = _idx(targets)
                ops.append((key.lower(), i, (tgt, m_idx, _has_dup(tgt))))
            else:
                ops.append(("nop", i, ()))
            m_idx += k
        elif key == "MR":
            k = len(targets)
            if not k:
                ops.append(("nop", i, ()))
            elif len(set(targets)) != k:
                # A repeated qubit must observe its own reset mid-run; keep
                # the sequential semantics for this (pathological) shape.
                ops.append(("mr_seq", i, (tuple(targets), m_idx)))
            else:
                ops.append(("mr", i, (_idx(targets), m_idx)))
            m_idx += k
        elif key in ("X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1"):
            if targets:
                tgt = _idx(targets)
                pflat = np.array([inst.arg for inst in group
                                  for _ in inst.targets], dtype=np.float64)
                kind = {"X_ERROR": "xerr", "Z_ERROR": "zerr",
                        "Y_ERROR": "yerr", "DEPOLARIZE1": "dep1"}[key]
                data = (tgt, pflat, _has_dup(tgt))
                if kind == "dep1":
                    data += (float(pflat.max()) <= _SPARSE_P_MAX,)
                ops.append((kind, i, data))
            else:
                ops.append(("nop", i, ()))
        elif key == "DEPOLARIZE2":
            pairs = [(a, b) for inst in group for a, b in inst.target_pairs()]
            if pairs:
                a_arr = _idx([a for a, _ in pairs])
                b_arr = _idx([b for _, b in pairs])
                pflat = np.array([inst.arg for inst in group
                                  for _ in inst.target_pairs()], dtype=np.float64)
                ops.append(("dep2", i, (a_arr, b_arr, pflat,
                                        _has_dup(a_arr), _has_dup(b_arr),
                                        float(pflat.max()) <= _SPARSE_P_MAX)))
            else:
                ops.append(("nop", i, ()))
        elif key == "DETECTOR":
            rows: List[int] = []
            flat: List[int] = []
            offsets: List[int] = []
            for off, inst in enumerate(group):
                if inst.targets:  # empty detectors keep their all-zero row
                    rows.append(d_idx + off)
                    offsets.append(len(flat))
                    flat.extend(inst.targets)
            d_idx += len(group)
            ops.append(("det", i, (_idx(flat), _idx(offsets), _idx(rows)))
                       if rows else ("nop", i, ()))
        elif key == "OBSERVABLE_INCLUDE":
            inst = group[0]
            ops.append(("obs", i, (_idx(inst.targets), int(inst.arg)))
                       if inst.targets else ("nop", i, ()))
        elif key in ("X", "Z", "TICK"):
            # Deterministic Paulis / time markers: no-ops on the frame.
            ops.append(("nop", i, ()))
        else:  # pragma: no cover - circuit validation prevents this
            raise ValueError(f"unhandled instruction {name}")
        i = j

    max_draw_rows = max((op[2][0].size for op in ops if op[0] in _DRAW_KINDS),
                        default=0)
    return ops, max_draw_rows


def _xor_scatter(dest: np.ndarray, idx: np.ndarray, rows: np.ndarray,
                 dup: bool) -> None:
    """``dest[idx] ^= rows``, falling back to the unbuffered ufunc when
    ``idx`` holds duplicates (buffered fancy XOR would drop all but one)."""
    if dup:
        np.bitwise_xor.at(dest, idx, rows)
    else:
        dest[idx] ^= rows


def _scatter_bits(dest: np.ndarray, qubits: np.ndarray, cols: np.ndarray) -> None:
    """Flip shot-bit ``cols[j]`` of packed row ``qubits[j]`` for every ``j``.

    The sparse-strategy scatter: unbuffered per-lane XOR, so repeated
    (qubit, shot) flips cancel exactly like sequential mask XORs.
    """
    words = cols >> 6
    bits = np.uint64(1) << (cols & 63).astype(np.uint64)
    np.bitwise_xor.at(dest, (qubits, words), bits)


def _hit_lanes(hit_words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(row, shot) indices of set bits in packed hit rows, C order.

    Scans at word granularity (64 lanes per element) and expands only the
    hit words to bit positions — the low-p fast path that replaces a
    ``nonzero`` pass over the full boolean mask.
    """
    wr, wc = np.nonzero(hit_words)
    if not wr.size:
        return wr, wc
    bits = np.unpackbits(hit_words[wr, wc].view(np.uint8).reshape(-1, 8),
                         axis=1, bitorder="little")
    sel, bitpos = np.nonzero(bits)
    return wr[sel], wc[sel] * WORD_BITS + bitpos


class PackedFrameSimulator:
    """Samples detector/observable flips on a bit-packed Pauli frame."""

    def __init__(self, circuit: Circuit, seed=None):
        circuit.validate()
        self.circuit = circuit
        self.rng = np.random.default_rng(seed)
        # fuse(bool) -> (ops, max_draw_rows); the fused program runs the
        # no-trace hot path, the stepwise one preserves the per-instruction
        # trace contract.
        self._programs: dict = {}

    def _program(self, fuse: bool) -> Tuple[List[Tuple[str, int, tuple]], int]:
        prog = self._programs.get(fuse)
        if prog is None:
            prog = _compile_program(self.circuit, fuse)
            self._programs[fuse] = prog
        return prog

    def reseed(self, seed=None) -> "PackedFrameSimulator":
        """Replace the RNG stream, keeping the compiled program warm.

        ``sim.reseed(s).sample(n)`` is bit-identical to
        ``PackedFrameSimulator(circuit, seed=s).sample(n)`` without paying
        validation + compilation again — what the decoding pipeline uses to
        run one warm simulator across shards and scheduler waves.
        """
        self.rng = np.random.default_rng(seed)
        return self

    # ------------------------------------------------------------------
    def sample(self, shots: int, *, trace: Optional[TraceHook] = None) -> PackedDetectorSamples:
        """Run ``shots`` Monte-Carlo samples; bit-identical to the unpacked
        :meth:`FrameSimulator.sample` for the same seed.

        ``shots=0`` returns an empty sample without consuming RNG state
        (engine shard math may legitimately produce zero-shot requests).
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        circuit = self.circuit
        nw = num_words(shots)
        num_obs = circuit.num_observables
        if shots == 0:
            return PackedDetectorSamples(
                detectors_packed=np.zeros((circuit.num_detectors, 0), dtype=np.uint64),
                observables_packed=np.zeros((num_obs, 0), dtype=np.uint64),
                num_shots=0,
            )
        rng = self.rng

        x = np.zeros((circuit.num_qubits, nw), dtype=np.uint64)
        z = np.zeros((circuit.num_qubits, nw), dtype=np.uint64)
        meas_flips = np.zeros((circuit.num_measurements, nw), dtype=np.uint64)
        detectors = np.zeros((circuit.num_detectors, nw), dtype=np.uint64)
        observables = np.zeros((max(num_obs, 1), nw), dtype=np.uint64)

        ops, max_draw_rows = self._program(fuse=trace is None)
        # Shared draw/compare scratch, sized to one row block: reusing the
        # buffers keeps the hot loop free of multi-MB allocations.
        buf_rows = min(max_draw_rows,
                       max(1, _BLOCK_BYTES // max(shots * 8, 1)))
        rbuf = np.empty((buf_rows, shots)) if max_draw_rows else None
        hbuf = np.empty((buf_rows, shots), dtype=bool) if max_draw_rows else None

        insts = circuit.instructions
        for kind, first, data in ops:
            if kind == "dep2":
                a, b, pflat, dup_a, dup_b, sparse = data
                for i0, i1 in _row_blocks(a.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    hit = np.less(r, pflat[i0:i1, None], out=hbuf[:i1 - i0])
                    # Uniform over the 15 non-identity two-qubit Paulis,
                    # encoded base 4 as (pa, pb) with 0=I,1=X,2=Y,3=Z; hit
                    # lanes reproduce the per-pair scalar arithmetic exactly.
                    if sparse:
                        rows_i, cols_i = _hit_lanes(pack_rows(hit))
                        # The minimum mirrors the reference's np.clip(k, -1,
                        # 14): a draw within 1 ulp below p can round
                        # r/(p/15) to exactly 15.0.
                        code = np.minimum(
                            (r[rows_i, cols_i]
                             / (pflat[i0 + rows_i] / 15)).astype(np.int8),
                            np.int8(14)) + 1
                        pa = code // 4
                        pb = code % 4
                        for dest, q, sel in (
                            (x, a, (pa == 1) | (pa == 2)),
                            (z, a, (pa == 2) | (pa == 3)),
                            (x, b, (pb == 1) | (pb == 2)),
                            (z, b, (pb == 2) | (pb == 3)),
                        ):
                            _scatter_bits(dest, q[i0 + rows_i[sel]], cols_i[sel])
                    else:
                        pcol = pflat[i0:i1, None]
                        scaled = np.zeros_like(r)
                        np.divide(r, pcol / 15, out=scaled, where=hit)
                        # np.minimum mirrors the reference's np.clip(k, -1,
                        # 14) on the 1-ulp-below-p rounding edge.
                        code = np.where(
                            hit,
                            np.minimum(scaled.astype(np.int8), np.int8(14)) + 1,
                            np.int8(0))
                        pa = code // 4
                        pb = code % 4
                        _xor_scatter(x, a[i0:i1], pack_rows((pa == 1) | (pa == 2)), dup_a)
                        _xor_scatter(z, a[i0:i1], pack_rows((pa == 2) | (pa == 3)), dup_a)
                        _xor_scatter(x, b[i0:i1], pack_rows((pb == 1) | (pb == 2)), dup_b)
                        _xor_scatter(z, b[i0:i1], pack_rows((pb == 2) | (pb == 3)), dup_b)
            elif kind == "dep1":
                tgt, pflat, dup, sparse = data
                for i0, i1 in _row_blocks(tgt.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    # Equal chance p/3 for each of X, Y, Z.
                    if sparse:
                        hit = np.less(r, pflat[i0:i1, None], out=hbuf[:i1 - i0])
                        rows_i, cols_i = _hit_lanes(pack_rows(hit))
                        rv = r[rows_i, cols_i]
                        pv = pflat[i0 + rows_i]
                        is_x = rv < pv / 3
                        is_y = (rv >= pv / 3) & (rv < 2 * pv / 3)
                        is_z = rv >= 2 * pv / 3  # rv < pv holds by selection
                        xf = is_x | is_y
                        zf = is_z | is_y
                        _scatter_bits(x, tgt[i0 + rows_i[xf]], cols_i[xf])
                        _scatter_bits(z, tgt[i0 + rows_i[zf]], cols_i[zf])
                    else:
                        pcol = pflat[i0:i1, None]
                        is_x = r < pcol / 3
                        is_y = (r >= pcol / 3) & (r < 2 * pcol / 3)
                        is_z = (r >= 2 * pcol / 3) & (r < pcol)
                        _xor_scatter(x, tgt[i0:i1], pack_rows(is_x | is_y), dup)
                        _xor_scatter(z, tgt[i0:i1], pack_rows(is_z | is_y), dup)
            elif kind in ("xerr", "zerr", "yerr"):
                # Packed-row XOR is cheap at any density, so Bernoulli
                # channels always take the dense compare->pack->XOR path.
                tgt, pflat, dup = data
                for i0, i1 in _row_blocks(tgt.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    hit = np.less(r, pflat[i0:i1, None], out=hbuf[:i1 - i0])
                    rows = pack_rows(hit)
                    if kind != "zerr":
                        _xor_scatter(x, tgt[i0:i1], rows, dup)
                    if kind != "xerr":
                        _xor_scatter(z, tgt[i0:i1], rows, dup)
            elif kind == "det":
                flat, offsets, rows = data
                detectors[rows] = np.bitwise_xor.reduceat(
                    meas_flips[flat], offsets, axis=0)
            elif kind == "mr":
                tgt, m0 = data
                meas_flips[m0:m0 + tgt.size] = x[tgt]
                x[tgt] = 0
                z[tgt] = 0
            elif kind in ("m", "mx"):
                tgt, m0, dup = data
                frame, other = (x, z) if kind == "m" else (z, x)
                meas_flips[m0:m0 + tgt.size] = frame[tgt]
                for i0, i1 in _row_blocks(tgt.size, shots):
                    r = rbuf[:i1 - i0]
                    rng.random(out=r)
                    hit = np.less(r, 0.5, out=hbuf[:i1 - i0])
                    _xor_scatter(other, tgt[i0:i1], pack_rows(hit), dup)
            elif kind == "cx":
                for c, t in data[0]:
                    x[t] ^= x[c]
                    z[c] ^= z[t]
            elif kind == "cz":
                for a, b in data[0]:
                    z[a] ^= x[b]
                    z[b] ^= x[a]
            elif kind == "h":
                tgt, = data
                tmp = x[tgt]  # fancy indexing gathers a copy
                x[tgt] = z[tgt]
                z[tgt] = tmp
            elif kind == "s":
                tgt, = data
                z[tgt] ^= x[tgt]
            elif kind == "reset":
                tgt, = data
                x[tgt] = 0
                z[tgt] = 0
            elif kind == "mr_seq":
                tgts, m0 = data
                for q in tgts:
                    meas_flips[m0] = x[q]
                    x[q] = 0
                    z[q] = 0
                    m0 += 1
            elif kind == "obs":
                midx, obs = data
                observables[obs] ^= np.bitwise_xor.reduce(meas_flips[midx], axis=0)
            # else "nop": X/Z/TICK and empty-target ops change nothing.
            if trace is not None:
                trace(first, insts[first], unpack_bits(x, shots), unpack_bits(z, shots),
                      unpack_bits(meas_flips, shots) if meas_flips.size
                      else np.zeros((0, shots), dtype=bool))

        return PackedDetectorSamples(
            detectors_packed=detectors,
            observables_packed=observables[:num_obs] if num_obs
            else np.zeros((0, nw), dtype=np.uint64),
            num_shots=shots,
        )


def sample_detectors_packed(circuit: Circuit, shots: int, seed=None) -> PackedDetectorSamples:
    """Convenience wrapper: packed detector data for ``circuit``."""
    return PackedFrameSimulator(circuit, seed=seed).sample(shots)
