"""Dense Pauli-string algebra over the symplectic (X/Z bit) representation.

A Pauli operator on ``n`` qubits (ignoring global phase) is represented by two
boolean vectors ``xs`` and ``zs`` of length ``n``:

* ``xs[q] and not zs[q]`` -> X on qubit ``q``
* ``zs[q] and not xs[q]`` -> Z on qubit ``q``
* ``xs[q] and zs[q]``     -> Y on qubit ``q``
* neither                 -> identity on qubit ``q``

This module is the foundation of the stabilizer substrate: stabilizer checks,
gauge operators, logical operators, error mechanisms and frame states are all
Pauli strings.  Phases are deliberately not tracked; for everything this
library needs (commutation structure, detector parity propagation, GF(2)
linear algebra on stabilizer groups) the phase is irrelevant.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["PauliString", "pauli_product", "commutes", "batch_commutes"]

_CHAR_TO_BITS = {"I": (0, 0), "X": (1, 0), "Z": (0, 1), "Y": (1, 1), "_": (0, 0)}
_BITS_TO_CHAR = {(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}


class PauliString:
    """An n-qubit Pauli operator without phase.

    Instances are lightweight wrappers around two numpy boolean arrays and are
    treated as immutable by convention (methods return new instances).

    Examples
    --------
    >>> a = PauliString.from_string("XXI")
    >>> b = PauliString.from_string("ZIZ")
    >>> a.commutes_with(b)
    False
    >>> (a * a).weight()
    0
    """

    __slots__ = ("xs", "zs")

    def __init__(self, xs: np.ndarray, zs: np.ndarray):
        xs = np.asarray(xs, dtype=bool)
        zs = np.asarray(zs, dtype=bool)
        if xs.shape != zs.shape or xs.ndim != 1:
            raise ValueError("xs and zs must be 1-D boolean arrays of equal length")
        self.xs = xs
        self.zs = zs

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The identity operator on ``num_qubits`` qubits."""
        return cls(np.zeros(num_qubits, dtype=bool), np.zeros(num_qubits, dtype=bool))

    @classmethod
    def from_string(cls, text: str) -> "PauliString":
        """Build from a string such as ``"XIZY"`` (``_`` also means identity)."""
        xs = np.zeros(len(text), dtype=bool)
        zs = np.zeros(len(text), dtype=bool)
        for i, ch in enumerate(text.upper()):
            if ch not in _CHAR_TO_BITS:
                raise ValueError(f"invalid Pauli character {ch!r}")
            x, z = _CHAR_TO_BITS[ch]
            xs[i] = bool(x)
            zs[i] = bool(z)
        return cls(xs, zs)

    @classmethod
    def from_sparse(
        cls, num_qubits: int, paulis: Mapping[int, str] | Iterable[tuple[int, str]]
    ) -> "PauliString":
        """Build from ``{qubit_index: "X"|"Y"|"Z"}``."""
        items = paulis.items() if isinstance(paulis, Mapping) else paulis
        xs = np.zeros(num_qubits, dtype=bool)
        zs = np.zeros(num_qubits, dtype=bool)
        for q, ch in items:
            if not 0 <= q < num_qubits:
                raise ValueError(f"qubit index {q} out of range for {num_qubits} qubits")
            x, z = _CHAR_TO_BITS[ch.upper()]
            xs[q] = bool(x)
            zs[q] = bool(z)
        return cls(xs, zs)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, pauli: str) -> "PauliString":
        """A single-qubit Pauli embedded in ``num_qubits`` qubits."""
        return cls.from_sparse(num_qubits, {qubit: pauli})

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return int(self.xs.shape[0])

    def weight(self) -> int:
        """Number of qubits acted on non-trivially."""
        return int(np.count_nonzero(self.xs | self.zs))

    def support(self) -> list[int]:
        """Sorted list of qubit indices acted on non-trivially."""
        return list(np.flatnonzero(self.xs | self.zs))

    def x_support(self) -> list[int]:
        return list(np.flatnonzero(self.xs))

    def z_support(self) -> list[int]:
        return list(np.flatnonzero(self.zs))

    def is_identity(self) -> bool:
        return not bool(np.any(self.xs) or np.any(self.zs))

    def to_sparse(self) -> Dict[int, str]:
        """Return ``{qubit: pauli_char}`` for the non-identity entries."""
        out: Dict[int, str] = {}
        for q in self.support():
            out[int(q)] = _BITS_TO_CHAR[(int(self.xs[q]), int(self.zs[q]))]
        return out

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __mul__(self, other: "PauliString") -> "PauliString":
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli strings act on different numbers of qubits")
        return PauliString(self.xs ^ other.xs, self.zs ^ other.zs)

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two operators commute (symplectic inner product is 0)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli strings act on different numbers of qubits")
        overlap = np.count_nonzero(self.xs & other.zs) + np.count_nonzero(
            self.zs & other.xs
        )
        return overlap % 2 == 0

    def anticommutes_with(self, other: "PauliString") -> bool:
        return not self.commutes_with(other)

    def restricted_to(self, qubits: Sequence[int]) -> "PauliString":
        """The operator with support intersected with ``qubits`` (same length)."""
        mask = np.zeros(self.num_qubits, dtype=bool)
        mask[list(qubits)] = True
        return PauliString(self.xs & mask, self.zs & mask)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and bool(np.array_equal(self.xs, other.xs))
            and bool(np.array_equal(self.zs, other.zs))
        )

    def __hash__(self) -> int:
        return hash((self.xs.tobytes(), self.zs.tobytes()))

    def __str__(self) -> str:
        return "".join(
            _BITS_TO_CHAR[(int(x), int(z))] for x, z in zip(self.xs, self.zs)
        )

    def __repr__(self) -> str:
        return f"PauliString({str(self)!r})"


def pauli_product(paulis: Iterable[PauliString], num_qubits: int | None = None) -> PauliString:
    """Product (phase-free) of an iterable of Pauli strings.

    ``num_qubits`` is required when the iterable may be empty.
    """
    result: PauliString | None = None
    for p in paulis:
        result = p if result is None else result * p
    if result is None:
        if num_qubits is None:
            raise ValueError("num_qubits required for an empty product")
        return PauliString.identity(num_qubits)
    return result


def commutes(a: PauliString, b: PauliString) -> bool:
    """Module-level convenience wrapper for :meth:`PauliString.commutes_with`."""
    return a.commutes_with(b)


def batch_commutes(group: Sequence[PauliString]) -> bool:
    """True when every pair of operators in ``group`` commutes.

    Uses a matrix formulation: with ``X`` and ``Z`` the stacked bit matrices,
    the symplectic Gram matrix ``X Z^T + Z X^T`` (mod 2) must vanish.
    """
    if len(group) <= 1:
        return True
    xs = np.stack([p.xs for p in group]).astype(np.uint8)
    zs = np.stack([p.zs for p in group]).astype(np.uint8)
    gram = (xs @ zs.T + zs @ xs.T) % 2
    return not bool(gram.any())
