"""Reference CHP (Aaronson–Gottesman) stabilizer tableau simulator.

The frame simulator in :mod:`repro.stabilizer.frame` is fast but it *assumes*
that every detector is deterministic under zero noise.  This module provides
an independent, slower, exact stabilizer simulator used to validate that
assumption and to cross-check measurement statistics on small circuits.

The implementation follows the standard CHP construction: the state of ``n``
qubits is a ``2n x (2n+1)`` binary tableau whose first ``n`` rows are
destabilizers and last ``n`` rows are stabilizers, with a sign column.
Deterministic measurements are resolved by Gaussian elimination over the
destabilizer rows; random measurements collapse the state with a supplied
random number generator.
"""

from __future__ import annotations

import numpy as np

from .circuit import Circuit

__all__ = ["TableauSimulator"]


class TableauSimulator:
    """Exact stabilizer simulator over the gate set of :mod:`repro.stabilizer.circuit`."""

    def __init__(self, num_qubits: int, seed: int | None = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        n = num_qubits
        self.n = n
        self.rng = np.random.default_rng(seed)
        # x[i][j], z[i][j], r[i] for rows i in [0, 2n); row i < n destabilizers.
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)
        for i in range(n):
            self.x[i, i] = True          # destabilizer X_i
            self.z[n + i, i] = True      # stabilizer Z_i
        self.measurement_record: list[bool] = []

    # ------------------------------------------------------------------
    # Elementary gates
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def x_gate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def cx(self, c: int, t: int) -> None:
        self.r ^= self.x[:, c] & self.z[:, t] & (self.x[:, t] ^ self.z[:, c] ^ True)
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    # ------------------------------------------------------------------
    # Row operations used by measurement
    # ------------------------------------------------------------------
    @staticmethod
    def _g(x1: bool, z1: bool, x2: bool, z2: bool) -> int:
        """Exponent of i when multiplying single-qubit Paulis (CHP helper)."""
        if not x1 and not z1:
            return 0
        if x1 and z1:
            return (int(z2) - int(x2))
        if x1 and not z1:
            return int(z2) * (2 * int(x2) - 1)
        return int(x2) * (1 - 2 * int(z2))

    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row h * row i (Pauli product with phase tracking)."""
        total = 2 * int(self.r[h]) + 2 * int(self.r[i])
        for j in range(self.n):
            total += self._g(self.x[i, j], self.z[i, j], self.x[h, j], self.z[h, j])
        total %= 4
        self.r[h] = total == 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # ------------------------------------------------------------------
    # Measurement and reset
    # ------------------------------------------------------------------
    def measure_z(self, q: int, record: bool = True) -> bool:
        """Measure qubit ``q`` in the Z basis, collapse, and return the result.

        ``record=False`` performs the collapse without appending to the
        measurement record (used internally by resets).
        """
        n = self.n
        p = -1
        for i in range(n, 2 * n):
            if self.x[i, q]:
                p = i
                break
        if p >= 0:
            # Random outcome; collapse.
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            outcome = bool(self.rng.integers(0, 2))
            self.r[p] = outcome
            if record:
                self.measurement_record.append(outcome)
            return outcome
        # Deterministic outcome: compute via scratch row.
        scratch_x = np.zeros(self.n, dtype=bool)
        scratch_z = np.zeros(self.n, dtype=bool)
        scratch_r = 0
        for i in range(n):
            if self.x[i, q]:
                total = 2 * scratch_r + 2 * int(self.r[i + n])
                for j in range(self.n):
                    total += self._g(self.x[i + n, j], self.z[i + n, j],
                                     scratch_x[j], scratch_z[j])
                total %= 4
                scratch_r = 1 if total == 2 else 0
                scratch_x ^= self.x[i + n]
                scratch_z ^= self.z[i + n]
        outcome = bool(scratch_r)
        if record:
            self.measurement_record.append(outcome)
        return outcome

    def measure_x(self, q: int) -> bool:
        self.h(q)
        out = self.measure_z(q)
        self.h(q)
        return out

    def reset_z(self, q: int) -> None:
        out = self.measure_z(q, record=False)
        if out:
            self.x_gate(q)

    def reset_x(self, q: int) -> None:
        self.h(q)
        self.reset_z(q)
        self.h(q)

    # ------------------------------------------------------------------
    # Circuit execution
    # ------------------------------------------------------------------
    def run(self, circuit: Circuit) -> "TableauRunResult":
        """Execute a (noiseless) circuit and evaluate detectors/observables.

        Noise channels are ignored (probability-zero behaviour); use the frame
        simulator for noisy sampling.
        """
        detectors: list[bool] = []
        observables = [False] * max(circuit.num_observables, 1)
        for inst in circuit.instructions:
            name = inst.name
            if name == "H":
                for q in inst.targets:
                    self.h(q)
            elif name == "S":
                for q in inst.targets:
                    self.s(q)
            elif name == "X":
                for q in inst.targets:
                    self.x_gate(q)
            elif name == "Z":
                for q in inst.targets:
                    self.z_gate(q)
            elif name == "CX":
                for c, t in inst.target_pairs():
                    self.cx(c, t)
            elif name == "CZ":
                for a, b in inst.target_pairs():
                    self.cz(a, b)
            elif name == "M":
                for q in inst.targets:
                    self.measure_z(q)
            elif name == "MX":
                for q in inst.targets:
                    self.measure_x(q)
            elif name == "MR":
                for q in inst.targets:
                    out = self.measure_z(q)
                    if out:
                        self.x_gate(q)
            elif name == "R":
                for q in inst.targets:
                    self.reset_z(q)
            elif name == "RX":
                for q in inst.targets:
                    self.reset_x(q)
            elif name == "DETECTOR":
                acc = False
                for mi in inst.targets:
                    acc ^= self.measurement_record[mi]
                detectors.append(acc)
            elif name == "OBSERVABLE_INCLUDE":
                obs = int(inst.arg)
                for mi in inst.targets:
                    observables[obs] ^= self.measurement_record[mi]
            else:
                # Noise channels and TICK are ignored in the reference run.
                continue
        return TableauRunResult(
            detectors=detectors,
            observables=observables[: circuit.num_observables],
            measurements=list(self.measurement_record),
        )


class TableauRunResult:
    """Outcome of a single noiseless tableau run."""

    def __init__(self, detectors: list[bool], observables: list[bool],
                 measurements: list[bool]):
        self.detectors = detectors
        self.observables = observables
        self.measurements = measurements

    def all_detectors_zero(self) -> bool:
        return not any(self.detectors)
