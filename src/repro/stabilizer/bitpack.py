"""Bit-packing helpers for the packed Pauli-frame simulator.

A *bit row* stores one boolean per Monte-Carlo shot, packed 64 shots to a
``uint64`` word in little-endian bit order: shot ``s`` lives in bit
``s % 64`` of word ``s // 64``.  Packing shrinks the frame and the
measurement-flip record by 8x in memory (boolean arrays are byte-per-bit in
numpy) and lets every XOR-style frame update touch 64 shots per word, which
is what makes the packed simulator's gate layer cheap on the
memory-bandwidth-bound benchmark host.

All helpers operate on the **last** axis so they work for single rows
(shape ``(num_words,)``) and row matrices (shape ``(rows, num_words)``)
alike.  :func:`pack_rows` is the multi-row hot path of the vectorised
sampler: one call packs a whole ``(targets, shots)`` flip-mask matrix —
e.g. every noise row of a fused channel — into ``(targets, num_words)``
words, instead of one :func:`pack_bits` call per target.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "num_words",
    "pack_bits",
    "pack_rows",
    "unpack_bits",
    "popcount",
]

WORD_BITS = 64


def num_words(num_bits: int) -> int:
    """Words needed to hold ``num_bits`` bits."""
    return (int(num_bits) + WORD_BITS - 1) // WORD_BITS


def _pack_last_axis(bits: np.ndarray) -> np.ndarray:
    """Pack booleans along the last axis into full little-endian words.

    The result spans ``num_words(n)`` words; padding bits beyond the input
    length are zero.  The word padding writes into a freshly allocated byte
    buffer (no concatenate copy) so the multi-row case costs one pass.
    """
    n = bits.shape[-1]
    nbytes = num_words(n) * (WORD_BITS // 8)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    if packed.shape[-1] != nbytes:
        padded = np.zeros(bits.shape[:-1] + (nbytes,), dtype=np.uint8)
        padded[..., : packed.shape[-1]] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack booleans along the last axis into little-endian ``uint64`` words.

    The result always spans ``num_words(n)`` full words; padding bits beyond
    the input length are zero.
    """
    return _pack_last_axis(np.asarray(bits, dtype=bool))


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, n)`` boolean matrix into ``(rows, num_words(n))`` words.

    The whole-matrix twin of :func:`pack_bits` used by the vectorised
    sampler: every row is one target's flip mask, and one call packs the
    full instruction (or fused instruction run) at once.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 2:
        raise ValueError(f"pack_rows expects a 2-D (rows, bits) matrix, got shape {bits.shape}")
    return _pack_last_axis(bits)


def unpack_bits(words: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``uint64`` words back to the first ``count`` booleans per row."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, count=int(count), bitorder="little")
    return bits.astype(bool)


# numpy >= 2.0 exposes a native SIMD popcount ufunc; older numpy falls back
# to unpacking bytes to bits and summing (8x the memory traffic).  Both
# paths count the same bits, so this is invisible in every result — the
# tests assert bit-identical counts across the two implementations.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_unpack(words: np.ndarray) -> int:
    """Fallback popcount via ``np.unpackbits`` (pre-2.0 numpy)."""
    return int(np.unpackbits(words.view(np.uint8), bitorder="little").sum())


def popcount(words: np.ndarray) -> int:
    """Total number of set bits (padding bits are zero by construction)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        # Sum in uint64: per-word counts are <= 64, and a frame would need
        # 2**58 words before the total could wrap.
        return int(np.bitwise_count(words).sum(dtype=np.uint64))
    return _popcount_unpack(words)
