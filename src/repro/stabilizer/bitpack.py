"""Bit-packing helpers for the packed Pauli-frame simulator.

A *bit row* stores one boolean per Monte-Carlo shot, packed 64 shots to a
``uint64`` word in little-endian bit order: shot ``s`` lives in bit
``s % 64`` of word ``s // 64``.  Packing shrinks the frame and the
measurement-flip record by 8x in memory (boolean arrays are byte-per-bit in
numpy) and lets every XOR-style frame update touch 64 shots per word, which
is what makes the packed simulator's gate layer cheap on the
memory-bandwidth-bound benchmark host.

All helpers operate on the **last** axis so they work for single rows
(shape ``(num_words,)``) and row matrices (shape ``(rows, num_words)``)
alike.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "num_words",
    "pack_bits",
    "unpack_bits",
    "popcount",
]

WORD_BITS = 64


def num_words(num_bits: int) -> int:
    """Words needed to hold ``num_bits`` bits."""
    return (int(num_bits) + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack booleans along the last axis into little-endian ``uint64`` words.

    The result always spans ``num_words(n)`` full words; padding bits beyond
    the input length are zero.
    """
    bits = np.asarray(bits, dtype=bool)
    n = bits.shape[-1]
    nw = num_words(n)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = nw * (WORD_BITS // 8) - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bits(words: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``uint64`` words back to the first ``count`` booleans per row."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, count=int(count), bitorder="little")
    return bits.astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits (padding bits are zero by construction)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return int(np.unpackbits(words.view(np.uint8), bitorder="little").sum())
