"""repro: reproduction of "Codesign of quantum error-correcting codes and
modular chiplets in the presence of defects" (Lin et al., ASPLOS 2024).

The package is organised as:

* :mod:`repro.stabilizer` - stabilizer-circuit substrate (Stim replacement).
* :mod:`repro.decoder` - MWPM / union-find decoders (PyMatching replacement).
* :mod:`repro.surface_code` - rotated surface-code layouts and circuits.
* :mod:`repro.noise` - fabrication-defect and circuit-level noise models.
* :mod:`repro.core` - the paper's contribution: defect adaptation,
  super-stabilizers, patch metrics and post-selection.
* :mod:`repro.chiplet` - modular chiplet architecture, yield, overhead and
  application-level estimates.
* :mod:`repro.experiments` - memory/stability experiment drivers and
  per-figure reproduction entry points.
* :mod:`repro.engine` - parallel Monte-Carlo execution engine: hashable
  task specs, sharded process-pool execution, adaptive shot allocation and
  a content-addressed on-disk result cache.
* :mod:`repro.analysis` - statistics and curve fitting.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
