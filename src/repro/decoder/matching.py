"""Minimum-weight perfect-matching decoder built on a detector error model.

This replaces PyMatching.  The decoder operates in two stages:

1. :class:`MatchingGraph` turns a graph-like :class:`DetectorErrorModel` into
   a weighted graph whose nodes are detectors plus a single virtual boundary
   node.  Each error mechanism with two detectors becomes an edge between
   them; mechanisms with one detector become edges to the boundary.  Edge
   weights are the usual log-likelihood weights ``w = log((1-p)/p)``, and each
   edge remembers which logical observables it flips.

2. :class:`MwpmDecoder` decodes syndromes shot by shot: Dijkstra shortest
   paths are computed from every fired detector, a complete graph over the
   fired detectors (plus per-detector boundary surrogates) is built, and a
   minimum-weight perfect matching is found with networkx's blossom
   implementation.  The predicted observable flip is the XOR of the
   observable parities accumulated along the matched shortest paths.

The implementation favours clarity and correctness over speed; shot counts in
the benchmark harness are sized accordingly (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..stabilizer.dem import DetectorErrorModel

__all__ = ["MatchingGraph", "MwpmDecoder", "DecodeResult"]

_MIN_PROBABILITY = 1e-12
_MAX_WEIGHT = 60.0


def _weight_of(p: float) -> float:
    """Log-likelihood edge weight for an error probability."""
    p = min(max(p, _MIN_PROBABILITY), 0.5 - 1e-9)
    return float(np.log((1.0 - p) / p))


@dataclass
class _Edge:
    u: int
    v: int
    weight: float
    probability: float
    observables: Tuple[int, ...]


class MatchingGraph:
    """Weighted detector graph with a virtual boundary node.

    The boundary node has index ``num_detectors``.
    """

    def __init__(self, dem: DetectorErrorModel):
        self.num_detectors = dem.num_detectors
        self.num_observables = dem.num_observables
        self.boundary = dem.num_detectors
        self._edges: Dict[Tuple[int, int], _Edge] = {}

        for err in dem.errors:
            if not err.detectors:
                continue
            if len(err.detectors) == 1:
                u, v = err.detectors[0], self.boundary
            elif len(err.detectors) == 2:
                u, v = err.detectors
            else:
                raise ValueError(
                    "matching graph requires a graph-like DEM; got an error "
                    f"touching {len(err.detectors)} detectors"
                )
            key = (min(u, v), max(u, v))
            candidate = _Edge(key[0], key[1], _weight_of(err.probability),
                              err.probability, err.observables)
            existing = self._edges.get(key)
            # Keep the most likely mechanism for each detector pair; parallel
            # edges with different observable masks are resolved in favour of
            # the lower weight, as PyMatching does.
            if existing is None or candidate.probability > existing.probability:
                self._edges[key] = candidate

        self._build_sparse()

    # ------------------------------------------------------------------
    def _build_sparse(self) -> None:
        n = self.num_detectors + 1
        rows, cols, vals = [], [], []
        for (u, v), e in self._edges.items():
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((e.weight, e.weight))
        # Guarantee every detector can reach the boundary so matching always
        # succeeds even for detectors with no single-detector mechanism.
        connected_to_boundary = {u for (u, v) in self._edges if v == self.boundary}
        connected_to_boundary |= {v for (u, v) in self._edges if u == self.boundary}
        self._fallback_boundary_weight = _MAX_WEIGHT
        self.adjacency = csr_matrix(
            (np.array(vals, dtype=float), (np.array(rows), np.array(cols))),
            shape=(n, n),
        ) if rows else csr_matrix((n, n), dtype=float)
        self._boundary_connected = connected_to_boundary

    # ------------------------------------------------------------------
    @property
    def edges(self) -> List[_Edge]:
        return list(self._edges.values())

    def num_edges(self) -> int:
        return len(self._edges)

    def edge_between(self, u: int, v: int) -> _Edge | None:
        return self._edges.get((min(u, v), max(u, v)))

    def observables_on_edge(self, u: int, v: int) -> Tuple[int, ...]:
        edge = self.edge_between(u, v)
        return edge.observables if edge is not None else ()

    def to_networkx(self) -> nx.Graph:
        """Full detector graph as a networkx graph (used by the UF decoder)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_detectors + 1))
        for (u, v), e in self._edges.items():
            g.add_edge(u, v, weight=e.weight, probability=e.probability,
                       observables=e.observables)
        return g


@dataclass
class DecodeResult:
    """Batch decode outcome."""

    predicted_observables: np.ndarray   # shape (shots, num_observables), bool
    num_shots: int

    def logical_error_count(self, actual_observables: np.ndarray) -> int:
        """Number of shots where any observable prediction was wrong."""
        if actual_observables.shape != self.predicted_observables.shape:
            raise ValueError("shape mismatch between actual and predicted observables")
        wrong = np.any(actual_observables != self.predicted_observables, axis=1)
        return int(np.count_nonzero(wrong))


class MwpmDecoder:
    """Exact minimum-weight perfect-matching decoder."""

    def __init__(self, graph: MatchingGraph | DetectorErrorModel):
        if isinstance(graph, DetectorErrorModel):
            graph = MatchingGraph(graph)
        self.graph = graph

    # ------------------------------------------------------------------
    def decode(self, detector_sample: Sequence[bool] | np.ndarray) -> np.ndarray:
        """Decode one shot; returns a boolean observable-flip vector."""
        detector_sample = np.asarray(detector_sample, dtype=bool)
        fired = list(np.flatnonzero(detector_sample))
        num_obs = max(self.graph.num_observables, 1)
        prediction = np.zeros(num_obs, dtype=bool)
        if not fired:
            return prediction[: self.graph.num_observables]

        boundary = self.graph.boundary
        dist, predecessors = dijkstra(
            self.graph.adjacency,
            directed=False,
            indices=fired,
            return_predecessors=True,
        )

        # Build the matching problem: fired nodes plus a boundary surrogate for
        # each.  Surrogates are mutually connected with zero weight so that
        # unmatched-to-boundary pairings are free.
        g = nx.Graph()
        k = len(fired)
        for i in range(k):
            for j in range(i + 1, k):
                w = dist[i, fired[j]]
                if np.isfinite(w):
                    g.add_edge(("d", i), ("d", j), weight=float(w))
            bw = dist[i, boundary]
            if not np.isfinite(bw):
                bw = self.graph._fallback_boundary_weight
            g.add_edge(("d", i), ("b", i), weight=float(bw))
            for j in range(i):
                g.add_edge(("b", i), ("b", j), weight=0.0)
        if k == 1:
            g.add_node(("b", 0))

        matching = nx.min_weight_matching(g)

        for a, b in matching:
            if a[0] == "b" and b[0] == "b":
                continue
            if a[0] == "b":
                a, b = b, a
            src_pos = a[1]
            if b[0] == "b":
                target = boundary
                if not np.isfinite(dist[src_pos, boundary]):
                    continue  # isolated detector matched through fallback
            else:
                target = fired[b[1]]
            for obs in self._path_observables(src_pos, target, predecessors, fired):
                prediction[obs] ^= True
        return prediction[: self.graph.num_observables]

    # ------------------------------------------------------------------
    def _path_observables(
        self,
        source_pos: int,
        target: int,
        predecessors: np.ndarray,
        fired: List[int],
    ) -> List[int]:
        """Observable indices flipped an odd number of times along the path."""
        flips: Dict[int, int] = {}
        node = target
        source = fired[source_pos]
        guard = 0
        while node != source:
            prev = predecessors[source_pos, node]
            if prev < 0:
                return []
            for obs in self.graph.observables_on_edge(int(prev), int(node)):
                flips[obs] = flips.get(obs, 0) + 1
            node = int(prev)
            guard += 1
            if guard > self.graph.num_detectors + 2:
                raise RuntimeError("predecessor walk failed to terminate")
        return [obs for obs, count in flips.items() if count % 2 == 1]

    # ------------------------------------------------------------------
    def decode_batch(self, detector_samples: np.ndarray) -> DecodeResult:
        """Decode a ``(shots, num_detectors)`` boolean array."""
        detector_samples = np.asarray(detector_samples, dtype=bool)
        shots = detector_samples.shape[0]
        num_obs = self.graph.num_observables
        out = np.zeros((shots, num_obs), dtype=bool)
        for s in range(shots):
            out[s] = self.decode(detector_samples[s])
        return DecodeResult(predicted_observables=out, num_shots=shots)
