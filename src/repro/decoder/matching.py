"""Minimum-weight perfect-matching decoder built on a detector error model.

This replaces PyMatching.  The decoder operates in two stages:

1. :class:`MatchingGraph` turns a graph-like :class:`DetectorErrorModel` into
   a weighted graph whose nodes are detectors plus a single virtual boundary
   node.  Each error mechanism with two detectors becomes an edge between
   them; mechanisms with one detector become edges to the boundary.  Edge
   weights are the usual log-likelihood weights ``w = log((1-p)/p)``, and each
   edge remembers which logical observables it flips.  Detectors whose
   connected component never reaches the boundary get an explicit *fallback*
   edge to it (weight :data:`_MAX_WEIGHT`), so every detector has a finite
   boundary distance and the matching and the post-matching path walk agree
   on what a boundary match means.

   The graph also owns the decoder's *geodesic cache*: single-source Dijkstra
   sweeps (distances + predecessors) are computed lazily, once per source
   detector, and the observable parity of each detector-pair geodesic is
   memoised as a frozenset.  All shots — and all batches, and both decoders —
   share these caches.

2. :class:`MwpmDecoder` decodes *distinct* syndromes (the deduplicating batch
   machinery lives in :class:`~repro.decoder.base.BatchDecoderBase`): a
   complete graph over the fired detectors (plus per-detector boundary
   surrogates) is built from cached geodesic distances, a minimum-weight
   perfect matching is found with networkx's blossom implementation, and the
   predicted observable flip is the XOR of the cached path parities of the
   matched pairs.

Decoding a batch therefore performs at most one Dijkstra sweep per distinct
fired detector and one blossom matching per distinct syndrome — at low
physical error rates, orders of magnitude less work than the historical
shot-by-shot loop, with bit-identical predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

from ..stabilizer.dem import DetectorErrorModel
from .base import BatchDecoderBase, DecodeResult

__all__ = ["MatchingGraph", "MwpmDecoder", "DecodeResult"]

_MIN_PROBABILITY = 1e-12
_MAX_WEIGHT = 60.0


def _weight_of(p: float) -> float:
    """Log-likelihood edge weight for an error probability."""
    p = min(max(p, _MIN_PROBABILITY), 0.5 - 1e-9)
    return float(np.log((1.0 - p) / p))


@dataclass
class _Edge:
    u: int
    v: int
    weight: float
    probability: float
    observables: Tuple[int, ...]


class MatchingGraph:
    """Weighted detector graph with a virtual boundary node.

    The boundary node has index ``num_detectors``.
    """

    def __init__(self, dem: DetectorErrorModel):
        self.num_detectors = dem.num_detectors
        self.num_observables = dem.num_observables
        self.boundary = dem.num_detectors
        self._edges: Dict[Tuple[int, int], _Edge] = {}

        for err in dem.errors:
            if not err.detectors:
                continue
            if len(err.detectors) == 1:
                u, v = err.detectors[0], self.boundary
            elif len(err.detectors) == 2:
                u, v = err.detectors
            else:
                raise ValueError(
                    "matching graph requires a graph-like DEM; got an error "
                    f"touching {len(err.detectors)} detectors"
                )
            key = (min(u, v), max(u, v))
            candidate = _Edge(key[0], key[1], _weight_of(err.probability),
                              err.probability, err.observables)
            existing = self._edges.get(key)
            # Keep the most likely mechanism for each detector pair; parallel
            # edges with different observable masks are resolved in favour of
            # the lower weight, as PyMatching does.
            if existing is None or candidate.probability > existing.probability:
                self._edges[key] = candidate

        self._build_sparse()
        # Geodesic cache: source -> (distance row, predecessor row) of one
        # Dijkstra sweep, and (u, v) -> frozenset observable parity of the
        # u-v geodesic.  Lazily filled, shared by every shot and batch;
        # growth is bounded by the graph itself (n sweeps of O(n) each,
        # O(n^2) pair parities worst case), and whole graphs are evicted by
        # the executor's per-worker task memo.
        self._geodesic_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._parity_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    def _build_sparse(self) -> None:
        n = self.num_detectors + 1
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for (u, v), e in self._edges.items():
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((e.weight, e.weight))
        connected_to_boundary = {u for (u, v) in self._edges if v == self.boundary}
        connected_to_boundary |= {v for (u, v) in self._edges if u == self.boundary}
        self._fallback_boundary_weight = _MAX_WEIGHT
        self._boundary_connected = connected_to_boundary

        adjacency = csr_matrix(
            (np.array(vals, dtype=float), (np.array(rows), np.array(cols))),
            shape=(n, n),
        ) if rows else csr_matrix((n, n), dtype=float)

        # Guarantee every detector can reach the boundary so matching always
        # succeeds even for detectors with no single-detector mechanism:
        # every connected component that never touches the boundary gets one
        # explicit fallback edge (weight ``_fallback_boundary_weight``) from
        # its lowest-index detector to the boundary node.  Boundary distances
        # are then finite for every detector, and the post-matching path walk
        # traverses the fallback edge like any other — the real edges on the
        # way to the component's anchor contribute their observables instead
        # of the whole correction being silently dropped.
        self._fallback_edges: frozenset = frozenset()
        if self.num_detectors > 0:
            _, labels = connected_components(adjacency, directed=False)
            boundary_label = labels[self.boundary]
            anchors: Dict[int, int] = {}
            for d in range(self.num_detectors):
                if labels[d] != boundary_label:
                    label = int(labels[d])
                    if label not in anchors or d < anchors[label]:
                        anchors[label] = d
            if anchors:
                self._fallback_edges = frozenset(anchors.values())
                for d in self._fallback_edges:
                    rows.extend((d, self.boundary))
                    cols.extend((self.boundary, d))
                    vals.extend((_MAX_WEIGHT, _MAX_WEIGHT))
                adjacency = csr_matrix(
                    (np.array(vals, dtype=float), (np.array(rows), np.array(cols))),
                    shape=(n, n),
                )
        self.adjacency = adjacency

    # ------------------------------------------------------------------
    @property
    def edges(self) -> List[_Edge]:
        return list(self._edges.values())

    def num_edges(self) -> int:
        return len(self._edges)

    def edge_between(self, u: int, v: int) -> _Edge | None:
        return self._edges.get((min(u, v), max(u, v)))

    def observables_on_edge(self, u: int, v: int) -> Tuple[int, ...]:
        edge = self.edge_between(u, v)
        return edge.observables if edge is not None else ()

    def to_networkx(self) -> nx.Graph:
        """Full detector graph as a networkx graph (used by the UF decoder)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_detectors + 1))
        for (u, v), e in self._edges.items():
            g.add_edge(u, v, weight=e.weight, probability=e.probability,
                       observables=e.observables)
        return g

    # ------------------------------------------------------------------
    # Geodesic cache
    # ------------------------------------------------------------------
    def geodesics_from(self, source: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached (distances, predecessors) of one Dijkstra sweep from ``source``."""
        cached = self._geodesic_cache.get(source)
        if cached is None:
            dist, predecessors = dijkstra(
                self.adjacency,
                directed=False,
                indices=[source],
                return_predecessors=True,
            )
            cached = (dist[0], predecessors[0])
            self._geodesic_cache[source] = cached
        return cached

    def pair_distance(self, u: int, v: int) -> float:
        """Geodesic distance between two nodes (cached per source)."""
        return float(self.geodesics_from(u)[0][v])

    def path_parity(self, u: int, v: int) -> FrozenSet[int]:
        """Observables flipped an odd number of times along the u-v geodesic.

        Computed by set-XOR over the edges of the cached shortest path and
        memoised per (unordered) detector pair, so repeated syndromes pay no
        path walk and no allocation.  Returns an empty set when ``v`` is
        unreachable from ``u`` (callers gate on :meth:`pair_distance`).
        """
        if u == v:
            return frozenset()
        key = (u, v) if u < v else (v, u)
        cached = self._parity_cache.get(key)
        if cached is not None:
            return cached
        _, predecessors = self.geodesics_from(key[0])
        parity: set = set()
        node = key[1]
        guard = 0
        while node != key[0]:
            prev = predecessors[node]
            if prev < 0:
                parity.clear()
                break
            parity.symmetric_difference_update(
                self.observables_on_edge(int(prev), int(node)))
            node = int(prev)
            guard += 1
            if guard > self.num_detectors + 2:
                raise RuntimeError("predecessor walk failed to terminate")
        result = frozenset(parity)
        self._parity_cache[key] = result
        return result

    def cache_stats(self) -> Dict[str, int]:
        """Sizes of the lazy caches (observability for the pipeline stats)."""
        return {
            "geodesic_sources": len(self._geodesic_cache),
            "path_parities": len(self._parity_cache),
        }


class MwpmDecoder(BatchDecoderBase):
    """Exact minimum-weight perfect-matching decoder.

    ``decode`` / ``decode_batch`` (inherited from
    :class:`~repro.decoder.base.BatchDecoderBase`) canonicalise and
    deduplicate syndromes; only *distinct* syndromes reach the matching
    stage below, which in turn only pays Dijkstra for detectors it has not
    seen before (the sweeps live in the shared :class:`MatchingGraph`).
    """

    def __init__(self, graph: MatchingGraph | DetectorErrorModel):
        super().__init__()
        if isinstance(graph, DetectorErrorModel):
            graph = MatchingGraph(graph)
        self.graph = graph
        self.num_observables = graph.num_observables

    # ------------------------------------------------------------------
    def _decode_fired(self, fired: Tuple[int, ...]) -> FrozenSet[int]:
        """Match one distinct syndrome and XOR the matched path parities."""
        graph = self.graph
        boundary = graph.boundary
        k = len(fired)
        dist_rows = [graph.geodesics_from(d)[0] for d in fired]

        # Build the matching problem: fired nodes plus a boundary surrogate
        # for each.  Surrogates are mutually connected with zero weight so
        # that unmatched-to-boundary pairings are free.
        g = nx.Graph()
        for i in range(k):
            di = dist_rows[i]
            for j in range(i + 1, k):
                w = di[fired[j]]
                if np.isfinite(w):
                    g.add_edge(("d", i), ("d", j), weight=float(w))
            bw = di[boundary]
            if not np.isfinite(bw):  # pragma: no cover - fallback edges
                bw = graph._fallback_boundary_weight
            g.add_edge(("d", i), ("b", i), weight=float(bw))
            for j in range(i):
                g.add_edge(("b", i), ("b", j), weight=0.0)
        if k == 1:
            g.add_node(("b", 0))

        matching = nx.min_weight_matching(g)

        parity: set = set()
        for a, b in matching:
            if a[0] == "b" and b[0] == "b":
                continue
            if a[0] == "b":
                a, b = b, a
            source = fired[a[1]]
            if b[0] == "b":
                if not np.isfinite(dist_rows[a[1]][boundary]):  # pragma: no cover
                    continue
                target = boundary
            else:
                target = fired[b[1]]
            parity ^= graph.path_parity(source, target)
        return frozenset(parity)
