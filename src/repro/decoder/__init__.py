"""Decoder substrate: matching graphs, MWPM and union-find decoders.

In-repo replacement for PyMatching (see DESIGN.md section 2).  Both decoders
share the deduplicating batch machinery in :mod:`repro.decoder.base` and the
geodesic/path-parity caches that live on :class:`MatchingGraph`.
"""

from .base import BatchDecoderBase, DecodeResult, syndrome_cache_limit
from .matching import MatchingGraph, MwpmDecoder
from .unionfind import UnionFindDecoder

__all__ = [
    "BatchDecoderBase",
    "DecodeResult",
    "MatchingGraph",
    "MwpmDecoder",
    "UnionFindDecoder",
    "syndrome_cache_limit",
]
