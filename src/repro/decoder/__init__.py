"""Decoder substrate: matching graphs, MWPM and union-find decoders.

In-repo replacement for PyMatching (see DESIGN.md section 2).
"""

from .matching import DecodeResult, MatchingGraph, MwpmDecoder
from .unionfind import UnionFindDecoder

__all__ = ["DecodeResult", "MatchingGraph", "MwpmDecoder", "UnionFindDecoder"]
