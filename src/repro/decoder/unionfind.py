"""Union-find (clustering + peeling) decoder.

A simpler and faster alternative to exact minimum-weight matching, included
for two reasons: as a performance baseline in the ablation benchmarks and as a
cross-check that logical error rates measured with MWPM are not artefacts of a
single decoder implementation.

The implementation follows the standard unweighted union-find construction
(Delfosse & Nickerson) specialised to graph-like detector error models:

1. Every fired detector seeds a cluster.  Clusters grow by half-edges in
   rounds; when two clusters meet they merge, and a cluster becomes *frozen*
   when it contains an even number of fired detectors or touches the boundary.
2. Once every cluster is frozen, each cluster is peeled: a spanning tree of
   the cluster is traversed leaf-to-root, selecting the edges needed to pair
   up the fired detectors inside the cluster (or route them to the boundary).
3. The predicted observable flip is the XOR of the observable masks of the
   selected edges.

The decoder is deliberately unweighted (uniform growth), which is the common
simplification; its logical error rate is slightly worse than MWPM, which is
exactly what the ablation benchmark demonstrates.

Batch entry points (``decode`` / ``decode_batch`` / ``decode_fired_batch``)
come from the shared :class:`~repro.decoder.base.BatchDecoderBase`, so the
union-find decoder gets the same canonicalise/deduplicate/early-out path as
MWPM: clusters are only grown once per *distinct* syndrome per batch, and
repeat syndromes hit the cross-batch memo.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from .base import BatchDecoderBase
from .matching import MatchingGraph
from ..stabilizer.dem import DetectorErrorModel

__all__ = ["UnionFindDecoder"]


class _DisjointSet:
    """Union-find with parity (number of fired defects) and boundary flags."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n
        self.defect_count = [0] * n
        self.touches_boundary = [False] * n

    def find(self, a: int) -> int:
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.defect_count[ra] += self.defect_count[rb]
        self.touches_boundary[ra] = self.touches_boundary[ra] or self.touches_boundary[rb]
        return ra


class UnionFindDecoder(BatchDecoderBase):
    """Cluster-growth / peeling decoder over a matching graph."""

    def __init__(self, graph: MatchingGraph | DetectorErrorModel):
        super().__init__()
        if isinstance(graph, DetectorErrorModel):
            graph = MatchingGraph(graph)
        self.graph = graph
        self.nx_graph = graph.to_networkx()
        self.boundary = graph.boundary
        self.num_observables = graph.num_observables
        # Precompute adjacency lists for growth.
        self.neighbors: Dict[int, List[int]] = {
            node: list(self.nx_graph.neighbors(node)) for node in self.nx_graph.nodes
        }

    # ------------------------------------------------------------------
    def _decode_fired(self, fired_tuple: Tuple[int, ...]) -> FrozenSet[int]:
        """Grow, peel and XOR the observable masks of one distinct syndrome."""
        fired = set(fired_tuple)
        parity: set = set()
        cluster_nodes, cluster_edges = self._grow_clusters(fired)
        for root, nodes in cluster_nodes.items():
            edges = cluster_edges[root]
            for u, v in self._peel(nodes, edges, fired):
                parity.symmetric_difference_update(
                    self.graph.observables_on_edge(u, v))
        return frozenset(parity)

    # ------------------------------------------------------------------
    def _grow_clusters(
        self, fired: Set[int]
    ) -> Tuple[Dict[int, Set[int]], Dict[int, Set[Tuple[int, int]]]]:
        """Grow clusters until all have even defect parity or touch boundary."""
        ds = _DisjointSet(self.graph.num_detectors + 1)
        in_cluster: Set[int] = set(fired)
        for d in fired:
            ds.defect_count[d] = 1
        ds.touches_boundary[self.boundary] = True

        def is_frozen(root: int) -> bool:
            return ds.defect_count[root] % 2 == 0 or ds.touches_boundary[root]

        active_roots = {ds.find(d) for d in fired}
        max_rounds = self.graph.num_detectors + 2
        for _ in range(max_rounds):
            active_roots = {r for r in (ds.find(r) for r in active_roots)
                            if not is_frozen(r)}
            if not active_roots:
                break
            # Grow every active cluster by one edge layer.
            frontier_nodes = [n for n in in_cluster if ds.find(n) in active_roots]
            newly_added: Set[int] = set()
            for node in frontier_nodes:
                for nb in self.neighbors.get(node, ()):
                    if nb == self.boundary:
                        root = ds.find(node)
                        ds.touches_boundary[root] = True
                        continue
                    if nb not in in_cluster:
                        newly_added.add(nb)
                    ds.union(node, nb)
            in_cluster |= newly_added
            if not newly_added and all(is_frozen(ds.find(r)) for r in active_roots):
                break

        # Collect final clusters containing at least one fired detector.
        cluster_nodes: Dict[int, Set[int]] = {}
        for node in in_cluster:
            root = ds.find(node)
            cluster_nodes.setdefault(root, set()).add(node)
        cluster_nodes = {
            r: nodes for r, nodes in cluster_nodes.items() if nodes & fired
        }
        cluster_edges: Dict[int, Set[Tuple[int, int]]] = {}
        boundary_allowed = {r: ds.touches_boundary[r] for r in cluster_nodes}
        for root, nodes in cluster_nodes.items():
            edges: Set[Tuple[int, int]] = set()
            for u in nodes:
                for v in self.neighbors.get(u, ()):
                    if v in nodes:
                        edges.add((min(u, v), max(u, v)))
                    elif v == self.boundary and boundary_allowed[root]:
                        edges.add((min(u, v), max(u, v)))
            cluster_edges[root] = edges
        return cluster_nodes, cluster_edges

    # ------------------------------------------------------------------
    def _peel(
        self,
        nodes: Set[int],
        edges: Set[Tuple[int, int]],
        fired: Set[int],
    ) -> List[Tuple[int, int]]:
        """Peel a cluster: choose correction edges pairing up fired detectors."""
        sub = nx.Graph()
        sub.add_nodes_from(nodes)
        include_boundary = any(self.boundary in e for e in edges)
        if include_boundary:
            sub.add_node(self.boundary)
        sub.add_edges_from(edges)
        if sub.number_of_nodes() == 0:
            return []

        correction: List[Tuple[int, int]] = []
        for component in nx.connected_components(sub):
            component = set(component)
            comp_fired = component & fired
            if not comp_fired:
                continue
            tree = nx.minimum_spanning_tree(sub.subgraph(component))
            # Root at the boundary when available so odd defects route there.
            root = self.boundary if self.boundary in component else next(iter(comp_fired))
            marked = {n: (n in comp_fired) for n in tree.nodes}
            # Process leaves inward.
            order = list(nx.dfs_postorder_nodes(tree, source=root))
            parent = {child: par for par, child in nx.bfs_edges(tree, source=root)}
            for node in order:
                if node == root:
                    continue
                if marked[node]:
                    par = parent[node]
                    correction.append((min(node, par), max(node, par)))
                    marked[par] = not marked.get(par, False)
                    marked[node] = False
        return correction
