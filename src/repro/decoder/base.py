"""Shared batched-decoding machinery for the MWPM and union-find decoders.

Per-shot decoding wastes most of its work at realistic physical error rates:
the large majority of shots produce the *empty* syndrome, and the non-empty
ones collapse to a small set of distinct fired-detector patterns.  The
:class:`BatchDecoderBase` mixin exploits that:

1. every shot is canonicalised to a sorted tuple of fired detector indices
   (the *sparse syndrome*, exactly what
   :meth:`~repro.stabilizer.packed.PackedDetectorSamples.fired_detectors`
   yields);
2. the empty syndrome short-circuits to "no correction";
3. distinct syndromes are decoded **once** per batch and the predictions are
   scattered back to every shot that produced them;
4. a bounded cross-batch memo (``REPRO_SYNDROME_CACHE`` entries, default
   65536; ``0`` disables it) lets later batches — e.g. successive waves of
   the adaptive shot scheduler — reuse earlier decodes outright; once full
   it evicts **least-recently-used** (hits refresh recency), so hot
   syndromes survive long varied sweeps while one-off patterns cycle out;
5. batches with many *unknown* distinct syndromes can fan the per-syndrome
   decodes across a thread pool (``REPRO_DECODE_FANOUT`` sets the minimum
   unknown count; ``0``, the default, keeps decoding serial).  Memo and
   counter bookkeeping still runs in deterministic batch order, so fanned
   results are bit-identical to serial ones;
6. the memo round-trips through :meth:`BatchDecoderBase.export_memo` /
   :meth:`BatchDecoderBase.import_memo` as primitive lists, which is what
   the pipeline persists into the on-disk result cache so restarted
   workers skip re-decoding syndromes a previous process already paid for.

Subclasses implement a single method, ``_decode_fired``, mapping a canonical
syndrome to the *parity set* of flipped logical observables (a frozenset, so
predictions are hashable and memoisable).  Everything else — dense and
sparse batch entry points, the legacy one-shot ``decode``, result packing —
lives here, shared by both decoders.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..env import env_int

__all__ = ["DecodeResult", "BatchDecoderBase", "decode_fanout_threshold",
           "syndrome_cache_limit"]

_DEFAULT_SYNDROME_CACHE = 1 << 16

# A canonical (sparse) syndrome: sorted tuple of fired detector indices.
Syndrome = Tuple[int, ...]


def syndrome_cache_limit(env=None) -> int:
    """Cross-batch syndrome-memo capacity from ``REPRO_SYNDROME_CACHE``.

    ``0`` disables the memo; negative or non-integer values raise a
    ``ValueError`` naming the variable.
    """
    return env_int("REPRO_SYNDROME_CACHE", _DEFAULT_SYNDROME_CACHE,
                   minimum=0, env=env)


def decode_fanout_threshold(env=None) -> int:
    """Minimum unknown-syndrome count that fans a batch across threads.

    Read from ``REPRO_DECODE_FANOUT``; ``0`` (the default) keeps decoding
    serial.  Negative or non-integer values raise a ``ValueError`` naming
    the variable.
    """
    return env_int("REPRO_DECODE_FANOUT", 0, minimum=0, env=env)


_FANOUT_POOL: Optional[ThreadPoolExecutor] = None


def _fanout_pool() -> ThreadPoolExecutor:
    """Process-wide decode thread pool, built on first fanned batch.

    Threads (not processes) because the decoders' lazy geodesic/parity
    caches live on the decoder object: concurrent ``_decode_fired`` calls
    race only on idempotent pure-function cache fills, which is safe under
    the GIL and keeps every computed value identical to a serial run.
    """
    global _FANOUT_POOL
    if _FANOUT_POOL is None:
        _FANOUT_POOL = ThreadPoolExecutor(
            max_workers=min(8, os.cpu_count() or 1),
            thread_name_prefix="repro-decode")
    return _FANOUT_POOL


@dataclass
class DecodeResult:
    """Batch decode outcome."""

    predicted_observables: np.ndarray   # shape (shots, num_observables), bool
    num_shots: int

    def logical_error_count(self, actual_observables: np.ndarray) -> int:
        """Number of shots where any observable prediction was wrong."""
        if actual_observables.shape != self.predicted_observables.shape:
            raise ValueError("shape mismatch between actual and predicted observables")
        wrong = np.any(actual_observables != self.predicted_observables, axis=1)
        return int(np.count_nonzero(wrong))


class BatchDecoderBase:
    """Canonicalise → deduplicate → decode once → scatter.

    Subclasses must provide ``num_observables`` (int attribute) and
    ``_decode_fired(fired: Syndrome) -> FrozenSet[int]``.
    """

    num_observables: int

    def __init__(self) -> None:
        self._syndrome_memo: dict = {}
        self._syndrome_memo_limit = syndrome_cache_limit()
        self._decode_fanout = decode_fanout_threshold()
        # Lifetime counters, surfaced by the pipeline stats and benchmarks.
        self.decoded_syndromes = 0     # _decode_fired invocations
        self.memo_hits = 0             # cross-batch memo hits
        self.memo_evictions = 0        # LRU evictions once the memo is full
        self.shots_decoded = 0         # shots routed through the batch path

    @property
    def memo_size(self) -> int:
        """Distinct syndromes currently held in the cross-batch memo.

        Together with the lifetime ``memo_hits``/``memo_evictions``
        counters (surfaced per run by
        :class:`~repro.engine.pipeline.PipelineStats` and recorded in the
        BENCH decoder artifacts), this is what sizes
        ``REPRO_SYNDROME_CACHE``: persistent evictions with the memo
        pinned at its limit mean the working set no longer fits.
        """
        return len(self._syndrome_memo)

    # ------------------------------------------------------------------
    def export_memo(self) -> List[list]:
        """Snapshot the syndrome memo as JSON-ready ``[[det...], [obs...]]``.

        Entries come out coldest-first (dict insertion order *is* the LRU
        order), so importing them in sequence reproduces the recency
        ranking on the receiving decoder.
        """
        return [[list(key), sorted(parity)]
                for key, parity in self._syndrome_memo.items()]

    def import_memo(self, entries: Sequence[Sequence]) -> int:
        """Seed the memo from an :meth:`export_memo` snapshot; returns size.

        Imports preserve entry order (coldest first) and respect this
        decoder's own ``REPRO_SYNDROME_CACHE`` limit by keeping only the
        *hottest* tail of an oversized snapshot.  Malformed or empty keys
        are skipped rather than poisoning the memo; counters are untouched
        — a preloaded syndrome counts as a memo hit when it first saves a
        decode, not before.
        """
        limit = self._syndrome_memo_limit
        if limit <= 0:
            return 0
        memo = self._syndrome_memo
        for entry in list(entries)[-limit:]:
            try:
                det, obs = entry
                key = tuple(int(i) for i in det)
                parity = frozenset(int(o) for o in obs)
            except (TypeError, ValueError):
                continue
            if key:
                memo.pop(key, None)
                memo[key] = parity
        while len(memo) > limit:
            memo.pop(next(iter(memo)))
        return len(memo)

    # ------------------------------------------------------------------
    def _decode_fired(self, fired: Syndrome) -> FrozenSet[int]:
        """Decode one canonical syndrome to its observable parity set."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def decode_fired(self, fired: Sequence[int]) -> FrozenSet[int]:
        """Memoised decode of one sparse syndrome."""
        return self._decode_canonical(tuple(sorted(int(i) for i in fired)))

    def _decode_canonical(self, key: Syndrome,
                          _precomputed: Optional[dict] = None) -> FrozenSet[int]:
        """Memoised decode of an already-canonical (sorted int tuple) syndrome.

        ``_precomputed`` carries parities a fanned batch already computed
        off-thread; the memo/counter bookkeeping below still runs here, in
        the caller's deterministic order, so fanned and serial batches are
        indistinguishable in results *and* counters.
        """
        if not key:
            return frozenset()
        memo = self._syndrome_memo
        hit = memo.get(key)
        if hit is not None:
            self.memo_hits += 1
            # LRU: re-insert so dict insertion order tracks recency and
            # ``next(iter(memo))`` below is always the coldest entry.  (FIFO
            # eviction aged out hot syndromes — e.g. the handful of
            # single-detector patterns that dominate every batch — at the
            # same rate as one-off noise.)
            memo.pop(key)
            memo[key] = hit
            return hit
        if _precomputed is not None and key in _precomputed:
            parity = _precomputed[key]
        else:
            parity = self._decode_fired(key)
        self.decoded_syndromes += 1
        if self._syndrome_memo_limit > 0:
            if len(memo) >= self._syndrome_memo_limit:
                memo.pop(next(iter(memo)))
                self.memo_evictions += 1
            memo[key] = parity
        return parity

    def decode_fired_batch(
        self,
        fired_lists: Sequence[Sequence[int]],
        *,
        assume_canonical: bool = False,
    ) -> List[FrozenSet[int]]:
        """Decode a batch of sparse syndromes, deduplicating within the batch.

        Each *distinct* non-empty syndrome is decoded at most once (and not
        at all when the cross-batch memo already knows it); the returned list
        scatters the predictions back into shot order.  Empty rows — the
        overwhelming majority at low physical error rates — skip
        canonicalisation entirely, and ``assume_canonical=True`` lets
        producers that already emit sorted int tuples (the packed extractor,
        :meth:`~repro.stabilizer.packed.PackedDetectorSamples.fired_detectors`)
        skip the per-shot sorted-tuple rebuild as well.
        """
        self.shots_decoded += len(fired_lists)
        empty: FrozenSet[int] = frozenset()
        distinct: dict = {}
        keys: List[Syndrome] = []
        for fired in fired_lists:
            if not len(fired):
                keys.append(())
                continue
            if assume_canonical and type(fired) is tuple:
                key: Syndrome = fired
            else:
                key = tuple(sorted(int(i) for i in fired))
            keys.append(key)
            if key not in distinct:
                distinct[key] = None
        precomputed = None
        if self._decode_fanout > 0:
            unknown = [k for k in distinct if k not in self._syndrome_memo]
            if len(unknown) >= self._decode_fanout:
                # Fan the expensive _decode_fired calls across threads; the
                # memo inserts and counters happen in the serial loop below,
                # in batch order, so results are bit-identical to serial.
                precomputed = dict(
                    zip(unknown, _fanout_pool().map(self._decode_fired,
                                                    unknown)))
        for key in distinct:
            distinct[key] = self._decode_canonical(key, precomputed)
        return [distinct[key] if key else empty for key in keys]

    # ------------------------------------------------------------------
    def _densify(self, parity: FrozenSet[int]) -> np.ndarray:
        out = np.zeros(self.num_observables, dtype=bool)
        for obs in parity:
            if obs < self.num_observables:
                out[obs] = True
        return out

    def decode(self, detector_sample: Union[Sequence[bool], np.ndarray]) -> np.ndarray:
        """Decode one dense shot; returns a boolean observable-flip vector."""
        detector_sample = np.asarray(detector_sample, dtype=bool)
        fired = tuple(int(i) for i in np.flatnonzero(detector_sample))
        return self._densify(self.decode_fired(fired))

    def decode_batch(self, detector_samples: Union[np.ndarray, Sequence]) -> DecodeResult:
        """Decode a dense ``(shots, num_detectors)`` batch through the dedup path.

        Input is coerced with ``np.asarray(..., dtype=bool)`` exactly like
        the historical per-shot API, so boolean arrays, 0/1 integer rows and
        nested Python lists all keep their old meaning.  Callers holding
        *sparse* fired-index lists (e.g. from
        :meth:`~repro.stabilizer.packed.PackedDetectorSamples.fired_detectors`)
        should use :meth:`decode_fired_batch` instead — guessing which of
        the two a ragged sequence means is inherently ambiguous.
        """
        dense = np.asarray(detector_samples, dtype=bool)
        if dense.ndim != 2:
            raise ValueError(
                "decode_batch expects a dense (shots, num_detectors) array; "
                "pass sparse fired-index lists to decode_fired_batch instead"
            )
        shots = dense.shape[0]
        parities = self.decode_fired_batch([np.flatnonzero(row) for row in dense])
        out = np.zeros((shots, self.num_observables), dtype=bool)
        for s, parity in enumerate(parities):
            for obs in parity:
                if obs < self.num_observables:
                    out[s, obs] = True
        return DecodeResult(predicted_observables=out, num_shots=shots)
