"""Shared batched-decoding machinery for the MWPM and union-find decoders.

Per-shot decoding wastes most of its work at realistic physical error rates:
the large majority of shots produce the *empty* syndrome, and the non-empty
ones collapse to a small set of distinct fired-detector patterns.  The
:class:`BatchDecoderBase` mixin exploits that:

1. every shot is canonicalised to a sorted tuple of fired detector indices
   (the *sparse syndrome*, exactly what
   :meth:`~repro.stabilizer.packed.PackedDetectorSamples.fired_detectors`
   yields);
2. the empty syndrome short-circuits to "no correction";
3. distinct syndromes are decoded **once** per batch and the predictions are
   scattered back to every shot that produced them;
4. a bounded cross-batch memo (``REPRO_SYNDROME_CACHE`` entries, default
   65536; ``0`` disables it) lets later batches — e.g. successive waves of
   the adaptive shot scheduler — reuse earlier decodes outright; once full
   it evicts FIFO (oldest entry first), so long varied workloads keep
   admitting fresh syndromes instead of degrading to a frozen stale cache.

Subclasses implement a single method, ``_decode_fired``, mapping a canonical
syndrome to the *parity set* of flipped logical observables (a frozenset, so
predictions are hashable and memoisable).  Everything else — dense and
sparse batch entry points, the legacy one-shot ``decode``, result packing —
lives here, shared by both decoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple, Union

import numpy as np

from ..env import env_int

__all__ = ["DecodeResult", "BatchDecoderBase", "syndrome_cache_limit"]

_DEFAULT_SYNDROME_CACHE = 1 << 16

# A canonical (sparse) syndrome: sorted tuple of fired detector indices.
Syndrome = Tuple[int, ...]


def syndrome_cache_limit(env=None) -> int:
    """Cross-batch syndrome-memo capacity from ``REPRO_SYNDROME_CACHE``.

    ``0`` disables the memo; negative or non-integer values raise a
    ``ValueError`` naming the variable.
    """
    return env_int("REPRO_SYNDROME_CACHE", _DEFAULT_SYNDROME_CACHE,
                   minimum=0, env=env)


@dataclass
class DecodeResult:
    """Batch decode outcome."""

    predicted_observables: np.ndarray   # shape (shots, num_observables), bool
    num_shots: int

    def logical_error_count(self, actual_observables: np.ndarray) -> int:
        """Number of shots where any observable prediction was wrong."""
        if actual_observables.shape != self.predicted_observables.shape:
            raise ValueError("shape mismatch between actual and predicted observables")
        wrong = np.any(actual_observables != self.predicted_observables, axis=1)
        return int(np.count_nonzero(wrong))


class BatchDecoderBase:
    """Canonicalise → deduplicate → decode once → scatter.

    Subclasses must provide ``num_observables`` (int attribute) and
    ``_decode_fired(fired: Syndrome) -> FrozenSet[int]``.
    """

    num_observables: int

    def __init__(self) -> None:
        self._syndrome_memo: dict = {}
        self._syndrome_memo_limit = syndrome_cache_limit()
        # Lifetime counters, surfaced by the pipeline stats and benchmarks.
        self.decoded_syndromes = 0     # _decode_fired invocations
        self.memo_hits = 0             # cross-batch memo hits
        self.memo_evictions = 0        # FIFO evictions once the memo is full
        self.shots_decoded = 0         # shots routed through the batch path

    @property
    def memo_size(self) -> int:
        """Distinct syndromes currently held in the cross-batch memo.

        Together with the lifetime ``memo_hits``/``memo_evictions``
        counters (surfaced per run by
        :class:`~repro.engine.pipeline.PipelineStats` and recorded in the
        BENCH decoder artifacts), this is what sizes
        ``REPRO_SYNDROME_CACHE``: persistent evictions with the memo
        pinned at its limit mean the working set no longer fits.
        """
        return len(self._syndrome_memo)

    # ------------------------------------------------------------------
    def _decode_fired(self, fired: Syndrome) -> FrozenSet[int]:
        """Decode one canonical syndrome to its observable parity set."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def decode_fired(self, fired: Sequence[int]) -> FrozenSet[int]:
        """Memoised decode of one sparse syndrome."""
        return self._decode_canonical(tuple(sorted(int(i) for i in fired)))

    def _decode_canonical(self, key: Syndrome) -> FrozenSet[int]:
        """Memoised decode of an already-canonical (sorted int tuple) syndrome."""
        if not key:
            return frozenset()
        memo = self._syndrome_memo
        hit = memo.get(key)
        if hit is not None:
            self.memo_hits += 1
            return hit
        parity = self._decode_fired(key)
        self.decoded_syndromes += 1
        if self._syndrome_memo_limit > 0:
            # FIFO eviction keeps admitting fresh syndromes on long varied
            # workloads: dicts preserve insertion order, so the first key is
            # the oldest entry.  (The pre-eviction behaviour froze the memo
            # solid once it filled — recent syndromes could never hit.)
            if len(memo) >= self._syndrome_memo_limit:
                memo.pop(next(iter(memo)))
                self.memo_evictions += 1
            memo[key] = parity
        return parity

    def decode_fired_batch(
        self,
        fired_lists: Sequence[Sequence[int]],
        *,
        assume_canonical: bool = False,
    ) -> List[FrozenSet[int]]:
        """Decode a batch of sparse syndromes, deduplicating within the batch.

        Each *distinct* non-empty syndrome is decoded at most once (and not
        at all when the cross-batch memo already knows it); the returned list
        scatters the predictions back into shot order.  Empty rows — the
        overwhelming majority at low physical error rates — skip
        canonicalisation entirely, and ``assume_canonical=True`` lets
        producers that already emit sorted int tuples (the packed extractor,
        :meth:`~repro.stabilizer.packed.PackedDetectorSamples.fired_detectors`)
        skip the per-shot sorted-tuple rebuild as well.
        """
        self.shots_decoded += len(fired_lists)
        empty: FrozenSet[int] = frozenset()
        distinct: dict = {}
        keys: List[Syndrome] = []
        for fired in fired_lists:
            if not len(fired):
                keys.append(())
                continue
            if assume_canonical and type(fired) is tuple:
                key: Syndrome = fired
            else:
                key = tuple(sorted(int(i) for i in fired))
            keys.append(key)
            if key not in distinct:
                distinct[key] = None
        for key in distinct:
            distinct[key] = self._decode_canonical(key)
        return [distinct[key] if key else empty for key in keys]

    # ------------------------------------------------------------------
    def _densify(self, parity: FrozenSet[int]) -> np.ndarray:
        out = np.zeros(self.num_observables, dtype=bool)
        for obs in parity:
            if obs < self.num_observables:
                out[obs] = True
        return out

    def decode(self, detector_sample: Union[Sequence[bool], np.ndarray]) -> np.ndarray:
        """Decode one dense shot; returns a boolean observable-flip vector."""
        detector_sample = np.asarray(detector_sample, dtype=bool)
        fired = tuple(int(i) for i in np.flatnonzero(detector_sample))
        return self._densify(self.decode_fired(fired))

    def decode_batch(self, detector_samples: Union[np.ndarray, Sequence]) -> DecodeResult:
        """Decode a dense ``(shots, num_detectors)`` batch through the dedup path.

        Input is coerced with ``np.asarray(..., dtype=bool)`` exactly like
        the historical per-shot API, so boolean arrays, 0/1 integer rows and
        nested Python lists all keep their old meaning.  Callers holding
        *sparse* fired-index lists (e.g. from
        :meth:`~repro.stabilizer.packed.PackedDetectorSamples.fired_detectors`)
        should use :meth:`decode_fired_batch` instead — guessing which of
        the two a ragged sequence means is inherently ambiguous.
        """
        dense = np.asarray(detector_samples, dtype=bool)
        if dense.ndim != 2:
            raise ValueError(
                "decode_batch expects a dense (shots, num_detectors) array; "
                "pass sparse fired-index lists to decode_fired_batch instead"
            )
        shots = dense.shape[0]
        parities = self.decode_fired_batch([np.flatnonzero(row) for row in dense])
        out = np.zeros((shots, self.num_observables), dtype=bool)
        for s, parity in enumerate(parities):
            for obs in parity:
                if obs < self.num_observables:
                    out[s, obs] = True
        return DecodeResult(predicted_observables=out, num_shots=shots)
