"""Frozen per-shot MWPM reference implementation.

This is the pre-pipeline shot-by-shot decoding algorithm, kept verbatim: a
fresh Dijkstra sweep over the fired detectors, a fresh networkx matching
graph per shot, and dict-counted path parities.  It exists for two reasons
and must **not** be optimised or refactored together with the live decoder:

* the property tests assert the batched/deduplicated
  :class:`~repro.decoder.matching.MwpmDecoder` is bit-identical to it on
  every shot, and
* the throughput benchmark uses it as the per-shot baseline, so speedups
  are measured against the genuine historical algorithm rather than against
  an accidentally-accelerated strawman.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import dijkstra

__all__ = ["reference_mwpm_decode"]


def _reference_path_observables(graph, source_pos, target, predecessors, fired):
    flips = {}
    node = target
    source = fired[source_pos]
    guard = 0
    while node != source:
        prev = predecessors[source_pos, node]
        if prev < 0:
            return []
        for obs in graph.observables_on_edge(int(prev), int(node)):
            flips[obs] = flips.get(obs, 0) + 1
        node = int(prev)
        guard += 1
        if guard > graph.num_detectors + 2:
            raise RuntimeError("predecessor walk failed to terminate")
    return [obs for obs, count in flips.items() if count % 2 == 1]


def reference_mwpm_decode(graph, detector_sample) -> np.ndarray:
    """Decode one dense shot with the historical per-shot MWPM algorithm."""
    detector_sample = np.asarray(detector_sample, dtype=bool)
    fired = list(np.flatnonzero(detector_sample))
    num_obs = max(graph.num_observables, 1)
    prediction = np.zeros(num_obs, dtype=bool)
    if not fired:
        return prediction[: graph.num_observables]

    boundary = graph.boundary
    dist, predecessors = dijkstra(
        graph.adjacency, directed=False, indices=fired, return_predecessors=True,
    )
    g = nx.Graph()
    k = len(fired)
    for i in range(k):
        for j in range(i + 1, k):
            w = dist[i, fired[j]]
            if np.isfinite(w):
                g.add_edge(("d", i), ("d", j), weight=float(w))
        bw = dist[i, boundary]
        if not np.isfinite(bw):
            bw = graph._fallback_boundary_weight
        g.add_edge(("d", i), ("b", i), weight=float(bw))
        for j in range(i):
            g.add_edge(("b", i), ("b", j), weight=0.0)
    if k == 1:
        g.add_node(("b", 0))

    for a, b in nx.min_weight_matching(g):
        if a[0] == "b" and b[0] == "b":
            continue
        if a[0] == "b":
            a, b = b, a
        src_pos = a[1]
        if b[0] == "b":
            target = boundary
            if not np.isfinite(dist[src_pos, boundary]):
                continue
        else:
            target = fired[b[1]]
        for obs in _reference_path_observables(graph, src_pos, target,
                                               predecessors, fired):
            prediction[obs] ^= True
    return prediction[: graph.num_observables]
