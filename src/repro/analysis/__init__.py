"""Statistics and curve-fitting helpers."""

from .fitting import SlopeFit, fit_ler_ansatz, fit_loglog_slope, projected_ler
from .stats import BinomialEstimate, combine_estimates, wilson_interval

__all__ = [
    "SlopeFit",
    "fit_ler_ansatz",
    "fit_loglog_slope",
    "projected_ler",
    "BinomialEstimate",
    "combine_estimates",
    "wilson_interval",
]
