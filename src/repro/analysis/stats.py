"""Statistics helpers: binomial confidence intervals and LER aggregation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = ["BinomialEstimate", "wilson_interval", "combine_estimates"]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used for the shaded 95% confidence bands of the LER plots (Fig. 6).
    """
    if trials <= 0:
        return (0.0, 1.0)
    if successes < 0 or successes > trials:
        raise ValueError("successes must lie in [0, trials]")
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    low = max(0.0, (centre - margin) / denom)
    high = min(1.0, (centre + margin) / denom)
    # At the boundaries the exact Wilson limits are 0 and 1, but the
    # centre/margin cancellation leaves ~1e-18 of floating-point residue,
    # which would put the bound on the wrong side of the point estimate.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


@dataclass(frozen=True)
class BinomialEstimate:
    """A logical-error-rate estimate with its sampling information."""

    failures: int
    shots: int

    def __post_init__(self) -> None:
        if self.shots <= 0:
            raise ValueError("shots must be positive")
        if not 0 <= self.failures <= self.shots:
            raise ValueError("failures must lie in [0, shots]")

    @property
    def rate(self) -> float:
        return self.failures / self.shots

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        return wilson_interval(self.failures, self.shots, z)

    @property
    def standard_error(self) -> float:
        p = self.rate
        return math.sqrt(max(p * (1 - p), 1e-300) / self.shots)

    def __str__(self) -> str:
        lo, hi = self.confidence_interval()
        return f"{self.rate:.3e} [{lo:.3e}, {hi:.3e}] ({self.failures}/{self.shots})"


def combine_estimates(a: BinomialEstimate, b: BinomialEstimate) -> BinomialEstimate:
    """Pool two independent estimates of the same rate."""
    return BinomialEstimate(failures=a.failures + b.failures, shots=a.shots + b.shots)
