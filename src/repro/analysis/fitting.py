"""Curve fitting for logical-error-rate scaling.

The paper characterises each patch by the gradient of its log-log LER-vs-p
curve (the "slope"), which by the ansatz ``LER = beta (N p)**(alpha d)``
(Eq. 1) approaches ``alpha d ~ d/2`` at low physical error rates.  This
module provides the least-squares log-log fit used to extract that slope, and
the full ansatz fit used in tests of the scaling behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SlopeFit", "fit_loglog_slope", "fit_ler_ansatz", "projected_ler"]


@dataclass(frozen=True)
class SlopeFit:
    """Result of a log-log linear fit ``log(LER) = slope * log(p) + intercept``."""

    slope: float
    intercept: float
    residual: float
    num_points: int

    def predict(self, p: float) -> float:
        return math.exp(self.intercept + self.slope * math.log(p))


def fit_loglog_slope(
    physical_error_rates: Sequence[float],
    logical_error_rates: Sequence[float],
) -> SlopeFit:
    """Least-squares fit of log(LER) against log(p).

    Points with a zero logical error rate are dropped (they carry no log
    information); at least two informative points are required.
    """
    xs, ys = [], []
    for p, ler in zip(physical_error_rates, logical_error_rates):
        if p <= 0:
            raise ValueError("physical error rates must be positive")
        if ler <= 0:
            continue
        xs.append(math.log(p))
        ys.append(math.log(ler))
    if len(xs) < 2:
        raise ValueError("need at least two non-zero LER points to fit a slope")
    coeffs, residuals, *_ = np.polyfit(xs, ys, 1, full=True)
    residual = float(residuals[0]) if len(residuals) else 0.0
    return SlopeFit(slope=float(coeffs[0]), intercept=float(coeffs[1]),
                    residual=residual, num_points=len(xs))


def fit_ler_ansatz(
    physical_error_rates: Sequence[float],
    logical_error_rates: Sequence[float],
    distance: int,
) -> Tuple[float, float]:
    """Fit ``LER = beta * (N p)**(alpha d)`` and return ``(alpha, beta*N**(alpha d))``.

    The fit is performed in log space; ``alpha`` is the slope divided by the
    code distance.
    """
    fit = fit_loglog_slope(physical_error_rates, logical_error_rates)
    alpha = fit.slope / distance
    prefactor = math.exp(fit.intercept)
    return alpha, prefactor


def projected_ler(slope_fit: SlopeFit, p: float) -> float:
    """Logical error rate extrapolated from a fitted slope to a new ``p``."""
    return slope_fit.predict(p)
