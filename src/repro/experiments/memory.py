"""Memory-experiment driver: sample logical error rates for adapted patches.

A memory experiment prepares the logical |0> state, runs ``rounds`` cycles of
syndrome extraction under circuit-level noise, decodes the resulting detector
record with minimum-weight perfect matching, and counts the shots in which
the decoder's prediction of the logical-Z observable disagrees with the
actual value.  This is the workhorse behind Figs. 5-11 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..analysis.stats import BinomialEstimate
from ..core.patch import AdaptedPatch
from ..decoder.matching import MatchingGraph, MwpmDecoder
from ..decoder.unionfind import UnionFindDecoder
from ..noise.circuit_noise import CircuitNoiseModel
from ..stabilizer.dem import build_detector_error_model
from ..stabilizer.frame import FrameSimulator
from ..surface_code.circuits import build_memory_circuit, build_stability_circuit

__all__ = ["MemoryExperimentResult", "run_memory_experiment", "run_stability_experiment"]


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Outcome of one logical-error-rate measurement."""

    physical_error_rate: float
    rounds: int
    shots: int
    failures: int
    num_detectors: int
    num_dem_errors: int
    decoder: str

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(failures=self.failures, shots=self.shots)

    def per_round_error_rate(self) -> float:
        """Logical error rate converted to a per-round rate."""
        total = self.logical_error_rate
        if total >= 1.0:
            return 1.0
        return 1.0 - (1.0 - total) ** (1.0 / max(self.rounds, 1))


def _decode_and_count(circuit, shots: int, seed: Optional[int], decoder: str) -> tuple:
    dem = build_detector_error_model(circuit)
    graph = MatchingGraph(dem)
    if decoder == "mwpm":
        dec = MwpmDecoder(graph)
    elif decoder == "unionfind":
        dec = UnionFindDecoder(graph)
    else:
        raise ValueError(f"unknown decoder {decoder!r}")
    samples = FrameSimulator(circuit, seed=seed).sample(shots)
    result = dec.decode_batch(samples.detectors)
    failures = result.logical_error_count(samples.observables)
    return failures, dem


def run_memory_experiment(
    patch: AdaptedPatch,
    physical_error_rate: float,
    shots: int,
    *,
    rounds: Optional[int] = None,
    noise: Optional[CircuitNoiseModel] = None,
    seed: Optional[int] = None,
    decoder: str = "mwpm",
) -> MemoryExperimentResult:
    """Measure the logical-Z memory error rate of an adapted patch.

    Parameters
    ----------
    patch:
        The adapted patch (defect-free patches work too).
    physical_error_rate:
        Two-qubit gate error rate ``p`` of the circuit-level noise model
        (ignored if an explicit ``noise`` model is supplied).
    shots:
        Number of Monte-Carlo samples.
    rounds:
        Number of syndrome-extraction rounds; defaults to the patch width.
    decoder:
        ``"mwpm"`` (exact matching, default) or ``"unionfind"``.
    """
    if noise is None:
        noise = CircuitNoiseModel.standard(physical_error_rate)
    if rounds is None:
        rounds = patch.layout.size
    circuit = build_memory_circuit(patch, noise, rounds)
    failures, dem = _decode_and_count(circuit, shots, seed, decoder)
    return MemoryExperimentResult(
        physical_error_rate=physical_error_rate,
        rounds=rounds,
        shots=shots,
        failures=failures,
        num_detectors=circuit.num_detectors,
        num_dem_errors=len(dem),
        decoder=decoder,
    )


def run_stability_experiment(
    patch: AdaptedPatch,
    physical_error_rate: float,
    shots: int,
    rounds: int,
    *,
    noise: Optional[CircuitNoiseModel] = None,
    seed: Optional[int] = None,
    decoder: str = "mwpm",
) -> MemoryExperimentResult:
    """Measure the stability-experiment failure rate (Sec. 6 of the paper)."""
    if noise is None:
        noise = CircuitNoiseModel.standard(physical_error_rate)
    circuit = build_stability_circuit(patch, noise, rounds)
    failures, dem = _decode_and_count(circuit, shots, seed, decoder)
    return MemoryExperimentResult(
        physical_error_rate=physical_error_rate,
        rounds=rounds,
        shots=shots,
        failures=failures,
        num_detectors=circuit.num_detectors,
        num_dem_errors=len(dem),
        decoder=decoder,
    )


def logical_error_rate_curve(
    patch: AdaptedPatch,
    physical_error_rates: Sequence[float],
    shots: int,
    *,
    rounds: Optional[int] = None,
    seed: Optional[int] = None,
    decoder: str = "mwpm",
) -> list[MemoryExperimentResult]:
    """Sweep ``p`` and return one result per value (the Fig. 6 style curve)."""
    rng = np.random.default_rng(seed)
    out = []
    for p in physical_error_rates:
        out.append(
            run_memory_experiment(
                patch, p, shots, rounds=rounds,
                seed=int(rng.integers(0, 2**31 - 1)), decoder=decoder,
            )
        )
    return out
