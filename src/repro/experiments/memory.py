"""Memory-experiment driver: sample logical error rates for adapted patches.

A memory experiment prepares the logical |0> state, runs ``rounds`` cycles of
syndrome extraction under circuit-level noise, decodes the resulting detector
record with minimum-weight perfect matching, and counts the shots in which
the decoder's prediction of the logical-Z observable disagrees with the
actual value.  This is the workhorse behind Figs. 5-11 of the paper.

The sample→decode→tally inner loop runs on the engine's fused
:class:`~repro.engine.pipeline.DecodingPipeline` (bit-packed frame sampling,
sparse syndrome extraction, deduplicated decoding against warm geodesic
caches), so every driver in this module inherits its throughput without any
code changes here; the numbers are bit-identical to the historical per-shot
path for the same seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.stats import BinomialEstimate
from ..core.patch import AdaptedPatch
from ..engine.executor import Engine, default_engine
from ..engine.rng import Seed
from ..engine.scheduler import ShotPolicy
from ..engine.tasks import LerPointTask
from ..noise.circuit_noise import CircuitNoiseModel

__all__ = ["MemoryExperimentResult", "run_memory_experiment", "run_stability_experiment"]


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Outcome of one logical-error-rate measurement."""

    physical_error_rate: float
    rounds: int
    shots: int
    failures: int
    num_detectors: int
    num_dem_errors: int
    decoder: str

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(failures=self.failures, shots=self.shots)

    def per_round_error_rate(self) -> float:
        """Logical error rate converted to a per-round rate."""
        total = self.logical_error_rate
        if total >= 1.0:
            return 1.0
        return 1.0 - (1.0 - total) ** (1.0 / max(self.rounds, 1))


def run_memory_experiment(
    patch: AdaptedPatch,
    physical_error_rate: float,
    shots: Optional[int] = None,
    *,
    rounds: Optional[int] = None,
    noise: Optional[CircuitNoiseModel] = None,
    seed: Seed = None,
    decoder: str = "mwpm",
    engine: Optional[Engine] = None,
    policy: Optional[ShotPolicy] = None,
) -> MemoryExperimentResult:
    """Measure the logical-Z memory error rate of an adapted patch.

    Runs through the execution engine: with the default (serial, single
    shard) configuration the numbers are identical to the historical direct
    simulation for the same seed; ``REPRO_WORKERS``/``REPRO_CACHE`` (or an
    explicit ``engine``) enable sharded parallel execution and result
    caching without changing them.

    Parameters
    ----------
    patch:
        The adapted patch (defect-free patches work too).
    physical_error_rate:
        Two-qubit gate error rate ``p`` of the circuit-level noise model
        (ignored if an explicit ``noise`` model is supplied).
    shots:
        Number of Monte-Carlo samples (fixed budget).
    rounds:
        Number of syndrome-extraction rounds; defaults to the patch width.
    decoder:
        ``"mwpm"`` (exact matching, default) or ``"unionfind"``.
    engine:
        Engine to run on; defaults to the process-wide default engine.
    policy:
        Adaptive :class:`ShotPolicy` overriding the fixed ``shots`` budget
        (early stop on a target failure count or CI width).
    """
    task = LerPointTask.from_patch(
        "memory", patch, physical_error_rate,
        rounds=rounds, noise=noise, decoder=decoder,
    )
    eng = engine if engine is not None else default_engine()
    result = eng.run_ler(task, shots=None if policy else shots,
                         policy=policy, seed=seed)
    return result.to_memory_result()


def run_stability_experiment(
    patch: AdaptedPatch,
    physical_error_rate: float,
    shots: Optional[int],
    rounds: int,
    *,
    noise: Optional[CircuitNoiseModel] = None,
    seed: Seed = None,
    decoder: str = "mwpm",
    engine: Optional[Engine] = None,
    policy: Optional[ShotPolicy] = None,
) -> MemoryExperimentResult:
    """Measure the stability-experiment failure rate (Sec. 6 of the paper)."""
    task = LerPointTask.from_patch(
        "stability", patch, physical_error_rate,
        rounds=rounds, noise=noise, decoder=decoder,
    )
    eng = engine if engine is not None else default_engine()
    result = eng.run_ler(task, shots=None if policy else shots,
                         policy=policy, seed=seed)
    return result.to_memory_result()


def logical_error_rate_curve(
    patch: AdaptedPatch,
    physical_error_rates: Sequence[float],
    shots: Optional[int] = None,
    *,
    rounds: Optional[int] = None,
    seed: Seed = None,
    decoder: str = "mwpm",
    engine: Optional[Engine] = None,
    policy: Optional[ShotPolicy] = None,
) -> list[MemoryExperimentResult]:
    """Sweep ``p`` and return one result per value (the Fig. 6 style curve).

    Point ``i`` draws from RNG child stream ``i`` of ``seed``
    (``SeedSequence`` spawning), so each point is independent of how many
    points the sweep contains and of the executing worker.  The engine runs
    the whole curve as one sweep (:meth:`Engine.run_sweep`): shards of all
    points — adaptive waves included — are interleaved into one pool, so a
    point draining its last wave never idles workers another point could
    use, and the results stay bit-identical to running each point alone.
    """
    tasks = [
        LerPointTask.from_patch("memory", patch, p, rounds=rounds,
                                decoder=decoder)
        for p in physical_error_rates
    ]
    eng = engine if engine is not None else default_engine()
    results = eng.run_ler_many(tasks, shots=None if policy else shots,
                               policy=policy, seed=seed)
    return [r.to_memory_result() for r in results]
