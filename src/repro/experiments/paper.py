"""Per-figure and per-table reproduction entry points.

Each function regenerates the data behind one figure or table of the paper's
evaluation and returns it as plain Python data structures (the benchmark
harness prints them; examples plot or tabulate them).  Every function accepts
scale parameters so the same code can run at laptop scale (defaults) or at
the paper's full scale; EXPERIMENTS.md records the default scaling and how it
maps onto the original parameters.

Figure/table index
------------------
``figure5_to_10_study``   slope-vs-indicator population (Figs. 5, 7, 8, 9, 10)
``figure6_curves``        LER vs p for defect-free and defective patches
``figure11_postselection``mean/worst slope of the selected fraction
``figure12_yield``        link-only yield & cost vs defect rate (target d)
``figure13_yield``        link+qubit yield & cost vs defect rate
``figure14_merge_example``distance drop after a lattice-surgery merge
``figure15_boundary``     yield under boundary standards 1-4
``figure16_rotation``     yield improvement from chiplet rotation
``figure17_yield``        larger chiplets for a larger target distance
``figure18_envelope``     minimum extra overhead vs defect rate
``figure19_distance_distribution`` code-distance histograms
``figure20_cutoff``       stability-experiment cutoff-fidelity study
``table1_and_2_resources``Shor-2048 resource estimates
``table3_and_4_fidelity`` Shor-2048 fidelity estimates vs baselines
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.executor import Engine, default_engine
from ..engine.rng import Seed, child_stream, spawn_streams
from ..chiplet.application import (
    ResourceEstimate,
    ShorWorkload,
    estimate_defect_intolerant_resources,
    estimate_no_defect_resources,
    estimate_super_stabilizer_resources,
)
from ..chiplet.boundary import STANDARD_1, STANDARD_2, STANDARD_3, STANDARD_4, merged_seam_distance
from ..chiplet.overhead import OverheadPoint, OverheadStudy, defect_intolerant_overhead
from ..chiplet.yield_model import YieldEstimator, defect_intolerant_yield
from ..core.adaptation import adapt_patch
from ..core.metrics import evaluate_patch
from ..core.postselection import (
    DistanceCriterion,
    rank_by_chosen_indicators,
    rank_by_faulty_count,
    select_fraction,
)
from ..noise.fabrication import LINK_AND_QUBIT, LINK_ONLY, DefectModel, DefectSet
from ..surface_code.layout import RotatedSurfaceCodeLayout
from .cutoff import CutoffStudy, run_cutoff_study
from .memory import logical_error_rate_curve
from .slope import SlopeStudy, estimate_slope, sample_defective_patches

__all__ = [
    "figure5_to_10_study",
    "figure6_curves",
    "figure11_postselection",
    "figure12_yield",
    "figure13_yield",
    "figure14_merge_example",
    "figure15_boundary",
    "figure16_rotation",
    "figure17_yield",
    "figure18_envelope",
    "figure19_distance_distribution",
    "figure20_cutoff",
    "table1_and_2_resources",
    "table3_and_4_fidelity",
]


def _pool_engine(engine: Optional[Engine]) -> Optional[Engine]:
    """Engine to hand to the yield Monte-Carlo paths.

    An explicitly passed engine always wins.  Otherwise the env-configured
    default engine is used only when it actually brings something: parallel
    execution slots (a process pool via ``REPRO_WORKERS``, or a remote
    socket fleet via ``REPRO_BACKEND=socket`` + ``REPRO_HOSTS``), or
    (since yield runs route through cacheable ``YieldTask`` specs) an
    on-disk result cache.  With neither, the serial yield path keeps its
    legacy sequential RNG stream (seed compatibility), whereas the engine
    path re-keys sample ``i`` to RNG child stream ``i`` — deterministic for
    any worker or host count, but a different stream split than the legacy
    loop.  Consequence (documented in the README): enabling
    ``REPRO_CACHE``, ``REPRO_WORKERS`` or a parallel ``REPRO_BACKEND``
    shifts seeded yield figures once; the shifted numbers are then stable
    and cache-hit reproducible.
    """
    if engine is not None:
        return engine
    default = default_engine()
    if default.parallel_slots > 1 or default.cache is not None:
        return default
    return None


# ----------------------------------------------------------------------
# Figures 5-11: slope vs indicators
# ----------------------------------------------------------------------
def figure5_to_10_study(
    *,
    size: int = 7,
    defect_rate: float = 0.02,
    num_patches: int = 8,
    physical_error_rates: Sequence[float] = (0.004, 0.006, 0.008),
    shots: int = 3000,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> SlopeStudy:
    """Sample defective chiplets, measure their slopes, collect indicators.

    Paper scale: l = 11, 50 patches per distance, p in [5e-4, 2e-3]; the
    defaults here use l = 7 and a higher-p window so that logical failures are
    observable with thousands (rather than billions) of shots.
    """
    model = DefectModel(LINK_AND_QUBIT, defect_rate)
    # Independent SeedSequence streams for the sampling stage and for each
    # patch's slope measurement: collision-free and call-order independent.
    sample_stream, slope_root = spawn_streams(seed, 2) if seed is not None else (None, None)
    patches = sample_defective_patches(size, model, num_patches,
                                       seed=sample_stream, min_distance=3,
                                       engine=engine)
    study = SlopeStudy()
    for i, patch in enumerate(patches):
        stream = None if slope_root is None else child_stream(slope_root, i)
        record = estimate_slope(patch, physical_error_rates, shots,
                                seed=stream, engine=engine)
        study.add(record)
    return study


def figure6_curves(
    *,
    defect_free_sizes: Sequence[int] = (3, 5),
    defective_size: int = 5,
    num_defective: int = 2,
    defect_rate: float = 0.02,
    physical_error_rates: Sequence[float] = (0.003, 0.005, 0.008),
    shots: int = 3000,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """LER-vs-p curves for defect-free and defective patches (Fig. 6 shape)."""
    curves: Dict[str, List[Tuple[float, float]]] = {}
    # One child stream per curve plus one for the defect sampling stage.
    n_streams = len(defect_free_sizes) + 1 + num_defective
    streams = spawn_streams(seed, n_streams) if seed is not None else [None] * n_streams
    for i, d in enumerate(defect_free_sizes):
        patch = adapt_patch(RotatedSurfaceCodeLayout(d), DefectSet.of())
        results = logical_error_rate_curve(patch, physical_error_rates, shots,
                                           seed=streams[i], engine=engine)
        curves[f"defect-free d={d}"] = [
            (r.physical_error_rate, r.logical_error_rate) for r in results
        ]
    model = DefectModel(LINK_AND_QUBIT, defect_rate)
    defective = sample_defective_patches(defective_size, model, num_defective,
                                         seed=streams[len(defect_free_sizes)],
                                         min_distance=3, engine=engine)
    for i, patch in enumerate(defective):
        metrics = evaluate_patch(patch)
        results = logical_error_rate_curve(
            patch, physical_error_rates, shots,
            seed=streams[len(defect_free_sizes) + 1 + i], engine=engine)
        curves[f"defective l={defective_size} d={metrics.distance} #{i}"] = [
            (r.physical_error_rate, r.logical_error_rate) for r in results
        ]
    return curves


def figure11_postselection(
    study: SlopeStudy,
    keep_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
) -> Dict[str, List[Tuple[float, float, float]]]:
    """Mean and worst slope of the kept chiplets vs keep-fraction.

    Returns, per strategy, tuples ``(fraction, mean_slope, worst_slope)``.
    The chosen-indicator ranking should dominate the faulty-count baseline,
    which is the Fig. 11 message.
    """
    metrics = [r.metrics for r in study.records]
    slopes = [r.slope for r in study.records]
    usable = [i for i, s in enumerate(slopes) if s is not None]
    out: Dict[str, List[Tuple[float, float, float]]] = {"baseline": [], "chosen": []}
    if not usable:
        return out
    rankings = {
        "chosen": [i for i in rank_by_chosen_indicators(metrics) if i in usable],
        "baseline": [i for i in rank_by_faulty_count(metrics) if i in usable],
    }
    for name, ranking in rankings.items():
        for fraction in keep_fractions:
            kept = select_fraction(ranking, fraction)
            kept_slopes = [slopes[i] for i in kept]
            out[name].append(
                (fraction, float(np.mean(kept_slopes)), float(min(kept_slopes)))
            )
    return out


# ----------------------------------------------------------------------
# Figures 12, 13, 17: yield and cost per logical qubit
# ----------------------------------------------------------------------
def _yield_and_cost(
    defect_model_kind: str,
    target_distance: int,
    chiplet_sizes: Sequence[int],
    defect_rates: Sequence[float],
    samples: int,
    allow_rotation: bool,
    seed: Seed,
    engine: Optional[Engine] = None,
) -> List[OverheadPoint]:
    study = OverheadStudy(
        target_distance=target_distance,
        defect_model_kind=defect_model_kind,
        chiplet_sizes=chiplet_sizes,
        defect_rates=defect_rates,
        samples=samples,
        allow_rotation=allow_rotation,
        seed=seed,
        engine=_pool_engine(engine),
    )
    return study.run()


def figure12_yield(
    *,
    target_distance: int = 9,
    chiplet_sizes: Sequence[int] = (9, 11, 13),
    defect_rates: Sequence[float] = (0.0, 0.002, 0.005, 0.01, 0.02),
    samples: int = 100,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[str, List[OverheadPoint]]:
    """Fig. 12: defective links only; yield (a) and scaled cost (b).

    The ``chiplet_sizes[0] == target_distance`` row doubles as the
    defect-intolerant baseline (an l = d chiplet tolerates no defect).
    """
    points = _yield_and_cost(LINK_ONLY, target_distance, chiplet_sizes,
                             defect_rates, samples, False, seed, engine)
    baseline = [
        OverheadPoint(
            chiplet_size=target_distance, defect_rate=rate,
            target_distance=target_distance,
            yield_fraction=defect_intolerant_yield(
                target_distance, DefectModel(LINK_ONLY, rate)),
            cost_per_logical_qubit=float("nan"),
            overhead=defect_intolerant_overhead(
                target_distance, DefectModel(LINK_ONLY, rate), target_distance),
        )
        for rate in defect_rates
    ]
    return {"super-stabilizer": points, "defect-intolerant-baseline": baseline}


def figure13_yield(
    *,
    target_distance: int = 9,
    chiplet_sizes: Sequence[int] = (9, 11, 13),
    defect_rates: Sequence[float] = (0.0, 0.002, 0.005, 0.01),
    samples: int = 100,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[str, List[OverheadPoint]]:
    """Fig. 13: links and qubits faulty at the same rate."""
    points = _yield_and_cost(LINK_AND_QUBIT, target_distance, chiplet_sizes,
                             defect_rates, samples, False, seed, engine)
    baseline = [
        OverheadPoint(
            chiplet_size=target_distance, defect_rate=rate,
            target_distance=target_distance,
            yield_fraction=defect_intolerant_yield(
                target_distance, DefectModel(LINK_AND_QUBIT, rate)),
            cost_per_logical_qubit=float("nan"),
            overhead=defect_intolerant_overhead(
                target_distance, DefectModel(LINK_AND_QUBIT, rate), target_distance),
        )
        for rate in defect_rates
    ]
    return {"super-stabilizer": points, "defect-intolerant-baseline": baseline}


def figure17_yield(
    *,
    target_distance: int = 13,
    chiplet_sizes: Sequence[int] = (13, 15, 17),
    defect_rates: Sequence[float] = (0.0, 0.002, 0.005, 0.01),
    samples: int = 60,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[str, List[OverheadPoint]]:
    """Fig. 17: the same study for a larger target distance (paper: d=17, l up to 27)."""
    points = _yield_and_cost(LINK_ONLY, target_distance, chiplet_sizes,
                             defect_rates, samples, False, seed, engine)
    return {"super-stabilizer": points}


# ----------------------------------------------------------------------
# Figures 14-16: boundaries and rotation
# ----------------------------------------------------------------------
def figure14_merge_example(*, size: int = 9) -> Dict[str, int]:
    """A concrete Fig. 14 instance: two patches whose individual distances stay
    high but whose merged seam distance drops because deformations align."""
    layout = RotatedSurfaceCodeLayout(size)
    # A defect near the *bottom* boundary of patch A and one near the *top*
    # boundary of patch B, at the same horizontal position: after merging A's
    # bottom edge with B's top edge, the seam is deformed at that column twice.
    mid_x = size if size % 2 == 1 else size - 1
    patch_a = adapt_patch(layout, DefectSet.of(qubits=[(mid_x, 2 * size - 1)]))
    patch_b = adapt_patch(layout, DefectSet.of(qubits=[(mid_x, 1)]))
    return {
        "patch_a_distance": evaluate_patch(patch_a).distance,
        "patch_b_distance": evaluate_patch(patch_b).distance,
        "merged_seam_distance": merged_seam_distance(patch_a, patch_b, "bottom"),
        "intact_seam_distance": size,
    }


def figure15_boundary(
    *,
    chiplet_size: int = 11,
    target_distance: int = 9,
    defect_rates: Sequence[float] = (0.002, 0.005, 0.01),
    samples: int = 100,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 15: yield under the four boundary standards (plus no requirement)."""
    standards = {
        "no requirement": None,
        "standard 1": STANDARD_1.with_target(target_distance),
        "standard 2": STANDARD_2.with_target(target_distance),
        "standard 3": STANDARD_3.with_target(target_distance),
        "standard 4": STANDARD_4.with_target(target_distance),
    }
    criterion = DistanceCriterion(target_distance)
    out: Dict[str, List[Tuple[float, float]]] = {name: [] for name in standards}
    for i, rate in enumerate(defect_rates):
        model = DefectModel(LINK_AND_QUBIT, rate)
        # Common random numbers: every standard judges the *same* sampled
        # chiplets at a given rate, so stricter standards have exactly lower
        # yield (a standard's accepted set is a subset of "no requirement").
        # The old ``seed + hash(name) % 1000`` both unpaired the comparison
        # and depended on string-hash randomisation between processes.
        cell = None if seed is None else child_stream(seed, i)
        for name, standard in standards.items():
            estimator = YieldEstimator(
                chiplet_size, model, criterion, boundary_standard=standard,
                seed=cell,
            )
            result = estimator.run(samples, engine=_pool_engine(engine))
            out[name].append((rate, result.yield_fraction))
    return out


def figure16_rotation(
    *,
    chiplet_sizes: Sequence[int] = (11, 13),
    target_distance: int = 9,
    defect_rates: Sequence[float] = (0.002, 0.005, 0.01),
    samples: int = 100,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 16: yield with and without the data/syndrome swap freedom."""
    criterion = DistanceCriterion(target_distance)
    out: Dict[str, List[Tuple[float, float]]] = {}
    for size in chiplet_sizes:
        for allow_rotation in (False, True):
            label = f"l={size}" + (" (rotation)" if allow_rotation else "")
            series = []
            for rate in defect_rates:
                model = DefectModel(LINK_AND_QUBIT, rate)
                estimator = YieldEstimator(size, model, criterion,
                                           allow_rotation=allow_rotation,
                                           seed=seed)
                series.append((rate,
                               estimator.run(samples,
                                             engine=_pool_engine(engine)).yield_fraction))
            out[label] = series
    return out


# ----------------------------------------------------------------------
# Figures 18-19
# ----------------------------------------------------------------------
def figure18_envelope(
    *,
    target_distances: Sequence[int] = (7, 9),
    chiplet_sizes_by_target: Optional[Dict[int, Sequence[int]]] = None,
    defect_rates: Sequence[float] = (0.002, 0.005, 0.01),
    defect_model_kind: str = LINK_ONLY,
    allow_rotation: bool = False,
    samples: int = 80,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[int, Dict[float, OverheadPoint]]:
    """Fig. 18: minimum extra overhead vs defect rate, per target distance."""
    out: Dict[int, Dict[float, OverheadPoint]] = {}
    for target in target_distances:
        sizes = (chiplet_sizes_by_target or {}).get(
            target, tuple(target + 2 * k for k in range(0, 3))
        )
        points = _yield_and_cost(defect_model_kind, target, sizes, defect_rates,
                                 samples, allow_rotation, seed, engine)
        out[target] = OverheadStudy.envelope(points)
    return out


def figure19_distance_distribution(
    *,
    chiplet_size: int = 15,
    defect_rate: float = 0.003,
    defect_model_kind: str = LINK_AND_QUBIT,
    target_distance: int = 9,
    samples: int = 200,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[int, float]:
    """Fig. 19: the code-distance distribution of sampled chiplets.

    Paper scale uses l = 33 at 0.1% and l = 39 at 0.3% with 10000 samples;
    the default here keeps the same defect-per-chiplet regime at l = 15.
    """
    model = DefectModel(defect_model_kind, defect_rate)
    estimator = YieldEstimator(chiplet_size, model,
                               DistanceCriterion(target_distance), seed=seed)
    result = estimator.run(samples, engine=_pool_engine(engine))
    return result.distance_distribution()


def figure20_cutoff(**kwargs) -> CutoffStudy:
    """Fig. 20: stability-experiment cutoff-fidelity study (see run_cutoff_study)."""
    return run_cutoff_study(**kwargs)


# ----------------------------------------------------------------------
# Tables 1-4
# ----------------------------------------------------------------------
def table1_and_2_resources(
    *,
    defect_rate: float = 0.001,
    chiplet_size: Optional[int] = None,
    workload: ShorWorkload = ShorWorkload(),
    samples: int = 50,
    seed: Seed = None,
    engine: Optional[Engine] = None,
) -> Dict[str, ResourceEstimate]:
    """Tables 1-2: resource estimates for the Shor-2048 device.

    ``chiplet_size`` defaults to the paper's optimum for the given defect rate
    (l = 33 at 0.1%, l = 39 at 0.3%, otherwise target+6).
    """
    model = DefectModel(LINK_AND_QUBIT, defect_rate)
    if chiplet_size is None:
        defaults = {0.001: 33, 0.003: 39}
        chiplet_size = defaults.get(defect_rate, workload.target_distance + 6)
    return {
        "no-defect": estimate_no_defect_resources(workload),
        "defect-intolerant": estimate_defect_intolerant_resources(model, workload),
        "super-stabilizer": estimate_super_stabilizer_resources(
            model, chiplet_size, workload=workload, samples=samples, seed=seed,
            engine=_pool_engine(engine)),
    }


def table3_and_4_fidelity(
    resources: Dict[str, ResourceEstimate],
    *,
    workload: ShorWorkload = ShorWorkload(),
) -> Dict[str, float]:
    """Tables 3-4: application fidelity of each approach.

    The modular super-stabilizer approach uses only accepted chiplets (all of
    which meet the target distance); the monolithic baseline must use every
    patch, including those below the target, so its fidelity is computed from
    the *unselected* distance distribution when available.
    """
    out: Dict[str, float] = {}
    for name, estimate in resources.items():
        out[name] = estimate.fidelity(workload)
    return out
