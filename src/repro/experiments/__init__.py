"""Experiment drivers and per-figure reproduction entry points."""

from .cutoff import CutoffPoint, CutoffStudy, run_cutoff_study
from .memory import (
    MemoryExperimentResult,
    logical_error_rate_curve,
    run_memory_experiment,
    run_stability_experiment,
)
from .slope import PatchSlopeRecord, SlopeStudy, estimate_slope, sample_defective_patches

__all__ = [
    "CutoffPoint",
    "CutoffStudy",
    "run_cutoff_study",
    "MemoryExperimentResult",
    "logical_error_rate_curve",
    "run_memory_experiment",
    "run_stability_experiment",
    "PatchSlopeRecord",
    "SlopeStudy",
    "estimate_slope",
    "sample_defective_patches",
]
