"""Cutoff-fidelity study (Sec. 6, Fig. 20).

Real devices do not have a crisp faulty/working split: a qubit may simply be
worse than its neighbours.  The paper uses the stability experiment to decide
when such a qubit should be disabled (and handled with super-stabilizers)
rather than kept in the code: for each candidate "bad qubit" error rate it
compares the logical performance of keeping the qubit against disabling it,
as a function of the error rate of the good qubits.

Every (strategy, bad rate, p) cell decodes on the engine's fused
:class:`~repro.engine.pipeline.DecodingPipeline`: shots stream through the
deduplicating decoder in bounded chunks, and each worker keeps its pipeline
(geodesic caches, memoised syndromes) warm per task content hash, so
multi-shard cells and scheduler waves of one cell never repeat decode work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..core.adaptation import adapt_patch
from ..engine.executor import Engine, default_engine
from ..engine.rng import Seed
from ..engine.tasks import CutoffCellTask
from ..noise.circuit_noise import CircuitNoiseModel
from ..noise.fabrication import DefectSet
from ..surface_code.layout import Coord, StabilityLayout
from .memory import MemoryExperimentResult

__all__ = ["CutoffPoint", "CutoffStudy", "run_cutoff_study", "center_data_qubit"]


def center_data_qubit(size: int) -> Coord:
    """The data qubit closest to the middle of a patch of the given width."""
    mid = size if size % 2 == 1 else size - 1
    return (mid, mid)


_DEFAULT_STABILITY_SIZE = 4


@dataclass(frozen=True)
class CutoffPoint:
    """One point of a Fig. 20 curve."""

    strategy: str                  # "keep" or "disable"
    bad_qubit_error_rate: Optional[float]
    physical_error_rate: float
    result: MemoryExperimentResult

    @property
    def logical_error_rate(self) -> float:
        return self.result.logical_error_rate


@dataclass
class CutoffStudy:
    """All curves of the cutoff-fidelity comparison."""

    size: int
    rounds: int
    points: List[CutoffPoint]

    def curve(self, strategy: str, bad_rate: Optional[float] = None) -> List[CutoffPoint]:
        return [
            p for p in self.points
            if p.strategy == strategy
            and (bad_rate is None or p.bad_qubit_error_rate == bad_rate)
        ]

    def crossover_rate(self, bad_rate: float) -> Optional[float]:
        """Largest good-qubit error rate at which disabling beats keeping.

        Returns ``None`` when keeping the qubit is always at least as good in
        the sampled window (i.e. the bad qubit is below the cutoff).
        """
        disable = {p.physical_error_rate: p.logical_error_rate
                   for p in self.curve("disable")}
        keep = {p.physical_error_rate: p.logical_error_rate
                for p in self.curve("keep", bad_rate)}
        crossings = [p for p in sorted(keep) if p in disable and disable[p] < keep[p]]
        return max(crossings) if crossings else None


def run_cutoff_study(
    *,
    size: int = _DEFAULT_STABILITY_SIZE,
    rounds: int = 5,
    physical_error_rates: Sequence[float] = (0.002, 0.004, 0.006, 0.008),
    bad_qubit_error_rates: Sequence[float] = (0.05, 0.08, 0.10, 0.15),
    shots: int = 2000,
    seed: Seed = None,
    bad_qubit: Optional[Coord] = None,
    engine: Optional[Engine] = None,
) -> CutoffStudy:
    """Reproduce the Fig. 20 comparison on the stability patch.

    The "keep" curves run the stability experiment with one elevated-error
    data qubit; the "disable" curve removes that qubit and forms
    super-stabilizers around it (via the standard adaptation path).

    Every (strategy, bad rate, p) cell becomes one :class:`CutoffCellTask`;
    the whole sweep is handed to the engine as a batch, so cells run in
    parallel (and hit the result cache) independently.  Cell ``i`` draws from
    RNG child stream ``i`` of ``seed``, in the deterministic order the cells
    are constructed below.
    """
    bad = bad_qubit or center_data_qubit(size)
    layout = StabilityLayout(size)

    disabled_patch = adapt_patch(layout, DefectSet.of(qubits=[bad]))
    intact_patch = adapt_patch(layout, DefectSet.of())

    tasks: List[CutoffCellTask] = []
    labels: List[tuple] = []
    for p in physical_error_rates:
        # from_patch is inherited, so it constructs CutoffCellTask cells
        # directly; replace() stamps the strategy metadata on the frozen task.
        cell = CutoffCellTask.from_patch(
            "stability", disabled_patch, p, rounds=rounds,
            noise=CircuitNoiseModel.standard(p),
        )
        tasks.append(replace(cell, strategy="disable"))
        labels.append(("disable", None, p))
        for bad_rate in bad_qubit_error_rates:
            noisy = CircuitNoiseModel.standard(p).with_bad_qubit(bad, bad_rate)
            cell = CutoffCellTask.from_patch(
                "stability", intact_patch, p, rounds=rounds, noise=noisy,
            )
            tasks.append(replace(cell, strategy="keep",
                                 bad_qubit_error_rate=float(bad_rate)))
            labels.append(("keep", bad_rate, p))

    eng = engine if engine is not None else default_engine()
    results = eng.run_ler_many(tasks, shots=shots, seed=seed)

    points = [
        CutoffPoint(strategy, bad_rate, p, result.to_memory_result())
        for (strategy, bad_rate, p), result in zip(labels, results)
    ]
    return CutoffStudy(size=size, rounds=rounds, points=points)
