"""Slope estimation: the paper's per-chiplet fidelity indicator study.

For each sampled defective chiplet the paper measures the logical error rate
at several physical error rates in a low-p window, fits the log-log slope and
correlates the slope with candidate quality indicators (code distance, number
of shortest logical operators, disabled-qubit fraction, cluster diameter,
number of faulty qubits).  This module packages that pipeline:
`sample_defective_patches` draws random chiplets, `estimate_slope` measures
and fits one chiplet, and `SlopeStudy` aggregates a whole population the way
Figs. 5 and 7-10 do.

The per-chiplet LER window runs through the engine's fused
:class:`~repro.engine.pipeline.DecodingPipeline`; because the window probes a
*low-p* regime, almost all shots collapse to the empty or a repeated
syndrome, which is exactly where the deduplicated decode path pays off —
slope populations that used to be decode-bound now cost little more than the
sampling itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.fitting import SlopeFit, fit_loglog_slope
from ..core.metrics import PatchMetrics, evaluate_patch
from ..core.patch import AdaptedPatch
from ..engine.executor import Engine, default_engine
from ..engine.rng import Seed
from ..engine.tasks import PatchSampleTask
from ..noise.fabrication import DefectModel
from .memory import logical_error_rate_curve

__all__ = ["PatchSlopeRecord", "SlopeStudy", "sample_defective_patches", "estimate_slope"]


@dataclass(frozen=True)
class PatchSlopeRecord:
    """One defective chiplet's indicators and measured slope."""

    metrics: PatchMetrics
    slope: Optional[float]
    logical_error_rates: tuple
    physical_error_rates: tuple

    @property
    def distance(self) -> int:
        return self.metrics.distance


@dataclass
class SlopeStudy:
    """A population of sampled chiplets with their slopes (Figs. 5, 7-10)."""

    records: List[PatchSlopeRecord] = field(default_factory=list)

    def add(self, record: PatchSlopeRecord) -> None:
        self.records.append(record)

    def by_distance(self) -> dict:
        out: dict = {}
        for rec in self.records:
            out.setdefault(rec.distance, []).append(rec)
        return out

    def mean_slope(self, distance: Optional[int] = None) -> float:
        slopes = [
            r.slope for r in self.records
            if r.slope is not None and (distance is None or r.distance == distance)
        ]
        if not slopes:
            return float("nan")
        return float(np.mean(slopes))


def sample_defective_patches(
    size: int,
    defect_model: DefectModel,
    num_patches: int,
    *,
    seed: Seed = None,
    require_valid: bool = True,
    min_distance: int = 2,
    engine: Optional[Engine] = None,
) -> List[AdaptedPatch]:
    """Draw random defective chiplets and adapt a surface code to each.

    Patches that fail to adapt (or whose distance collapses below
    ``min_distance``) are resampled, mirroring the paper's practice of
    studying chiplets that still support a code.  Sampling runs through the
    execution engine as a :class:`PatchSampleTask`: attempt ``i`` always uses
    RNG child stream ``i`` of ``seed``, so the returned patches are identical
    for any worker count.
    """
    task = PatchSampleTask(
        size=size,
        defect_model_kind=defect_model.kind,
        defect_rate=defect_model.rate,
        num_patches=num_patches,
        min_distance=min_distance,
        require_valid=require_valid,
    )
    eng = engine if engine is not None else default_engine()
    return eng.sample_patches(task, seed=seed)


def estimate_slope(
    patch: AdaptedPatch,
    physical_error_rates: Sequence[float],
    shots: int,
    *,
    rounds: Optional[int] = None,
    seed: Seed = None,
    decoder: str = "mwpm",
    engine: Optional[Engine] = None,
) -> PatchSlopeRecord:
    """Measure LER over a p-window, fit the log-log slope, collect indicators."""
    metrics = evaluate_patch(patch)
    results = logical_error_rate_curve(
        patch, physical_error_rates, shots, rounds=rounds, seed=seed,
        decoder=decoder, engine=engine,
    )
    lers = tuple(r.logical_error_rate for r in results)
    slope: Optional[float] = None
    try:
        fit: SlopeFit = fit_loglog_slope(list(physical_error_rates), list(lers))
        slope = fit.slope
    except ValueError:
        slope = None
    return PatchSlopeRecord(
        metrics=metrics,
        slope=slope,
        logical_error_rates=lers,
        physical_error_rates=tuple(physical_error_rates),
    )
