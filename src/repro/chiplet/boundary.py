"""Boundary constraints for lattice surgery between chiplets (Figs. 14-15).

Lattice surgery merges two neighbouring patches along one edge.  Boundary
deformations caused by defects near that edge can reduce the code distance of
the *merged* patch even when each individual patch still meets its distance
target (Fig. 14).  The paper therefore evaluates four post-selection
standards on patch edges:

* condition (a): an edge is completely free of deformations;
* condition (b): the total width of deformations along the edge is not enough
  to reduce the code distance after a merge (re-derived here as: the number
  of deformed positions along the edge must not exceed ``l - d_target``);
* scope (c): impose the condition on all four edges;
* scope (d): impose it on at least two edges of different types (one X-type
  and one Z-type edge), which is enough to schedule lattice surgery.

Standard 1 = (a)+(c), standard 2 = (a)+(d), standard 3 = (b)+(c),
standard 4 = (b)+(d), matching Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.patch import AdaptedPatch
from ..surface_code.layout import Coord

__all__ = [
    "EDGES",
    "edge_deformation_positions",
    "edge_is_deformation_free",
    "edge_deformation_width",
    "BoundaryStandard",
    "STANDARD_1",
    "STANDARD_2",
    "STANDARD_3",
    "STANDARD_4",
    "merged_seam_distance",
]

#: edge name -> (boundary check type hosted there)
EDGES: Dict[str, str] = {"top": "X", "bottom": "X", "left": "Z", "right": "Z"}


def _edge_positions(patch: AdaptedPatch, edge: str) -> List[Coord]:
    """Data-qubit coordinates in the outermost row/column along an edge."""
    l = patch.layout.size
    if edge == "top":
        return [(x, 1) for x in range(1, 2 * l, 2)]
    if edge == "bottom":
        return [(x, 2 * l - 1) for x in range(1, 2 * l, 2)]
    if edge == "left":
        return [(1, y) for y in range(1, 2 * l, 2)]
    if edge == "right":
        return [(2 * l - 1, y) for y in range(1, 2 * l, 2)]
    raise ValueError(f"unknown edge {edge!r}")


def edge_deformation_positions(patch: AdaptedPatch, edge: str) -> List[Coord]:
    """Edge data-qubit positions affected by a deformation (disabled qubits)."""
    disabled = set(patch.disabled_data)
    disabled_anc = set(patch.disabled_ancillas)
    out = []
    for pos in _edge_positions(patch, edge):
        if pos in disabled:
            out.append(pos)
            continue
        # A disabled boundary check adjacent to the position also deforms the edge.
        x, y = pos
        for dx in (-1, 1):
            for dy in (-1, 1):
                if (x + dx, y + dy) in disabled_anc:
                    out.append(pos)
                    break
            else:
                continue
            break
    return out


def edge_is_deformation_free(patch: AdaptedPatch, edge: str) -> bool:
    """Condition (a): the edge carries no deformation at all."""
    return not edge_deformation_positions(patch, edge)


def edge_deformation_width(patch: AdaptedPatch, edge: str) -> int:
    """Number of edge positions affected by deformations."""
    return len(edge_deformation_positions(patch, edge))


def merged_seam_distance(patch_a: AdaptedPatch, patch_b: AdaptedPatch, edge: str) -> int:
    """Estimated code distance along the seam after merging two patches.

    Both patches are assumed to be merged along ``edge`` of ``patch_a`` (and
    the opposite edge of ``patch_b``).  Deformed positions on either merging
    edge remove that position from the seam; the remaining seam width bounds
    the merged code distance in the direction parallel to the seam, which is
    the quantity that can drop in Fig. 14.
    """
    opposite = {"top": "bottom", "bottom": "top", "left": "right", "right": "left"}
    width = patch_a.layout.size
    deformed = set()
    for pos in edge_deformation_positions(patch_a, edge):
        deformed.add(pos[0] if edge in ("top", "bottom") else pos[1])
    for pos in edge_deformation_positions(patch_b, opposite[edge]):
        deformed.add(pos[0] if edge in ("top", "bottom") else pos[1])
    return width - len(deformed)


@dataclass(frozen=True)
class BoundaryStandard:
    """A post-selection standard on patch edges (Fig. 15).

    ``require_no_deformation`` selects condition (a) over condition (b);
    ``all_edges`` selects scope (c) over scope (d); ``target_distance`` is the
    distance that must survive a merge for condition (b).
    """

    name: str
    require_no_deformation: bool
    all_edges: bool
    target_distance: Optional[int] = None

    def _edge_ok(self, patch: AdaptedPatch, edge: str) -> bool:
        if self.require_no_deformation:
            return edge_is_deformation_free(patch, edge)
        target = self.target_distance or patch.layout.size
        allowance = patch.layout.size - target
        return edge_deformation_width(patch, edge) <= allowance

    def accepts(self, patch: AdaptedPatch) -> bool:
        status = {edge: self._edge_ok(patch, edge) for edge in EDGES}
        if self.all_edges:
            return all(status.values())
        x_ok = status["top"] or status["bottom"]
        z_ok = status["left"] or status["right"]
        return x_ok and z_ok

    def with_target(self, target_distance: int) -> "BoundaryStandard":
        return BoundaryStandard(self.name, self.require_no_deformation,
                                self.all_edges, target_distance)


STANDARD_1 = BoundaryStandard("standard-1", require_no_deformation=True, all_edges=True)
STANDARD_2 = BoundaryStandard("standard-2", require_no_deformation=True, all_edges=False)
STANDARD_3 = BoundaryStandard("standard-3", require_no_deformation=False, all_edges=True)
STANDARD_4 = BoundaryStandard("standard-4", require_no_deformation=False, all_edges=False)
