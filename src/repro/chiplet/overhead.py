"""Resource-overhead analysis (Figs. 12b, 13b, 17b, 18; Tables 1-2).

The paper quantifies resource overhead as the *average number of fabricated
physical qubits per logical qubit*: the qubits on one chiplet divided by the
yield (discarded chiplets still had to be fabricated).  Everything else in
the study - the choice of chiplet size, the comparison against the
defect-intolerant baseline, the overhead envelope of Fig. 18 - derives from
this quantity.

The Monte-Carlo cells fan out over the engine's worker pool
(:meth:`YieldEstimator.run` with an ``engine``); when a study additionally
measures logical error rates for its accepted chiplets it does so through
the engine's fused :class:`~repro.engine.pipeline.DecodingPipeline`, the
same batched hot path every LER driver uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..core.postselection import DistanceCriterion
from ..engine.rng import Seed, child_stream
from ..noise.fabrication import DefectModel
from ..surface_code.layout import RotatedSurfaceCodeLayout
from .yield_model import YieldEstimator, YieldResult, defect_intolerant_yield

__all__ = [
    "qubits_per_chiplet",
    "average_cost_per_logical_qubit",
    "overhead_factor",
    "OverheadPoint",
    "OverheadStudy",
    "optimal_chiplet_size",
    "defect_intolerant_overhead",
]


def qubits_per_chiplet(chiplet_size: int) -> int:
    """Physical qubits fabricated on one chiplet: ``2 l**2 - 1``."""
    return RotatedSurfaceCodeLayout(chiplet_size).num_fabricated_qubits


def average_cost_per_logical_qubit(chiplet_size: int, yield_fraction: float) -> float:
    """Average fabricated qubits per accepted logical qubit."""
    if yield_fraction <= 0:
        return float("inf")
    return qubits_per_chiplet(chiplet_size) / yield_fraction


def overhead_factor(chiplet_size: int, yield_fraction: float, target_distance: int) -> float:
    """Cost relative to the ideal no-defect case (a distance-d chiplet at 100% yield)."""
    ideal = qubits_per_chiplet(target_distance)
    return average_cost_per_logical_qubit(chiplet_size, yield_fraction) / ideal


@dataclass(frozen=True)
class OverheadPoint:
    """One (defect rate, chiplet size) point of a Fig. 12b/13b/17b curve."""

    chiplet_size: int
    defect_rate: float
    target_distance: int
    yield_fraction: float
    cost_per_logical_qubit: float
    overhead: float

    @classmethod
    def from_yield(cls, result: YieldResult, target_distance: int) -> "OverheadPoint":
        y = result.yield_fraction
        return cls(
            chiplet_size=result.chiplet_size,
            defect_rate=result.defect_rate,
            target_distance=target_distance,
            yield_fraction=y,
            cost_per_logical_qubit=average_cost_per_logical_qubit(result.chiplet_size, y),
            overhead=overhead_factor(result.chiplet_size, y, target_distance),
        )


@dataclass
class OverheadStudy:
    """Yield and overhead curves over chiplet sizes and defect rates.

    This is the engine behind Figs. 12, 13, 17 and the Fig. 18 envelope: for
    each (chiplet size, defect rate) pair it runs a yield Monte-Carlo with the
    distance criterion and converts the result into an overhead factor.
    """

    target_distance: int
    defect_model_kind: str
    chiplet_sizes: Sequence[int]
    defect_rates: Sequence[float]
    samples: int = 200
    allow_rotation: bool = False
    seed: Seed = None
    engine: object = None  # Optional[repro.engine.Engine]

    def run(self) -> List[OverheadPoint]:
        points: List[OverheadPoint] = []
        criterion = DistanceCriterion(self.target_distance)
        n_rates = len(self.defect_rates)
        for i, size in enumerate(self.chiplet_sizes):
            for j, rate in enumerate(self.defect_rates):
                model = DefectModel(self.defect_model_kind, rate)
                if rate == 0.0:
                    # No defects: every chiplet passes as long as l >= d.
                    y = 1.0 if size >= self.target_distance else 0.0
                    points.append(OverheadPoint(
                        chiplet_size=size, defect_rate=rate,
                        target_distance=self.target_distance, yield_fraction=y,
                        cost_per_logical_qubit=average_cost_per_logical_qubit(size, y),
                        overhead=overhead_factor(size, y, self.target_distance)))
                    continue
                # One SeedSequence child stream per (size, rate) cell; the
                # old ``seed + size*1000 + int(rate*1e6)`` arithmetic could
                # collide between neighbouring cells.
                cell_seed = (None if self.seed is None
                             else child_stream(self.seed, i * n_rates + j))
                estimator = YieldEstimator(
                    size, model, criterion,
                    allow_rotation=self.allow_rotation,
                    seed=cell_seed,
                )
                result = estimator.run(self.samples, engine=self.engine)
                points.append(OverheadPoint.from_yield(result, self.target_distance))
        return points

    # ------------------------------------------------------------------
    @staticmethod
    def envelope(points: Iterable[OverheadPoint]) -> Dict[float, OverheadPoint]:
        """Minimum-overhead point per defect rate (the Fig. 18 curves)."""
        best: Dict[float, OverheadPoint] = {}
        for point in points:
            current = best.get(point.defect_rate)
            if current is None or point.overhead < current.overhead:
                best[point.defect_rate] = point
        return dict(sorted(best.items()))


def optimal_chiplet_size(points: Iterable[OverheadPoint], defect_rate: float) -> OverheadPoint:
    """The chiplet size minimising overhead at one defect rate."""
    candidates = [p for p in points if abs(p.defect_rate - defect_rate) < 1e-12]
    if not candidates:
        raise ValueError(f"no overhead points at defect rate {defect_rate}")
    return min(candidates, key=lambda p: p.overhead)


def defect_intolerant_overhead(
    chiplet_size: int, defect_model: DefectModel, target_distance: int
) -> float:
    """Overhead of the baseline that only accepts defect-free chiplets.

    The yield is analytic (``(1-f)**n_components``), so this scales to the
    very low yields of Tables 1-2 without any sampling.
    """
    y = defect_intolerant_yield(chiplet_size, defect_model)
    return overhead_factor(chiplet_size, y, target_distance)
