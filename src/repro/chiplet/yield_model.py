"""Yield estimation for post-selected chiplets (Figs. 12, 13, 15, 16, 17).

The *yield* is the fraction of fabricated chiplets that pass a post-selection
criterion.  It is estimated by Monte-Carlo: sample fabrication defects for
many chiplets, adapt a surface code to each, evaluate the indicators and test
the criterion.  The estimator also records the code-distance distribution of
the accepted chiplets, which feeds the application-fidelity estimates
(Fig. 19, Tables 3-4).

Yield sampling itself involves no decoding, but downstream consumers that
measure the logical performance of accepted chiplets (the slope study, the
cutoff sweep, the LER benchmarks) hand the sampled patches to
:class:`~repro.engine.tasks.LerPointTask` cells, which decode on the
engine's fused :class:`~repro.engine.pipeline.DecodingPipeline`.

Engine-routed runs go through a frozen :class:`~repro.engine.tasks.YieldTask`
spec whenever the estimator's criterion and boundary standard are the repo's
own types, which buys yield sweeps the same sharded fan-out *and*
content-addressed on-disk caching that LER tasks enjoy; estimators carrying
custom criterion objects fall back to the direct (un-cached) block fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..analysis.stats import BinomialEstimate
from ..core.postselection import PostSelectionCriterion
from ..engine.rng import Seed, child_stream, from_fingerprint, seed_fingerprint
from ..engine.tasks import YieldTask
from ..noise.fabrication import DefectModel
from ..surface_code.layout import RotatedSurfaceCodeLayout
from .architecture import Chiplet
from .boundary import BoundaryStandard

__all__ = ["YieldResult", "YieldEstimator", "defect_intolerant_yield"]


@dataclass
class YieldResult:
    """Outcome of one yield Monte-Carlo run."""

    chiplet_size: int
    defect_rate: float
    defect_model_kind: str
    samples: int
    accepted: int
    distance_counts: Dict[int, int] = field(default_factory=dict)
    accepted_distance_counts: Dict[int, int] = field(default_factory=dict)
    from_cache: bool = False

    @property
    def yield_fraction(self) -> float:
        return self.accepted / self.samples if self.samples else 0.0

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(failures=self.accepted, shots=max(self.samples, 1))

    def accepted_distance_distribution(self) -> Dict[int, float]:
        total = sum(self.accepted_distance_counts.values())
        if total == 0:
            return {}
        return {d: c / total for d, c in sorted(self.accepted_distance_counts.items())}

    def distance_distribution(self) -> Dict[int, float]:
        total = sum(self.distance_counts.values())
        if total == 0:
            return {}
        return {d: c / total for d, c in sorted(self.distance_counts.items())}


class YieldEstimator:
    """Monte-Carlo yield estimator over fabrication-defect samples."""

    def __init__(
        self,
        chiplet_size: int,
        defect_model: DefectModel,
        criterion: PostSelectionCriterion,
        *,
        allow_rotation: bool = False,
        boundary_standard: Optional[BoundaryStandard] = None,
        seed: Seed = None,
    ):
        self.chiplet_size = int(chiplet_size)
        self.defect_model = defect_model
        self.criterion = criterion
        self.allow_rotation = allow_rotation
        self.boundary_standard = boundary_standard
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.layout = RotatedSurfaceCodeLayout(chiplet_size)

    # ------------------------------------------------------------------
    def _evaluate_one(self) -> tuple:
        return _evaluate_chiplet(self.layout, self.defect_model, self.criterion,
                                 self.allow_rotation, self.boundary_standard,
                                 self.rng)

    def run(self, samples: int, *, engine=None) -> YieldResult:
        """Sample ``samples`` chiplets and measure the acceptance fraction.

        Without an ``engine`` this is the legacy sequential Monte-Carlo
        (sample ``i+1`` continues sample ``i``'s RNG stream).  With an
        engine, sample ``i`` draws from RNG child stream ``i`` of the
        estimator's seed and blocks of samples fan out over the engine's
        process pool; counts merge by plain summation, so engine results are
        identical for any worker count (but differ from the legacy stream
        split, much like the multi-shard LER path).

        Engine runs route through a frozen :class:`YieldTask` whenever the
        criterion/boundary are representable, so seeded sweeps additionally
        hit the engine's on-disk result cache; the direct block fan-out
        below is the (bit-identical) fallback for custom criterion objects.
        """
        if samples <= 0:
            raise ValueError("samples must be positive")
        if engine is not None:
            task = YieldTask.from_estimator(self, samples)
            if task is not None:
                return engine.run_yield(task, seed=self.seed)
            # Unrepresentable spec: the direct block fan-out keeps the same
            # stateless per-index child streams as the task route (repeated
            # calls are idempotent, unlike the legacy loop's mutable rng),
            # it just cannot be cached.
            return self._run_engine(samples, engine)
        accepted = 0
        distance_counts: Dict[int, int] = {}
        accepted_counts: Dict[int, int] = {}
        for _ in range(samples):
            metrics, ok = self._evaluate_one()
            distance_counts[metrics.distance] = distance_counts.get(metrics.distance, 0) + 1
            if ok:
                accepted += 1
                accepted_counts[metrics.distance] = accepted_counts.get(metrics.distance, 0) + 1
        return YieldResult(
            chiplet_size=self.chiplet_size,
            defect_rate=self.defect_model.rate,
            defect_model_kind=self.defect_model.kind,
            samples=samples,
            accepted=accepted,
            distance_counts=distance_counts,
            accepted_distance_counts=accepted_counts,
        )

    def _run_engine(self, samples: int, engine) -> YieldResult:
        """Fan sample blocks out over the engine's backend and merge."""
        fp = seed_fingerprint(self.seed)
        jobs = [(self.chiplet_size, self.defect_model, self.criterion,
                 self.allow_rotation, self.boundary_standard, fp, start, stop)
                for start, stop in yield_block_ranges(
                    samples, engine.parallel_slots)]
        accepted, distance_counts, accepted_counts = merge_yield_blocks(
            engine.starmap(_evaluate_yield_block, jobs))
        return YieldResult(
            chiplet_size=self.chiplet_size,
            defect_rate=self.defect_model.rate,
            defect_model_kind=self.defect_model.kind,
            samples=samples,
            accepted=accepted,
            distance_counts=distance_counts,
            accepted_distance_counts=accepted_counts,
        )


def yield_block_ranges(samples: int, parallel_slots: int):
    """Contiguous (start, stop) sample blocks for one yield run.

    Purely a throughput knob (sized so one round of blocks splits across
    the backend's job slots — pool workers or remote hosts): per-index RNG
    streams make the partition invisible in the counts.  Shared by the
    task-routed path (``Engine.run_yield``) and the direct fallback
    (:meth:`YieldEstimator._run_engine`).
    """
    workers = max(1, parallel_slots)
    block = max(1, -(-samples // (4 * workers)))
    start = 0
    while start < samples:
        stop = min(start + block, samples)
        yield start, stop
        start = stop


def merge_yield_blocks(outs) -> tuple:
    """Sum per-block (accepted, distance counts, accepted counts) triples."""
    accepted = 0
    distance_counts: Dict[int, int] = {}
    accepted_counts: Dict[int, int] = {}
    for block_accepted, block_dist, block_acc in outs:
        accepted += block_accepted
        for d, c in block_dist.items():
            distance_counts[d] = distance_counts.get(d, 0) + c
        for d, c in block_acc.items():
            accepted_counts[d] = accepted_counts.get(d, 0) + c
    return accepted, distance_counts, accepted_counts


def _evaluate_chiplet(
    layout: RotatedSurfaceCodeLayout,
    defect_model: DefectModel,
    criterion: PostSelectionCriterion,
    allow_rotation: bool,
    boundary_standard: Optional[BoundaryStandard],
    rng: np.random.Generator,
) -> tuple:
    """Sample one chiplet and test acceptance.

    Single source of truth for the acceptance logic: both the legacy
    sequential path and the engine's worker blocks call this, so the two
    cannot drift apart.
    """
    chiplet = Chiplet(layout=layout, defects=defect_model.sample(layout, rng))
    if allow_rotation:
        chiplet = chiplet.best_orientation(criterion)
    metrics = chiplet.metrics
    accepted = criterion.accepts(metrics)
    if accepted and boundary_standard is not None:
        accepted = boundary_standard.accepts(chiplet.patch)
    return metrics, accepted


def _evaluate_yield_block(
    chiplet_size: int,
    defect_model: DefectModel,
    criterion: PostSelectionCriterion,
    allow_rotation: bool,
    boundary_standard: Optional[BoundaryStandard],
    root_fp,
    start: int,
    stop: int,
) -> tuple:
    """Worker-side evaluation of sample indices [start, stop).

    Top-level so the process pool can pickle it; sample ``i`` always draws
    from child stream ``i`` of the root fingerprint, making block boundaries
    and worker assignment irrelevant to the outcome.
    """
    layout = RotatedSurfaceCodeLayout(chiplet_size)
    root = from_fingerprint(root_fp)
    accepted = 0
    distance_counts: Dict[int, int] = {}
    accepted_counts: Dict[int, int] = {}
    for idx in range(start, stop):
        stream = None if root is None else child_stream(root, idx)
        rng = np.random.default_rng(stream)
        metrics, ok = _evaluate_chiplet(layout, defect_model, criterion,
                                        allow_rotation, boundary_standard, rng)
        distance_counts[metrics.distance] = distance_counts.get(metrics.distance, 0) + 1
        if ok:
            accepted += 1
            accepted_counts[metrics.distance] = accepted_counts.get(metrics.distance, 0) + 1
    return accepted, distance_counts, accepted_counts


def defect_intolerant_yield(chiplet_size: int, defect_model: DefectModel) -> float:
    """Analytic yield of the defect-intolerant baseline (zero-defect chiplets)."""
    layout = RotatedSurfaceCodeLayout(chiplet_size)
    return defect_model.defect_free_probability(layout)
