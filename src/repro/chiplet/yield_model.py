"""Yield estimation for post-selected chiplets (Figs. 12, 13, 15, 16, 17).

The *yield* is the fraction of fabricated chiplets that pass a post-selection
criterion.  It is estimated by Monte-Carlo: sample fabrication defects for
many chiplets, adapt a surface code to each, evaluate the indicators and test
the criterion.  The estimator also records the code-distance distribution of
the accepted chiplets, which feeds the application-fidelity estimates
(Fig. 19, Tables 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..analysis.stats import BinomialEstimate
from ..core.metrics import PatchMetrics
from ..core.postselection import DefectFreeCriterion, PostSelectionCriterion
from ..noise.fabrication import DefectModel
from ..surface_code.layout import RotatedSurfaceCodeLayout
from .architecture import Chiplet
from .boundary import BoundaryStandard

__all__ = ["YieldResult", "YieldEstimator", "defect_intolerant_yield"]


@dataclass
class YieldResult:
    """Outcome of one yield Monte-Carlo run."""

    chiplet_size: int
    defect_rate: float
    defect_model_kind: str
    samples: int
    accepted: int
    distance_counts: Dict[int, int] = field(default_factory=dict)
    accepted_distance_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def yield_fraction(self) -> float:
        return self.accepted / self.samples if self.samples else 0.0

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(failures=self.accepted, shots=max(self.samples, 1))

    def accepted_distance_distribution(self) -> Dict[int, float]:
        total = sum(self.accepted_distance_counts.values())
        if total == 0:
            return {}
        return {d: c / total for d, c in sorted(self.accepted_distance_counts.items())}

    def distance_distribution(self) -> Dict[int, float]:
        total = sum(self.distance_counts.values())
        if total == 0:
            return {}
        return {d: c / total for d, c in sorted(self.distance_counts.items())}


class YieldEstimator:
    """Monte-Carlo yield estimator over fabrication-defect samples."""

    def __init__(
        self,
        chiplet_size: int,
        defect_model: DefectModel,
        criterion: PostSelectionCriterion,
        *,
        allow_rotation: bool = False,
        boundary_standard: Optional[BoundaryStandard] = None,
        seed: Optional[int] = None,
    ):
        self.chiplet_size = int(chiplet_size)
        self.defect_model = defect_model
        self.criterion = criterion
        self.allow_rotation = allow_rotation
        self.boundary_standard = boundary_standard
        self.rng = np.random.default_rng(seed)
        self.layout = RotatedSurfaceCodeLayout(chiplet_size)

    # ------------------------------------------------------------------
    def _evaluate_one(self) -> tuple:
        chiplet = Chiplet(layout=self.layout,
                          defects=self.defect_model.sample(self.layout, self.rng))
        if self.allow_rotation:
            chiplet = chiplet.best_orientation(self.criterion)
        metrics = chiplet.metrics
        accepted = self.criterion.accepts(metrics)
        if accepted and self.boundary_standard is not None:
            accepted = self.boundary_standard.accepts(chiplet.patch)
        return metrics, accepted

    def run(self, samples: int) -> YieldResult:
        """Sample ``samples`` chiplets and measure the acceptance fraction."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        accepted = 0
        distance_counts: Dict[int, int] = {}
        accepted_counts: Dict[int, int] = {}
        for _ in range(samples):
            metrics, ok = self._evaluate_one()
            distance_counts[metrics.distance] = distance_counts.get(metrics.distance, 0) + 1
            if ok:
                accepted += 1
                accepted_counts[metrics.distance] = accepted_counts.get(metrics.distance, 0) + 1
        return YieldResult(
            chiplet_size=self.chiplet_size,
            defect_rate=self.defect_model.rate,
            defect_model_kind=self.defect_model.kind,
            samples=samples,
            accepted=accepted,
            distance_counts=distance_counts,
            accepted_distance_counts=accepted_counts,
        )


def defect_intolerant_yield(chiplet_size: int, defect_model: DefectModel) -> float:
    """Analytic yield of the defect-intolerant baseline (zero-defect chiplets)."""
    layout = RotatedSurfaceCodeLayout(chiplet_size)
    return defect_model.defect_free_probability(layout)
