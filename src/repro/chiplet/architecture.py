"""Modular chiplet architecture: chiplets, orientation freedom, devices.

Each chiplet carries one rotated surface-code patch (Sec. 4.1, Fig. 4).  A
chiplet's fabrication defects are fixed at manufacturing time; what the
architect controls is

* whether the chiplet is accepted at all (post-selection, Sec. 4.2), and
* how the patch is laid onto the chiplet - in particular the freedom to swap
  the roles of data and measurement qubits by rotating the chiplet 180
  degrees (equivalently translating the patch by one physical site), which
  helps when a chiplet has more faulty measurement qubits than faulty data
  qubits (Fig. 16).

:class:`Chiplet` lazily adapts and evaluates its patch; :class:`ChipletDevice`
is a grid of accepted chiplets used by the application-level estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Tuple

import numpy as np

from ..core.adaptation import adapt_patch
from ..core.metrics import PatchMetrics, evaluate_patch
from ..core.patch import AdaptedPatch
from ..core.postselection import PostSelectionCriterion
from ..noise.fabrication import DefectModel, DefectSet
from ..surface_code.layout import Coord, RotatedSurfaceCodeLayout

__all__ = ["Chiplet", "ChipletDevice", "swap_data_syndrome_roles"]


def swap_data_syndrome_roles(defects: DefectSet, size: int) -> DefectSet:
    """Defect coordinates after swapping the data/measurement-qubit assignment.

    The swap is modelled as the paper's alternative formulation: translating
    the logical patch by one physical site diagonally, so a defect that used
    to sit under a data qubit now sits under a measurement qubit and vice
    versa.  Sites pushed past the patch boundary are translated in the
    opposite direction instead, which keeps the defect count unchanged.
    """
    limit = 2 * size

    def move(coord: Coord) -> Coord:
        x, y = coord
        nx = x + 1 if x + 1 <= limit else x - 1
        ny = y + 1 if y + 1 <= limit else y - 1
        return (nx, ny)

    def move_link(link: Tuple[Coord, Coord]) -> Tuple[Coord, Coord]:
        a, b = link
        # Translate both endpoints by the same vector so they stay adjacent.
        dx = 1 if max(a[0], b[0]) + 1 <= limit else -1
        dy = 1 if max(a[1], b[1]) + 1 <= limit else -1
        return ((a[0] + dx, a[1] + dy), (b[0] + dx, b[1] + dy))

    return DefectSet(
        faulty_qubits=frozenset(move(q) for q in defects.faulty_qubits),
        faulty_links=frozenset(move_link(l) for l in defects.faulty_links),
    )


@dataclass
class Chiplet:
    """One fabricated chiplet carrying a single surface-code patch."""

    layout: RotatedSurfaceCodeLayout
    defects: DefectSet
    rotated: bool = False

    @classmethod
    def sample(cls, size: int, defect_model: DefectModel,
               rng: np.random.Generator | int | None = None) -> "Chiplet":
        layout = RotatedSurfaceCodeLayout(size)
        return cls(layout=layout, defects=defect_model.sample(layout, rng))

    # ------------------------------------------------------------------
    @cached_property
    def patch(self) -> AdaptedPatch:
        defects = self.defects
        if self.rotated:
            defects = swap_data_syndrome_roles(defects, self.layout.size)
        return adapt_patch(self.layout, defects)

    @cached_property
    def metrics(self) -> PatchMetrics:
        return evaluate_patch(self.patch)

    @property
    def size(self) -> int:
        return self.layout.size

    @property
    def num_fabricated_qubits(self) -> int:
        return self.layout.num_fabricated_qubits

    # ------------------------------------------------------------------
    def rotate(self) -> "Chiplet":
        """The same physical chiplet with the data/syndrome assignment swapped."""
        return Chiplet(layout=self.layout, defects=self.defects,
                       rotated=not self.rotated)

    def best_orientation(self, criterion: PostSelectionCriterion) -> "Chiplet":
        """Pick the orientation that satisfies the criterion (or the better one).

        Models the Fig. 16 freedom: a chiplet is only discarded when *neither*
        orientation meets the post-selection standard.
        """
        if criterion.accepts(self.metrics):
            return self
        rotated = self.rotate()
        if criterion.accepts(rotated.metrics):
            return rotated
        # Neither passes: return the one with the better indicators anyway.
        if (rotated.metrics.distance, -rotated.metrics.num_shortest) > (
            self.metrics.distance, -self.metrics.num_shortest
        ):
            return rotated
        return self


@dataclass
class ChipletDevice:
    """A rectangular array of accepted chiplets (one logical qubit each)."""

    rows: int
    cols: int
    chiplets: List[Chiplet] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.chiplets) > self.rows * self.cols:
            raise ValueError("more chiplets than grid positions")

    @property
    def num_logical_qubits(self) -> int:
        return self.rows * self.cols

    @property
    def is_complete(self) -> bool:
        return len(self.chiplets) == self.rows * self.cols

    def total_fabricated_qubits(self) -> int:
        return sum(c.num_fabricated_qubits for c in self.chiplets)

    def distance_distribution(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for c in self.chiplets:
            out[c.metrics.distance] = out.get(c.metrics.distance, 0) + 1
        return out

    @classmethod
    def assemble(
        cls,
        rows: int,
        cols: int,
        size: int,
        defect_model: DefectModel,
        criterion: PostSelectionCriterion,
        *,
        allow_rotation: bool = False,
        rng: np.random.Generator | int | None = None,
        max_attempts_per_slot: int = 1000,
    ) -> Tuple["ChipletDevice", int]:
        """Fabricate-and-select chiplets until the grid is full.

        Returns the device and the total number of chiplets fabricated
        (accepted plus discarded), which is what the resource-overhead metric
        counts.
        """
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        accepted: List[Chiplet] = []
        fabricated = 0
        while len(accepted) < rows * cols:
            if fabricated > max_attempts_per_slot * rows * cols:
                raise RuntimeError("yield too low to assemble the device")
            chiplet = Chiplet.sample(size, defect_model, rng)
            fabricated += 1
            candidate = chiplet.best_orientation(criterion) if allow_rotation else chiplet
            if criterion.accepts(candidate.metrics):
                accepted.append(candidate)
        return cls(rows=rows, cols=cols, chiplets=accepted), fabricated
