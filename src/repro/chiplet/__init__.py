"""Modular chiplet architecture: yield, overhead, boundaries, applications."""

from .application import (
    ResourceEstimate,
    ShorWorkload,
    application_fidelity,
    estimate_defect_intolerant_resources,
    estimate_no_defect_resources,
    estimate_super_stabilizer_resources,
    topological_error_rate,
)
from .architecture import Chiplet, ChipletDevice, swap_data_syndrome_roles
from .boundary import (
    STANDARD_1,
    STANDARD_2,
    STANDARD_3,
    STANDARD_4,
    BoundaryStandard,
    edge_deformation_width,
    edge_is_deformation_free,
    merged_seam_distance,
)
from .overhead import (
    OverheadPoint,
    OverheadStudy,
    average_cost_per_logical_qubit,
    defect_intolerant_overhead,
    optimal_chiplet_size,
    overhead_factor,
    qubits_per_chiplet,
)
from .yield_model import YieldEstimator, YieldResult, defect_intolerant_yield

__all__ = [
    "ResourceEstimate",
    "ShorWorkload",
    "application_fidelity",
    "estimate_defect_intolerant_resources",
    "estimate_no_defect_resources",
    "estimate_super_stabilizer_resources",
    "topological_error_rate",
    "Chiplet",
    "ChipletDevice",
    "swap_data_syndrome_roles",
    "STANDARD_1",
    "STANDARD_2",
    "STANDARD_3",
    "STANDARD_4",
    "BoundaryStandard",
    "edge_deformation_width",
    "edge_is_deformation_free",
    "merged_seam_distance",
    "OverheadPoint",
    "OverheadStudy",
    "average_cost_per_logical_qubit",
    "defect_intolerant_overhead",
    "optimal_chiplet_size",
    "overhead_factor",
    "qubits_per_chiplet",
    "YieldEstimator",
    "YieldResult",
    "defect_intolerant_yield",
]
