"""Application-level resource and fidelity estimates (Sec. 5.3, Tables 1-4).

The case study is Shor's algorithm on 2048-bit integers as analysed by Gidney
and Ekera: a 226 x 63 grid of distance-27 surface-code patches running for
about 25 billion syndrome cycles.  The paper estimates

* the number of physical qubits that must be *fabricated* to assemble the
  device under a given defect rate, for the defect-intolerant baseline and
  for the super-stabilizer approach at the optimal chiplet size (Tables 1-2);
* the application fidelity via the topological-error model
  ``P_L(d) = A (p / p_th)**((d+1)/2)`` per patch per round, weighting by the
  code-distance distribution of the accepted (or, for a monolithic device,
  all) patches (Tables 3-4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..core.postselection import DistanceCriterion
from ..noise.fabrication import DefectModel
from .overhead import (
    average_cost_per_logical_qubit,
    defect_intolerant_yield,
    overhead_factor,
    qubits_per_chiplet,
)
from .yield_model import YieldEstimator, YieldResult

__all__ = [
    "ShorWorkload",
    "topological_error_rate",
    "application_fidelity",
    "ResourceEstimate",
    "estimate_super_stabilizer_resources",
    "estimate_defect_intolerant_resources",
    "estimate_no_defect_resources",
]


@dataclass(frozen=True)
class ShorWorkload:
    """The Gidney-Ekera Shor-2048 workload used by the paper's case study."""

    patch_rows: int = 226
    patch_cols: int = 63
    rounds: float = 25e9
    target_distance: int = 27
    physical_error_rate: float = 1e-3

    @property
    def num_patches(self) -> int:
        return self.patch_rows * self.patch_cols


def topological_error_rate(
    distance: int, physical_error_rate: float = 1e-3,
    *, prefactor: float = 0.1, threshold: float = 1e-2,
) -> float:
    """Per-patch, per-round logical error rate from the topological-error model.

    This is the standard ``A (p/p_th)**((d+1)/2)`` estimate used in Sec. 2.13
    of Gidney & Ekera and adopted by the paper for its fidelity estimates.
    """
    if distance <= 0:
        return 1.0
    exponent = (distance + 1) / 2.0
    return min(1.0, prefactor * (physical_error_rate / threshold) ** exponent)


def application_fidelity(
    distance_distribution: Mapping[int, float],
    workload: ShorWorkload = ShorWorkload(),
) -> float:
    """Probability that the whole application runs without a logical error.

    ``distance_distribution`` maps code distance to the fraction of patches
    with that distance (it must sum to ~1).  Each patch contributes an
    independent per-round failure probability from the topological-error
    model; the fidelity is the survival probability over all patches and all
    rounds.
    """
    total_weight = sum(distance_distribution.values())
    if total_weight <= 0:
        raise ValueError("distance distribution is empty")
    log_survival_per_round_per_patch = 0.0
    for distance, weight in distance_distribution.items():
        p_fail = topological_error_rate(distance, workload.physical_error_rate)
        share = weight / total_weight
        if p_fail >= 1.0:
            return 0.0
        log_survival_per_round_per_patch += share * math.log1p(-p_fail)
    total_log = log_survival_per_round_per_patch * workload.num_patches * workload.rounds
    return float(math.exp(total_log))


@dataclass(frozen=True)
class ResourceEstimate:
    """One column of Tables 1-2."""

    approach: str
    chiplet_size: int
    yield_fraction: float
    overhead: float
    total_fabricated_qubits: float
    distance_distribution: Dict[int, float] = field(default_factory=dict)

    def fidelity(self, workload: ShorWorkload = ShorWorkload()) -> float:
        if not self.distance_distribution:
            return 0.0
        return application_fidelity(self.distance_distribution, workload)


def estimate_no_defect_resources(workload: ShorWorkload = ShorWorkload()) -> ResourceEstimate:
    """The ideal no-defect column: every patch is exactly the target distance."""
    d = workload.target_distance
    per_chiplet = qubits_per_chiplet(d)
    return ResourceEstimate(
        approach="no-defect",
        chiplet_size=d,
        yield_fraction=1.0,
        overhead=1.0,
        total_fabricated_qubits=per_chiplet * workload.num_patches,
        distance_distribution={d: 1.0},
    )


def estimate_defect_intolerant_resources(
    defect_model: DefectModel, workload: ShorWorkload = ShorWorkload()
) -> ResourceEstimate:
    """The defect-intolerant baseline: chiplets of width d, zero defects required."""
    d = workload.target_distance
    y = defect_intolerant_yield(d, defect_model)
    cost = average_cost_per_logical_qubit(d, y)
    return ResourceEstimate(
        approach="defect-intolerant",
        chiplet_size=d,
        yield_fraction=y,
        overhead=overhead_factor(d, y, d),
        total_fabricated_qubits=cost * workload.num_patches,
        distance_distribution={d: 1.0},
    )


def estimate_super_stabilizer_resources(
    defect_model: DefectModel,
    chiplet_size: int,
    *,
    workload: ShorWorkload = ShorWorkload(),
    samples: int = 200,
    allow_rotation: bool = False,
    seed: Optional[int] = None,
    yield_result: Optional[YieldResult] = None,
    engine=None,
) -> ResourceEstimate:
    """The super-stabilizer approach at a given chiplet size.

    The yield and the code-distance distribution of accepted chiplets are
    estimated by Monte-Carlo (or taken from a pre-computed ``yield_result``).
    An ``engine`` (see :mod:`repro.engine`) fans the sampling out over its
    worker pool.
    """
    d = workload.target_distance
    if yield_result is None:
        estimator = YieldEstimator(
            chiplet_size, defect_model, DistanceCriterion(d),
            allow_rotation=allow_rotation, seed=seed,
        )
        yield_result = estimator.run(samples, engine=engine)
    y = yield_result.yield_fraction
    cost = average_cost_per_logical_qubit(chiplet_size, y)
    return ResourceEstimate(
        approach="super-stabilizer",
        chiplet_size=chiplet_size,
        yield_fraction=y,
        overhead=overhead_factor(chiplet_size, y, d),
        total_fabricated_qubits=cost * workload.num_patches,
        distance_distribution=yield_result.accepted_distance_distribution(),
    )
