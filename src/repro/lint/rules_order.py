"""R004 — no iteration over unordered collections without ``sorted()``.

Results, wire frames, cache records and JSON payloads must not depend on
iteration order that Python does not guarantee.  Two families of producer
have *no* deterministic order:

* **sets** — iteration order depends on insertion history *and* on the
  per-process string-hash salt (``PYTHONHASHSEED``), so two identical runs
  can emit differently-ordered output;
* **directory listings** — ``Path.iterdir`` / ``Path.glob`` /
  ``os.listdir`` / ``os.scandir`` yield filesystem order, which varies by
  OS, filesystem and file history.

The rule flags such an expression used directly as the iterable of a
``for`` loop or comprehension, or materialised via ``list()`` / ``tuple()``
/ ``enumerate()`` / ``str.join()``, unless it is wrapped in ``sorted()``
(or ``min``/``max``/``sum``/``len``/``any``/``all``/``set``/``frozenset``,
whose results are order-free).

This is lexical: a set stored in a variable and iterated three lines later
is invisible to the rule.  It still catches the pattern as it is actually
written in practice — ``for x in set(...)`` and ``for p in
root.iterdir()`` — and the repo's own convention (``tuple(sorted(...))``
at every producer) keeps the indirect case rare.  Iterating a ``dict``
(insertion-ordered since 3.7) is deliberately *not* flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import FileContext, Finding, Rule, register_rule

RULE_ID = "R004"

#: Call names producing unordered iterables.
_UNORDERED_CALLS = frozenset({"set", "frozenset"})
_UNORDERED_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "iterdir", "glob", "rglob",
})
_UNORDERED_DOTTED = frozenset({"os.listdir", "os.scandir"})

#: Consumers whose result does not depend on iteration order.
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})


def _unordered_reason(ctx: FileContext, node: ast.expr) -> Optional[str]:
    """Why ``node`` iterates in no guaranteed order, or ``None``."""
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr,
                                                            ast.BitAnd,
                                                            ast.BitXor,
                                                            ast.Sub)):
        # a | b etc. is only unordered when the operands are sets; flag only
        # when one side is itself lexically a set expression.
        if _unordered_reason(ctx, node.left) or _unordered_reason(ctx, node.right):
            return "set expression"
        return None
    if isinstance(node, ast.Call):
        dotted = ctx.dotted_name(node.func)
        if dotted in _UNORDERED_DOTTED:
            return f"{dotted}() (filesystem order)"
        if isinstance(node.func, ast.Name) and node.func.id in _UNORDERED_CALLS:
            return f"{node.func.id}()"
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _UNORDERED_METHODS:
            kind = ("filesystem order"
                    if node.func.attr in ("iterdir", "glob", "rglob")
                    else "set method")
            return f".{node.func.attr}() ({kind})"
    return None


def _finding(ctx: FileContext, node: ast.expr, reason: str) -> Finding:
    return Finding(
        rule=RULE_ID, path=ctx.path, line=node.lineno,
        col=node.col_offset + 1,
        message=f"iterating {reason} has no guaranteed order; downstream "
                "results/records may differ between runs",
        fixit="wrap the iterable in sorted(...) with a deterministic key",
    )


def _check(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            reason = _unordered_reason(ctx, node.iter)
            if reason:
                yield _finding(ctx, node.iter, reason)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp,
                               ast.SetComp)):
            order_free = isinstance(node, ast.SetComp)
            for gen in node.generators:
                reason = _unordered_reason(ctx, gen.iter)
                if reason and not order_free:
                    yield _finding(ctx, gen.iter, reason)
        elif isinstance(node, ast.Call):
            yield from _check_consumer(ctx, node)


def _check_consumer(ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
    # list(set(...)), tuple(x.iterdir()), enumerate(set(...)), sep.join(set())
    name: Optional[str] = None
    if isinstance(node.func, ast.Name):
        name = node.func.id
    elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
        name = "join"
    if name is None:
        return
    if name in _ORDER_FREE_CONSUMERS:
        return
    if name not in ("list", "tuple", "enumerate", "iter", "join"):
        return
    for arg in node.args[:1]:
        reason = _unordered_reason(ctx, arg)
        if reason:
            yield _finding(ctx, arg, reason)


register_rule(Rule(
    rule_id=RULE_ID,
    title="no order-dependent use of unordered iterables",
    check=_check,
))
