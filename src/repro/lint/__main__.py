"""CLI for the determinism lint pass: ``python -m repro.lint``.

Exit status: 0 — clean; 1 — findings; 2 — bad invocation.  ``--format
json`` prints the stable machine-readable report (version, per-rule
counts, findings with fix-its) that the CI job uploads next to the
``BENCH_*.json`` artifacts, so findings are diffable across pushes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core import find_repo_root, iter_rules, render_json, render_text, run_lint


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & invariant static analysis for this repo "
                    "(rules R001-R006; see README 'Determinism contract').",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: src/ tests/ benchmarks/)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json is what CI archives)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    rules = None
    if args.rules:
        rules = tuple(r.strip().upper() for r in args.rules.split(",")
                      if r.strip())
        known = {r.rule_id for r in iter_rules()}
        unknown = [r for r in rules if r not in known]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings, files_scanned = run_lint(
        paths=args.paths or None,
        repo_root=find_repo_root(),
        rules=rules,
    )
    if args.format == "json":
        print(render_json(findings, files_scanned))
    else:
        print(render_text(findings, files_scanned))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
