"""R002 — every ``REPRO_*`` knob flows through :mod:`repro.env`.

The validated readers (``env_int`` / ``env_float`` / ``env_choice`` /
``env_hosts`` / ``env_str``) are the *only* sanctioned way to read a
``REPRO_*`` variable: they normalise whitespace, range-check, and fail with
the variable's name and the offending value in the message.  A raw
``os.environ.get("REPRO_FOO")`` sidesteps all of that — a typo'd value
surfaces as a bare traceback deep in a worker, or worse, is silently
accepted.

Flagged, anywhere outside ``src/repro/env.py``:

* ``os.environ.get("REPRO_*", ...)`` and ``os.getenv("REPRO_*", ...)``;
* ``os.environ["REPRO_*"]`` *reads* (subscript loads; assignments and
  ``del`` — e.g. a test mutating its environment — are writes, not reads,
  and stay legal);
* ``<anything>.get("REPRO_*")`` — covers the ``env.get(...)`` idiom on a
  mapping parameter that defaults to ``os.environ``, which is how raw
  reads historically snuck past review;
* ``"REPRO_*" in os.environ`` membership probes.

The string-literal heuristic is deliberate: only keys named ``REPRO_*``
are the library's contract; reads of foreign variables (``HOME``,
``CI``…) are not this rule's business.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .core import FileContext, Finding, Rule, register_rule

RULE_ID = "R002"

_FIXIT = ("read it through repro.env (env_int / env_float / env_choice / "
          "env_hosts / env_str) so bad values fail with the variable named")


def _repro_literal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value.startswith("REPRO_"):
        return node.value
    return None


def _finding(ctx: FileContext, node: ast.AST, var: str, how: str) -> Finding:
    return Finding(
        rule=RULE_ID, path=ctx.path, line=node.lineno,
        col=node.col_offset + 1,
        message=f"raw read of {var} via {how} bypasses the validated "
                "repro.env readers",
        fixit=_FIXIT,
    )


def _check(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            first = _repro_literal(node.args[0]) if node.args else None
            if first is None:
                continue
            if dotted == "os.getenv":
                yield _finding(ctx, node, first, "os.getenv")
            elif dotted is not None and dotted.endswith(".get"):
                # .get("REPRO_*") on anything — os.environ or an `env`
                # mapping parameter alike.
                yield _finding(ctx, node, first, f"{dotted}(...)")
        elif isinstance(node, ast.Subscript):
            if not isinstance(node.ctx, ast.Load):
                continue  # writes/deletes (test setup) are not reads
            key = _repro_literal(node.slice)
            if key is None:
                continue
            dotted = ctx.dotted_name(node.value)
            if dotted is not None and dotted.endswith("environ"):
                yield _finding(ctx, node, key, f"{dotted}[...]")
        elif isinstance(node, ast.Compare):
            key = _repro_literal(node.left)
            if key is None or len(node.ops) != 1 \
                    or not isinstance(node.ops[0], (ast.In, ast.NotIn)):
                continue
            dotted = ctx.dotted_name(node.comparators[0])
            if dotted is not None and dotted.endswith("environ"):
                yield _finding(ctx, node, key, f"membership test on {dotted}")


register_rule(Rule(
    rule_id=RULE_ID,
    title="REPRO_* knobs read only via repro.env",
    check=_check,
    exempt_paths=("src/repro/env.py",),
))
