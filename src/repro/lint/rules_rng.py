"""R001 — no global-state or unseeded RNG outside the blessed modules.

Every random number in this repo must descend from an explicit
``SeedSequence`` root (:mod:`repro.engine.rng`): that is what makes results
bit-identical across the serial, process-pool and socket backends, across
worker counts, and across reruns.  Three patterns break that contract and
are flagged:

* calls into numpy's *global* generator — ``np.random.rand(...)``,
  ``np.random.seed(...)``, ``np.random.shuffle(...)`` and friends.
  Constructing generators (``default_rng``, ``Generator``, ``SeedSequence``,
  the bit generators) is fine; *sampling from the module itself* is not.
* any use of the stdlib :mod:`random` module (its state is process-global
  and seeded from OS entropy);
* ``default_rng()`` called with **no arguments** — that draws fresh OS
  entropy, so the result can never be reproduced or cached.

``default_rng(seed)`` with an argument is allowed even though the argument
might be ``None`` at runtime: the engine deliberately supports explicit
unseeded runs (they are excluded from the cache), and a lexical pass cannot
tell the two apart.  The exempt paths are the RNG derivation module itself
and the frozen reference simulator, whose job is to preserve historical
draw order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import FileContext, Finding, Rule, register_rule

RULE_ID = "R001"

#: Attributes of ``numpy.random`` that are constructors/types, not samples
#: from the global state.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState",  # explicit legacy generator object, not the global one
    "SFC64", "PCG64", "PCG64DXSM", "Philox", "MT19937",
})


def _check(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        # Stdlib `random` imports are flagged at the import itself.
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield Finding(
                        rule=RULE_ID, path=ctx.path, line=node.lineno,
                        col=node.col_offset + 1,
                        message="stdlib `random` is process-global state",
                        fixit="derive a generator from the task's "
                              "SeedSequence via repro.engine.rng instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield Finding(
                    rule=RULE_ID, path=ctx.path, line=node.lineno,
                    col=node.col_offset + 1,
                    message="stdlib `random` is process-global state",
                    fixit="derive a generator from the task's SeedSequence "
                          "via repro.engine.rng instead",
                )
        elif isinstance(node, ast.Call):
            yield from _check_call(ctx, node)


def _check_call(ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
    dotted = ctx.dotted_name(node.func)
    if dotted is None:
        return
    # numpy.random.<sample>(...) — global-state draws.
    if dotted.startswith("numpy.random."):
        attr = dotted[len("numpy.random."):]
        if "." not in attr and attr not in _NP_RANDOM_OK:
            yield Finding(
                rule=RULE_ID, path=ctx.path, line=node.lineno,
                col=node.col_offset + 1,
                message=f"np.random.{attr}() samples numpy's global RNG "
                        "state; results depend on call order across the "
                        "whole process",
                fixit="thread an explicit np.random.Generator (seeded from "
                      "the task's SeedSequence) to this call site",
            )
        if attr == "default_rng" and not node.args and not node.keywords:
            yield _unseeded(ctx, node)
    # stdlib random module calls (import tracked by alias table).
    elif dotted.startswith("random."):
        head = dotted.split(".")[0]
        if ctx.module_aliases.get(head) == "random":
            yield Finding(
                rule=RULE_ID, path=ctx.path, line=node.lineno,
                col=node.col_offset + 1,
                message=f"{dotted}() draws from the stdlib's process-global "
                        "RNG",
                fixit="derive a generator from the task's SeedSequence via "
                      "repro.engine.rng instead",
            )


def _unseeded(ctx: FileContext, node: ast.Call) -> Finding:
    return Finding(
        rule=RULE_ID, path=ctx.path, line=node.lineno,
        col=node.col_offset + 1,
        message="default_rng() with no seed draws fresh OS entropy — the "
                "run can never be reproduced or cached",
        fixit="pass a seed or SeedSequence (see repro.engine.rng."
              "child_stream); use seed=None explicitly at an API boundary "
              "that documents irreproducibility",
    )


register_rule(Rule(
    rule_id=RULE_ID,
    title="no global-state or unseeded RNG",
    check=_check,
    exempt_paths=(
        "src/repro/engine/rng.py",          # the derivation module itself
        "src/repro/stabilizer/reference.py",  # frozen historical draw order
    ),
))
