"""R006 — content-hash completeness of every registered task spec.

The engine's cache, coalescer and memo stores all trust one invariant:
**two tasks with equal content hashes produce bit-identical results.**  A
dataclass field that changes the numbers but is omitted from ``payload()``
(and therefore from the hash) silently aliases distinct computations into
one cache record — the exact bug class ``rng_mode`` was carefully
engineered around in the fast-RNG work, and the kind no test suite catches
until the aliased record is served.

This rule is *semi-static*: instead of parsing ``payload()`` bodies, it
imports :mod:`repro.engine.tasks` (and :mod:`repro.service.specs`, which
must agree on the registry) and machine-checks the invariant directly.
For every class in :data:`~repro.engine.tasks.TASK_KINDS`:

1. build a canonical sample instance (non-default values wherever the
   validators allow, so omit-when-default fields are exercised);
2. for each ``dataclasses.fields`` entry, construct a *perturbed* copy via
   ``dataclasses.replace`` — type-aware candidate values, first one the
   validators accept wins — and require the content hash to change;
3. require ``payload() -> from_payload`` to round-trip the perturbed
   instance to an equal hash, so a field that *is* hashed but dropped on
   reconstruction (a service worker would silently run the default) is
   equally an error.

A field for which no candidate perturbation passes validation is reported
too — an unverifiable field is a hole in the contract, not a pass.
Findings are anchored to the class's ``payload`` method line in
``tasks.py`` via the AST, so they are clickable like every other finding.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterator, List

from .core import Finding, Rule, register_rule

RULE_ID = "R006"

#: Known enum-ish string values across the repo's task specs; string fields
#: are perturbed to the first *different* value the validators accept.
_STRING_POOL = (
    "memory", "stability", "rotated", "mwpm", "unionfind", "exact",
    "bitgen", "keep", "disable", "distance", "defect_free", "link_only",
    "link_and_qubit", "repro-lint-alt",
)


def _float_candidates(v: float) -> List[float]:
    return [v * 1.5 + 0.001953125, v + 0.25, v / 2 + 0.0078125]


def _candidates(value) -> List:
    """Perturbation candidates for one field value, most-plausible first."""
    if isinstance(value, bool):
        return [not value]
    if isinstance(value, int):
        return [value + 1, value - 1, value * 2 + 1]
    if isinstance(value, float):
        return _float_candidates(value)
    if isinstance(value, str):
        return [s for s in _STRING_POOL if s != value]
    if value is None:
        return [1, 0.5, True, "repro-lint-alt"]
    if isinstance(value, tuple):
        out: List = []
        if value and all(isinstance(e, (int, float, bool, str, type(None)))
                         for e in value):
            # Structured primitive tuple: perturb the last element in place.
            for cand in _candidates(value[-1]):
                out.append(value[:-1] + (cand,))
        if value:
            out.append(value[:-1])          # drop last element
            out.append(value + (value[-1],))  # duplicate last element
        return out
    if dataclasses.is_dataclass(value):
        out = []
        for field in dataclasses.fields(value):
            for cand in _candidates(getattr(value, field.name)):
                try:
                    out.append(dataclasses.replace(value, **{field.name: cand}))
                except (ValueError, TypeError):
                    continue
            if out:
                break
        return out
    return []


def _sample_tasks():
    """One canonical instance per registered task kind.

    Field values are chosen away from their defaults wherever validation
    allows, so omit-when-default payload encodings (``rng_mode``) are
    exercised both ways by the perturbation step.
    """
    from ..engine.tasks import (
        CutoffCellTask,
        LerPointTask,
        NoiseSpec,
        PatchSampleTask,
        YieldTask,
    )

    noise = NoiseSpec(p=2e-3, bad_qubits=(((1, 1), 0.01),))
    ler = LerPointTask(
        experiment="memory", layout_kind="rotated", size=3,
        faulty_qubits=((1, 1),),
        faulty_links=(((0, 0), (0, 1)),),
        physical_error_rate=2e-3, rounds=3, noise=noise,
        decoder="mwpm", rng_mode="exact",
    )
    cutoff = CutoffCellTask(
        experiment="memory", layout_kind="rotated", size=3,
        faulty_qubits=((1, 1),), faulty_links=(((0, 0), (0, 1)),),
        physical_error_rate=2e-3, rounds=3, noise=noise,
        decoder="mwpm", rng_mode="exact",
        strategy="disable", bad_qubit_error_rate=0.02,
    )
    patch = PatchSampleTask(
        size=5, defect_model_kind="link_and_qubit", defect_rate=0.01,
        num_patches=3, min_distance=3, require_valid=True,
        max_attempts_factor=50,
    )
    yld = YieldTask(
        chiplet_size=7, defect_model_kind="link_and_qubit",
        defect_rate=0.01, samples=40, criterion_kind="distance",
        target_distance=5, use_operator_count=True, allow_rotation=True,
        boundary=("std", True, False, 5),
    )
    return [ler, cutoff, patch, yld]


def check_task_class(cls, sample, *, path: str = "",
                     line: int = 1) -> List[Finding]:
    """Machine-check hash completeness of one task class given a sample.

    Public so the rule's unit tests can aim it at synthetic task classes;
    the repo pass calls it for every registered kind.
    """
    findings: List[Finding] = []
    base_hash = sample.content_hash()
    for field in dataclasses.fields(cls):
        perturbed = None
        for cand in _candidates(getattr(sample, field.name)):
            try:
                perturbed = dataclasses.replace(sample, **{field.name: cand})
            except (ValueError, TypeError):
                continue
            break
        if perturbed is None:
            findings.append(Finding(
                rule=RULE_ID, path=path, line=line, col=1,
                message=f"{cls.__name__}.{field.name}: no valid perturbation "
                        "found — hash coverage of this field is unverifiable",
                fixit="teach repro.lint.rules_hash._candidates a valid "
                      "alternate value for this field",
            ))
            continue
        if perturbed.content_hash() == base_hash:
            findings.append(Finding(
                rule=RULE_ID, path=path, line=line, col=1,
                message=f"{cls.__name__}.{field.name} changes the task but "
                        "not its content hash — distinct computations would "
                        "alias in the result cache",
                fixit=f"emit {field.name!r} from {cls.__name__}.payload() "
                      "(omit-when-default is fine; omit-always is not)",
            ))
            continue
        findings.extend(_check_roundtrip(cls, perturbed, path, line))
    return findings


def _check_roundtrip(cls, task, path: str, line: int) -> List[Finding]:
    from_payload = getattr(cls, "from_payload", None)
    if from_payload is None:
        return []
    try:
        rebuilt = from_payload(task.payload())
    except Exception as exc:  # noqa: BLE001 - any failure is the finding
        return [Finding(
            rule=RULE_ID, path=path, line=line, col=1,
            message=f"{cls.__name__}.from_payload(payload()) raised "
                    f"{type(exc).__name__}: {exc}",
            fixit="payload()/from_payload must round-trip every valid "
                  "instance (service job stores depend on it)",
        )]
    if rebuilt.content_hash() != task.content_hash():
        return [Finding(
            rule=RULE_ID, path=path, line=line, col=1,
            message=f"{cls.__name__} payload round-trip changed the content "
                    "hash — a field is hashed but dropped on reconstruction",
            fixit="carry every payload key through from_payload()",
        )]
    return []


def _class_lines(tasks_path: Path) -> dict:
    """``class name -> payload() def line`` via the AST (for anchoring)."""
    out = {}
    try:
        tree = ast.parse(tasks_path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return out
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            line = node.lineno
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "payload":
                    line = item.lineno
                    break
            out[node.name] = line
    return out


def _repo_check(repo_root: Path) -> Iterator[Finding]:
    try:
        from ..engine import tasks as tasks_mod
        from ..service import specs as specs_mod
    except Exception as exc:  # noqa: BLE001 - import failure is a finding
        yield Finding(
            rule=RULE_ID, path="src/repro/engine/tasks.py", line=1, col=1,
            message=f"could not import the task registry: {exc}",
        )
        return
    tasks_path = repo_root / "src" / "repro" / "engine" / "tasks.py"
    rel = "src/repro/engine/tasks.py"
    lines = _class_lines(tasks_path)
    samples = {type(s): s for s in _sample_tasks()}
    checked = set()
    for kind, cls in sorted(tasks_mod.TASK_KINDS.items()):
        sample = samples.get(cls)
        if sample is None:
            yield Finding(
                rule=RULE_ID, path=rel, line=lines.get(cls.__name__, 1), col=1,
                message=f"registered task kind {kind!r} ({cls.__name__}) has "
                        "no sample in repro.lint.rules_hash — its hash "
                        "coverage is unchecked",
                fixit="add a canonical sample instance to "
                      "rules_hash._sample_tasks()",
            )
            continue
        checked.add(cls)
        yield from check_task_class(cls, sample, path=rel,
                                    line=lines.get(cls.__name__, 1))
    # The service layer must accept every registered LER-ish kind: a kind
    # the engine caches by hash but the service rejects (or vice versa)
    # means the two sides disagree about task identity.
    for kind in specs_mod._LER_TASK_KINDS:
        if kind not in tasks_mod.TASK_KINDS:
            yield Finding(
                rule=RULE_ID, path="src/repro/service/specs.py", line=1, col=1,
                message=f"service accepts task kind {kind!r} that the engine "
                        "registry does not define",
                fixit="keep specs._LER_TASK_KINDS a subset of "
                      "tasks.TASK_KINDS",
            )
    yield from _check_fusion_key_invariance(samples)


def _check_fusion_key_invariance(samples: dict) -> Iterator[Finding]:
    """Shard-group fusion must never leak into cache keys.

    Fusion is pure dispatch — any grouping yields bit-identical results —
    so two engines differing only in ``fuse_tasks``/``fuse_shots`` must
    mint the *same* cache key for the same (task, seed, policy).  A knob
    that slips into the key would split one computation's records across
    configs (cold caches everywhere); a knob that slips into results
    would be a determinism bug the bit-identity tests catch.  This is the
    dual of the field-coverage check above: execution knobs must stay
    *out* of the hash just as surely as result-affecting fields stay in.
    """
    from ..engine.executor import Engine, EngineConfig
    from ..engine.scheduler import ShotPolicy
    from ..engine.tasks import LerPointTask

    sample = samples.get(LerPointTask)
    if sample is None:
        return
    policy = ShotPolicy.fixed(4096)
    base = Engine(EngineConfig(fuse_tasks=8, fuse_shots=8192))
    for variant in (EngineConfig(fuse_tasks=1, fuse_shots=8192),
                    EngineConfig(fuse_tasks=8, fuse_shots=256)):
        if (Engine(variant)._cache_key(sample, 7, policy)
                != base._cache_key(sample, 7, policy)):
            yield Finding(
                rule=RULE_ID, path="src/repro/engine/executor.py", line=1,
                col=1,
                message="fusion knobs (fuse_tasks/fuse_shots) leak into the "
                        "LER cache key — grouping is dispatch-only and must "
                        "not split cache records across engine configs",
                fixit="keep EngineConfig fusion fields out of ler_cache_key",
            )
            return


register_rule(Rule(
    rule_id=RULE_ID,
    title="content-hash completeness of task specs",
    check=None,
    repo_check=_repo_check,
))
