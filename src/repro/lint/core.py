"""Shared machinery of the ``repro.lint`` determinism pass.

One file-walking / pragma-parsing / reporting core serves every rule
module, so a rule is nothing but a function from a parsed file (or, for
the semi-static R006, from the imported task registry) to
:class:`Finding` objects.  The pieces:

* :class:`Finding` — one diagnostic: rule id, location, message and a
  fix-it hint telling the author what the determinism contract wants
  instead.
* :class:`FileContext` — a parsed source file plus the import aliases the
  AST rules need (``import numpy as np`` must make ``np.random.rand``
  recognisable) and the suppression pragmas found in its comments.
* pragmas — ``# repro-lint: ignore[R001] -- <why>`` suppresses matching
  findings **on that physical line**; ``file-ignore`` suppresses them for
  the whole file.  The justification text after ``--`` is *required*: a
  pragma without one is itself a finding (R000), so silenced rules always
  carry their reason in the diff.
* :func:`run_lint` / :func:`lint_source` — directory-tree and
  in-memory entry points (the latter is what the rule unit tests use).

The pass is intentionally lexical/syntactic — no type inference, no data
flow.  Each rule documents the approximation it makes; the contract is
"cheap, zero false positives on this repo, catches the bug classes that
actually hit us", not "sound for arbitrary Python".
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register_rule",
    "iter_rules",
    "lint_source",
    "lint_file",
    "run_lint",
    "default_roots",
    "render_text",
    "render_json",
    "PRAGMA_RE",
]

#: Rule id reserved for problems with the lint pass's own inputs: syntax
#: errors, malformed pragmas, pragmas missing their justification.
META_RULE = "R000"

PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>file-)?ignore"
    r"\[(?P<rules>[A-Za-z0-9_,\s]*)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fixit: str = ""

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.fixit:
            text += f"\n    fix: {self.fixit}"
        return text


@dataclasses.dataclass
class _Pragma:
    rules: Tuple[str, ...]     # () means "all rules"
    justification: str
    line: int
    file_scope: bool

    def covers(self, rule: str) -> bool:
        return not self.rules or rule in self.rules


class FileContext:
    """A parsed file plus everything rules share: imports, pragmas, lines."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: alias -> dotted module name, for ``import numpy as np`` /
        #: ``import os`` (``{"np": "numpy", "os": "os"}``).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> "module.attr", for ``from x import y as z``
        #: (``{"z": "x.y"}``).
        self.from_imports: Dict[str, str] = {}
        self._collect_imports(tree)
        self.line_pragmas: Dict[int, List[_Pragma]] = {}
        self.file_pragmas: List[_Pragma] = []
        self.pragma_findings: List[Finding] = []
        self._collect_pragmas()

    # ------------------------------------------------------------------
    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # ------------------------------------------------------------------
    def _iter_comments(self):
        """Real COMMENT tokens (docstrings and string literals that merely
        *mention* pragma syntax must not parse as pragmas)."""
        reader = io.StringIO(self.source).readline
        try:
            for tok in tokenize.generate_tokens(reader):
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return

    def _collect_pragmas(self) -> None:
        for lineno, comment in self._iter_comments():
            if not re.match(r"#\s*repro-lint:", comment):
                continue
            match = PRAGMA_RE.search(comment)
            if match is None:
                self.pragma_findings.append(Finding(
                    rule=META_RULE, path=self.path, line=lineno, col=1,
                    message="unparseable repro-lint pragma",
                    fixit="use `# repro-lint: ignore[R00x] -- <justification>`",
                ))
                continue
            rules = tuple(r.strip().upper()
                          for r in match.group("rules").split(",") if r.strip())
            why = (match.group("why") or "").strip()
            pragma = _Pragma(rules=rules, justification=why, line=lineno,
                             file_scope=bool(match.group("scope")))
            if not why:
                self.pragma_findings.append(Finding(
                    rule=META_RULE, path=self.path, line=lineno, col=1,
                    message="repro-lint pragma is missing its justification",
                    fixit="append ` -- <why this deviation is safe>` to the "
                          "pragma; unexplained suppressions are not allowed",
                ))
                continue
            if pragma.file_scope:
                self.file_pragmas.append(pragma)
            else:
                self.line_pragmas.setdefault(lineno, []).append(pragma)

    # ------------------------------------------------------------------
    def suppressed(self, finding: Finding) -> bool:
        for pragma in self.file_pragmas:
            if pragma.covers(finding.rule):
                return True
        for pragma in self.line_pragmas.get(finding.line, ()):
            if pragma.covers(finding.rule):
                return True
        return False

    # ------------------------------------------------------------------
    def resolves_to(self, node: ast.expr, dotted: str) -> bool:
        """Whether ``node`` is a reference to the fully-qualified ``dotted``.

        Handles the module alias table (``np.random`` vs ``numpy.random``)
        and ``from`` imports (``from time import time``), which is as much
        name resolution as a single-file lexical pass can honestly do.
        """
        name = self.dotted_name(node)
        return name is not None and name == dotted

    def dotted_name(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        Aliases are normalised: with ``import numpy as np``, the expression
        ``np.random.rand`` maps to ``"numpy.random.rand"``; with
        ``from os import environ``, ``environ.get`` maps to
        ``"os.environ.get"``.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        head = cur.id
        if head in self.from_imports:
            base = self.from_imports[head]
        elif head in self.module_aliases:
            base = self.module_aliases[head]
        else:
            base = head
        return ".".join([base] + list(reversed(parts)))


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    title: str
    #: ``check(ctx)`` yields findings for one parsed file.  ``None`` for
    #: repo-level (semi-static) rules that use ``repo_check`` instead.
    check: Optional[Callable[[FileContext], Iterable[Finding]]]
    #: ``repo_check(repo_root)`` runs once per lint invocation.
    repo_check: Optional[Callable[[Path], Iterable[Finding]]] = None
    #: repo-relative posix paths (prefix match) exempt from this rule.
    exempt_paths: Tuple[str, ...] = ()


_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    if rule.rule_id in _RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _RULES[rule.rule_id] = rule
    return rule


def iter_rules() -> List[Rule]:
    """All registered rules, in rule-id order (imports the rule modules)."""
    _load_rule_modules()
    return [_RULES[k] for k in sorted(_RULES)]


_LOADED = False


def _load_rule_modules() -> None:
    global _LOADED
    if _LOADED:
        return
    # Imported for their registration side effect.
    from . import (  # noqa: F401
        rules_env,
        rules_hash,
        rules_order,
        rules_rng,
        rules_state,
        rules_time,
    )
    _LOADED = True


def _path_exempt(rule: Rule, path: str) -> bool:
    norm = path.replace("\\", "/")
    return any(norm.endswith(p) or norm.startswith(p) for p in rule.exempt_paths)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<memory>",
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob (the rule unit-test entry point).

    ``rules`` restricts the pass to the given rule ids; pragma handling and
    path exemptions apply exactly as in a directory run.  Repo-level rules
    (R006) have no source to walk and are skipped here.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(rule=META_RULE, path=path, line=exc.lineno or 1,
                        col=exc.offset or 1,
                        message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    findings = list(ctx.pragma_findings)
    for rule in iter_rules():
        if rule.check is None:
            continue
        if rules is not None and rule.rule_id not in rules:
            continue
        if _path_exempt(rule, path):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Path, repo_root: Path,
              rules: Optional[Sequence[str]] = None) -> List[Finding]:
    rel = path.relative_to(repo_root).as_posix() if path.is_relative_to(repo_root) \
        else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(rule=META_RULE, path=rel, line=1, col=1,
                        message=f"unreadable file: {exc}")]
    return lint_source(source, rel, rules=rules)


def default_roots(repo_root: Path) -> List[Path]:
    """The trees the determinism contract covers: src, tests, benchmarks."""
    return [repo_root / name for name in ("src", "tests", "benchmarks")
            if (repo_root / name).is_dir()]


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor carrying ``pyproject.toml`` (fallback: package root)."""
    here = (start or Path.cwd()).resolve()
    for candidate in [here, *here.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    # Installed-package fallback: src/repro/lint/core.py -> repo root.
    return Path(__file__).resolve().parents[3]


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    repo_root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint a directory tree; returns ``(findings, files_scanned)``.

    With no ``paths``, walks ``src/``, ``tests/`` and ``benchmarks/`` under
    the repo root.  Repo-level rules (R006) run once per invocation, after
    the per-file AST rules.
    """
    root = (repo_root or find_repo_root()).resolve()
    targets = [Path(p).resolve() for p in paths] if paths else default_roots(root)
    files: List[Path] = []
    seen: Set[Path] = set()
    for target in targets:
        if target.is_file() and target.suffix == ".py":
            candidates: Iterable[Path] = [target]
        else:
            candidates = sorted(target.rglob("*.py"))
        for f in candidates:
            if f not in seen:
                seen.add(f)
                files.append(f)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f, root, rules=rules))
    for rule in iter_rules():
        if rule.repo_check is None:
            continue
        if rules is not None and rule.rule_id not in rules:
            continue
        findings.extend(rule.repo_check(root))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    lines = [f.render() for f in findings]
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
    lines.append(
        f"repro.lint: {len(findings)} finding(s) in {files_scanned} file(s)"
        + (f" [{summary}]" if summary else "")
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int) -> str:
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    body = {
        "version": 1,
        "files_scanned": files_scanned,
        "counts": {k: counts[k] for k in sorted(counts)},
        "findings": [f.to_json() for f in findings],
    }
    return json.dumps(body, indent=2, sort_keys=True)
