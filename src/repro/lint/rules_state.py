"""R005 — no mutable default arguments; shared module state takes a lock.

Two shapes of shared mutable state have bitten (or nearly bitten) this
repo's fan-out paths:

* **mutable default arguments** (``def f(x=[])``) — the default is one
  object shared by *every* call in the process, which in a warm worker
  means cross-task leakage.  Flagged unconditionally.
* **module-level mutable containers mutated without a lock** in modules
  that run threads.  The socket worker serves each connection on its own
  thread and the decode fan-out runs a thread pool, so process-wide
  registries (the pool registry, the task-context memo) are genuinely
  reachable concurrently.  In any module that imports :mod:`threading` or
  :mod:`concurrent.futures`, a mutation of a module-level ``dict`` /
  ``list`` / ``set`` binding (``x[k] = v``, ``x.pop(...)``,
  ``x.append(...)``, ``del x[k]``…) from inside a function is flagged
  unless it sits lexically inside a ``with`` block whose context
  expression mentions a lock (a name containing ``lock``).

The lock check is lexical containment, not escape analysis: it enforces
the *convention* (grab the module's lock around registry mutations) rather
than proving thread safety.  Modules with no threading import are assumed
single-threaded-per-process (the engine's process-pool workers) and are
not checked for the second shape.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .core import FileContext, Finding, Rule, register_rule

RULE_ID = "R005"

_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
})

_THREAD_MODULES = ("threading", "concurrent.futures", "concurrent")


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("dict", "list", "set", "defaultdict",
                                "OrderedDict", "deque", "Counter")
    return False


# ----------------------------------------------------------------------
# Shape 1: mutable default arguments
# ----------------------------------------------------------------------
def _check_defaults(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            if _is_mutable_literal(default):
                name = getattr(node, "name", "<lambda>")
                yield Finding(
                    rule=RULE_ID, path=ctx.path, line=default.lineno,
                    col=default.col_offset + 1,
                    message=f"mutable default argument in {name}() is one "
                            "object shared by every call in the process",
                    fixit="default to None and create the container inside "
                          "the function",
                )


# ----------------------------------------------------------------------
# Shape 2: unlocked module-level container mutation in threaded modules
# ----------------------------------------------------------------------
def _uses_threads(ctx: FileContext) -> bool:
    mods = set(ctx.module_aliases.values())
    froms = {v.rsplit(".", 1)[0] for v in ctx.from_imports.values()}
    return any(m == t or m.startswith(t + ".")
               for m in mods | froms for t in _THREAD_MODULES)


def _module_containers(ctx: FileContext) -> Set[str]:
    names: Set[str] = set()
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _root_name(node: ast.expr):
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mentions_lock(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
    return False


def _check_module_state(ctx: FileContext) -> Iterator[Finding]:
    if not _uses_threads(ctx):
        return
    containers = _module_containers(ctx)
    if not containers:
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield from _scan_function(ctx, func, containers, locked=False)


def _scan_function(ctx: FileContext, node: ast.AST, containers: Set[str],
                   locked: bool) -> Iterator[Finding]:
    for child in ast.iter_child_nodes(node):
        child_locked = locked
        if isinstance(child, (ast.With, ast.AsyncWith)):
            if any(_mentions_lock(item.context_expr) for item in child.items):
                child_locked = True
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: rescans with its own (inherited) lock state.
            yield from _scan_function(ctx, child, containers, locked)
            continue
        if not child_locked:
            yield from _check_mutation(ctx, child, containers)
        yield from _scan_function(ctx, child, containers, child_locked)


def _check_mutation(ctx: FileContext, node: ast.AST,
                    containers: Set[str]) -> Iterator[Finding]:
    # Walk only this statement's *expression* parts — nested statements (If
    # bodies, With bodies…) are visited by _scan_function with their own
    # lock state.
    exprs = [child for child in ast.iter_child_nodes(node)
             if isinstance(child, ast.expr)]
    for expr in exprs:
        for sub in ast.walk(expr):
            name = None
            if isinstance(sub, ast.Subscript) \
                    and isinstance(sub.ctx, (ast.Store, ast.Del)) \
                    and _root_name(sub) in containers:
                name = _root_name(sub)
            elif isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr in _MUTATING_METHODS \
                    and isinstance(sub.func.value, ast.Name) \
                    and sub.func.value.id in containers:
                name = sub.func.value.id
            if name is not None:
                yield Finding(
                    rule=RULE_ID, path=ctx.path, line=sub.lineno,
                    col=sub.col_offset + 1,
                    message=f"module-level container {name!r} mutated "
                            "without a lock in a module that runs threads",
                    fixit="guard the mutation with the module's "
                          "threading.Lock() (`with _X_LOCK:`), or move the "
                          "state into an object owned by one thread",
                )


def _check(ctx: FileContext) -> Iterator[Finding]:
    yield from _check_defaults(ctx)
    yield from _check_module_state(ctx)


register_rule(Rule(
    rule_id=RULE_ID,
    title="no mutable defaults; shared module state takes a lock",
    check=_check,
))
