"""R003 — no wall-clock / per-process values feeding hashes or payloads.

Content hashes, cache keys and serialized task payloads must be pure
functions of the task's fields: that is the entire basis of the
content-addressed result cache and of cross-process bit-identity.  A
timestamp, a ``hash()`` of a string (salted per process by
``PYTHONHASHSEED``), an ``id()`` (an address), a uuid or OS entropy mixed
into any of them silently produces records that can never hit, or — far
worse — keys that alias across meanings.

A full dataflow analysis is out of scope for a lexical pass, so the rule
uses the repo's naming discipline as its proxy: inside any function whose
name marks it as hash/serialization machinery (``content_hash``,
``*cache_key*``, ``payload``, ``canonical*``, ``serialize*``,
``fingerprint*``, ``to_json``…), calls to nondeterministic sources are
flagged.  Dunder methods are excluded — ``__hash__`` legitimately uses
in-process ``hash()``, which never leaves the process.

Sources flagged: ``time.time`` / ``time.time_ns`` / ``time.monotonic`` /
``time.perf_counter``, ``datetime.(date)time.now/utcnow/today``, builtin
``hash()`` and ``id()``, ``uuid.uuid1/3/4/5``, ``os.urandom``,
``os.getpid``, ``secrets.*``, ``socket.gethostname``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from .core import FileContext, Finding, Rule, register_rule

RULE_ID = "R003"

#: Function names that mark hash/serialization machinery.
CONTEXT_RE = re.compile(
    r"(content_hash|cache_key|payload|canonical|serializ|fingerprint"
    r"|to_json|wire_frame|_key$|^key_)", re.IGNORECASE
)

_BAD_DOTTED = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "uuid.uuid1", "uuid.uuid3", "uuid.uuid4", "uuid.uuid5",
    "os.urandom", "os.getpid", "socket.gethostname",
})

_BAD_BUILTINS = frozenset({"hash", "id"})


def _is_hash_context(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return False
    return bool(CONTEXT_RE.search(name))


def _check(ctx: FileContext) -> Iterator[Finding]:
    yield from _walk(ctx, ctx.tree, in_context=False)


def _walk(ctx: FileContext, node: ast.AST, in_context: bool) -> Iterator[Finding]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from _walk(ctx, child,
                             in_context or _is_hash_context(child.name))
            continue
        if in_context and isinstance(child, ast.Call):
            yield from _check_call(ctx, child)
        yield from _walk(ctx, child, in_context)


def _check_call(ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
    findings: List[Finding] = []
    dotted = ctx.dotted_name(node.func)
    if dotted in _BAD_DOTTED or (dotted or "").startswith("secrets."):
        findings.append(Finding(
            rule=RULE_ID, path=ctx.path, line=node.lineno,
            col=node.col_offset + 1,
            message=f"{dotted}() is nondeterministic and this function "
                    "feeds a hash/cache key/serialized payload",
            fixit="derive the value from task fields (or inject a clock at "
                  "the API boundary); hashes must be pure functions of the "
                  "spec",
        ))
    elif isinstance(node.func, ast.Name) and node.func.id in _BAD_BUILTINS \
            and node.func.id not in ctx.from_imports \
            and node.func.id not in ctx.module_aliases:
        findings.append(Finding(
            rule=RULE_ID, path=ctx.path, line=node.lineno,
            col=node.col_offset + 1,
            message=f"builtin {node.func.id}() is salted/address-based per "
                    "process and must not feed a persisted hash or payload",
            fixit="use hashlib over canonical JSON (see "
                  "repro.engine.tasks.canonical_json) instead",
        ))
    yield from findings


register_rule(Rule(
    rule_id=RULE_ID,
    title="no nondeterministic sources in hash/serialization contexts",
    check=_check,
))
