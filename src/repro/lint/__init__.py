"""``repro.lint`` — the repo's determinism & invariant static-analysis pass.

Every PR since the seed stakes its value on invariants no test proves
exhaustively: bit-identical results across the serial/process/socket
backends, content-hash completeness of frozen task specs, all ``REPRO_*``
knobs flowing through the validated :mod:`repro.env` readers, strictly
sequential RNG word consumption.  These properties rot *silently* — a new
task field that skips the hash, a stray ``np.random`` call, a raw
``os.environ`` read — so this package checks them mechanically:

======  ==========================================================
 R001   no global-state or unseeded RNG outside the blessed modules
 R002   ``REPRO_*`` variables read only via :mod:`repro.env`
 R003   no wall-clock/nondeterministic sources in hash/payload code
 R004   no order-dependent iteration over sets / directory listings
 R005   no mutable default args; shared module state takes a lock
 R006   content-hash completeness of every registered task spec
======  ==========================================================

Run ``python -m repro.lint`` (or the ``repro-lint`` console script) from
anywhere in the repo; ``--format json`` emits the machine-readable report
CI archives.  Suppress a finding with an inline pragma **with required
justification**::

    something_flagged()  # repro-lint: ignore[R004] -- order is cosmetic here

``tests/test_lint_clean.py`` asserts the repo itself lints clean, which is
what makes the determinism contract self-enforcing for every future PR.
"""

from .core import (
    Finding,
    Rule,
    iter_rules,
    lint_source,
    render_json,
    render_text,
    run_lint,
)

__all__ = [
    "Finding",
    "Rule",
    "iter_rules",
    "lint_source",
    "run_lint",
    "render_text",
    "render_json",
]
