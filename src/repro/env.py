"""Validated parsing of ``REPRO_*`` environment variables.

Every runtime knob the library reads from the environment goes through
:func:`env_int`, so a typo'd or out-of-range value fails immediately with a
message naming the variable — instead of a bare ``int()`` traceback deep in
an engine worker, or (worse) a silently accepted negative limit.

The helpers deliberately live in a leaf module with no intra-package
imports: they are shared by :mod:`repro.decoder.base`,
:mod:`repro.engine.pipeline` and :mod:`repro.engine.executor`, which sit on
opposite sides of the decoder/engine dependency edge.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional

__all__ = ["env_int"]


def env_int(
    name: str,
    default: int,
    *,
    minimum: Optional[int] = None,
    env: Optional[Mapping[str, str]] = None,
) -> int:
    """Read integer variable ``name``, falling back to ``default``.

    An unset or empty variable yields ``default`` (the default itself is not
    range-checked — callers own their defaults).  Anything else must parse as
    an integer and, when ``minimum`` is given, be ``>= minimum``; violations
    raise ``ValueError`` naming the variable and the offending value.
    """
    env = os.environ if env is None else env
    raw = env.get(name)
    if raw is None or str(raw).strip() == "":
        return default
    try:
        value = int(str(raw).strip())
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value
