"""Validated parsing of ``REPRO_*`` environment variables.

Every runtime knob the library reads from the environment goes through
:func:`env_int` / :func:`env_float` / :func:`env_str` / :func:`env_choice`
/ :func:`env_hosts`, so a typo'd or out-of-range value fails immediately
with a message naming the variable and the offending value — instead of a
bare ``int()`` traceback deep in an engine worker, or (worse) a silently
accepted negative limit.  Rule R002 of :mod:`repro.lint` enforces this:
raw ``os.environ`` reads of ``REPRO_*`` anywhere else are a lint error.

The helpers deliberately live in a leaf module with no intra-package
imports: they are shared by :mod:`repro.decoder.base`,
:mod:`repro.engine.pipeline` and :mod:`repro.engine.executor`, which sit on
opposite sides of the decoder/engine dependency edge.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional, Sequence, Tuple

__all__ = ["env_int", "env_float", "env_str", "env_choice", "env_hosts"]


def env_str(
    name: str,
    default: Optional[str] = None,
    *,
    env: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """Read a free-form string variable ``name`` (paths, URLs, hostnames).

    An unset, empty or whitespace-only variable yields ``default``;
    anything else is returned stripped of surrounding whitespace (a
    trailing space in ``REPRO_CACHE=/tmp/cache `` must not silently create
    a differently-named directory).  This is the sanctioned reader for
    string-valued ``REPRO_*`` knobs — raw ``os.environ`` reads of them are
    a lint error (rule R002).
    """
    env = os.environ if env is None else env
    raw = env.get(name)
    if raw is None:
        return default
    value = str(raw).strip()
    return value if value else default


def env_int(
    name: str,
    default: int,
    *,
    minimum: Optional[int] = None,
    env: Optional[Mapping[str, str]] = None,
) -> int:
    """Read integer variable ``name``, falling back to ``default``.

    An unset or empty variable yields ``default`` (the default itself is not
    range-checked — callers own their defaults).  Anything else must parse as
    an integer and, when ``minimum`` is given, be ``>= minimum``; violations
    raise ``ValueError`` naming the variable and the offending value.
    """
    env = os.environ if env is None else env
    raw = env.get(name)
    if raw is None or str(raw).strip() == "":
        return default
    try:
        value = int(str(raw).strip())
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def env_float(
    name: str,
    default: float,
    *,
    minimum: Optional[float] = None,
    env: Optional[Mapping[str, str]] = None,
) -> float:
    """Read float variable ``name``, falling back to ``default``.

    Same contract as :func:`env_int`: unset/empty yields ``default``
    unchecked, anything else must parse as a finite float and satisfy
    ``minimum`` when given, or a ``ValueError`` names the variable.
    """
    env = os.environ if env is None else env
    raw = env.get(name)
    if raw is None or str(raw).strip() == "":
        return default
    try:
        value = float(str(raw).strip())
    except ValueError:
        raise ValueError(
            f"{name} must be a number, got {raw!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite, got {raw!r}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def env_choice(
    name: str,
    default: str,
    choices: Sequence[str],
    *,
    env: Optional[Mapping[str, str]] = None,
) -> str:
    """Read an enumerated variable ``name``, falling back to ``default``.

    The value is stripped and lower-cased before matching, so
    ``REPRO_BACKEND=Process`` means ``"process"``; anything outside
    ``choices`` raises a ``ValueError`` naming the variable and the valid
    values.
    """
    env = os.environ if env is None else env
    raw = env.get(name)
    if raw is None or str(raw).strip() == "":
        return default
    value = str(raw).strip().lower()
    if value not in choices:
        raise ValueError(
            f"{name} must be one of {', '.join(choices)}; got {raw!r}"
        )
    return value


def env_hosts(
    name: str,
    *,
    env: Optional[Mapping[str, str]] = None,
) -> Tuple[Tuple[str, int], ...]:
    """Read a comma-separated ``host:port`` list (e.g. ``REPRO_HOSTS``).

    ``"127.0.0.1:7931,127.0.0.1:7932"`` parses to
    ``(("127.0.0.1", 7931), ("127.0.0.1", 7932))``.  An unset or empty
    variable yields ``()``.  Every entry must carry an explicit port in
    ``[1, 65535]`` — a bare hostname, a garbage port or an empty list item
    raises a ``ValueError`` naming the variable and the offending entry.
    Entries may repeat: listing a host twice gives it two job slots.
    """
    env = os.environ if env is None else env
    raw = env.get(name)
    if raw is None or str(raw).strip() == "":
        return ()
    hosts = []
    for entry in str(raw).split(","):
        entry = entry.strip()
        if not entry:
            raise ValueError(f"{name} contains an empty host entry: {raw!r}")
        host, sep, port_text = entry.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"{name} entries must be host:port, got {entry!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            # Same error style as env_int: name the variable *and* show the
            # offending value, so the fix is obvious from the message alone.
            raise ValueError(
                f"{name} entry {entry!r} has a non-integer port, "
                f"got {port_text!r}"
            ) from None
        if not 1 <= port <= 65535:
            raise ValueError(
                f"{name} entry {entry!r} has an out-of-range port, "
                f"got {port} (must be in [1, 65535])"
            )
        hosts.append((host, port))
    return tuple(hosts)
