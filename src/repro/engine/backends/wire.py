"""Framing for the socket backend's client↔worker protocol.

One tiny, symmetric wire format shared by :class:`SocketBackend` (client
side) and ``python -m repro.engine.worker`` (server side), so the two can
never drift apart:

* on connect both ends exchange :data:`MAGIC` (protocol + version tag) —
  a client talking to the wrong port, or to a worker from an incompatible
  revision, fails immediately with a clear error instead of a pickle
  traceback;
* every message is a length-prefixed pickle: 8 network-order bytes of
  payload length, then the pickled object.  Requests are
  ``("call", fn, args)`` tuples (``fn`` pickled by reference, so the worker
  resolves it against its own installed ``repro``); responses are
  ``("ok", result)`` or ``("err", exception)``.

Pickle implies **trust**: a worker executes whatever the connection sends
(requests carry a function pickled by reference, and the worker calls it).
Workers bind to loopback by default and must only ever listen on networks
where every peer is trusted (a lab cluster behind a firewall, an SSH
tunnel) — exactly the trust model of every pickle-based RPC layer
(``multiprocessing.managers`` included).

Deserialisation is nonetheless **restricted**: :func:`recv_msg` resolves
globals through an allowlist (:class:`_RestrictedUnpickler`) admitting only
repro-internal modules, ``numpy``, and a fixed set of safe stdlib names
(exception types, basic containers, the pickle machinery's own helpers).
A frame referencing anything else — ``os.system``, ``subprocess.Popen``,
``builtins.eval`` — fails with :class:`ProtocolError` *before* any object
is constructed.  This is defence in depth, not a sandbox: the legitimate
protocol already executes the functions it names, so the allowlist merely
pins what a message can name to the surface the protocol actually uses,
turning a whole class of pickle gadgets into immediate, logged rejections.
The bytes on the wire are unchanged — framing, magic and the pickle
payloads are byte-identical to previous revisions; only the *reader*
became pickier.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct

from ...env import env_str

__all__ = ["MAGIC", "send_msg", "recv_msg", "handshake", "ProtocolError",
           "restricted_loads"]

#: Protocol tag exchanged on connect; bump the digit on breaking changes.
MAGIC = b"REPRO-WORKER-1\n"

_HEADER = struct.Struct(">Q")

#: Upper bound on one message (defensive: a garbled length prefix must not
#: look like a 2**60-byte allocation).
MAX_MESSAGE_BYTES = 1 << 30


class ProtocolError(ConnectionError):
    """The peer is not a compatible repro worker (bad magic / bad frame)."""


# ----------------------------------------------------------------------
# Restricted unpickling
# ----------------------------------------------------------------------
#: Module prefixes a wire frame may resolve globals from.  ``repro`` covers
#: every task/result/callable the protocol legitimately ships; ``numpy``
#: covers array payloads and the RNG state objects inside SeedSequence
#: fingerprints.  A prefix matches the module itself or any submodule.
_ALLOWED_MODULE_PREFIXES = ("repro", "numpy")

#: Exact stdlib names a frame may resolve.  Exception types let ``("err",
#: exc)`` replies round-trip; the rest are the inert building blocks the
#: pickle machinery itself emits for containers and dataclasses.  Nothing
#: here executes code on construction.
_ALLOWED_STDLIB = {
    ("builtins", name) for name in (
        "complex", "frozenset", "set", "bytearray", "range", "slice",
        "list", "tuple", "dict", "bool", "int", "float", "str", "bytes",
        # exception hierarchy used by ("err", exception) replies
        "BaseException", "Exception", "ArithmeticError", "AssertionError",
        "AttributeError", "BufferError", "EOFError", "FloatingPointError",
        "ImportError", "IndexError", "KeyError", "KeyboardInterrupt",
        "LookupError", "MemoryError", "ModuleNotFoundError", "NameError",
        "NotImplementedError", "OSError", "OverflowError", "RecursionError",
        "ReferenceError", "RuntimeError", "StopIteration", "SyntaxError",
        "SystemError", "TimeoutError", "TypeError", "ValueError",
        "ZeroDivisionError", "ConnectionError", "ConnectionResetError",
        "ConnectionAbortedError", "ConnectionRefusedError", "BrokenPipeError",
        "FileExistsError", "FileNotFoundError", "InterruptedError",
        "IsADirectoryError", "NotADirectoryError", "PermissionError",
        "ProcessLookupError", "UnicodeDecodeError", "UnicodeEncodeError",
        "UnicodeError",
    )
} | {
    ("collections", "OrderedDict"),
    ("collections", "defaultdict"),
    ("collections", "deque"),
    ("collections", "Counter"),
    ("copyreg", "_reconstructor"),
    ("datetime", "timedelta"),
    ("fractions", "Fraction"),
    ("decimal", "Decimal"),
    ("concurrent.futures.process", "BrokenProcessPool"),
    ("concurrent.futures", "BrokenExecutor"),
}


def _extra_prefixes() -> tuple:
    """Additional allowed module prefixes from ``REPRO_WIRE_ALLOW``.

    Comma-separated module prefixes a deployment may graft onto the
    allowlist (the test suite uses it to ship its own helper functions to
    real worker subprocesses).  Read lazily so spawned workers pick it up
    from their inherited environment.
    """
    raw = env_str("REPRO_WIRE_ALLOW")
    if not raw:
        return ()
    return tuple(p.strip() for p in raw.split(",") if p.strip())


def _global_allowed(module: str, name: str) -> bool:
    for prefix in _ALLOWED_MODULE_PREFIXES + _extra_prefixes():
        if module == prefix or module.startswith(prefix + "."):
            return True
    return (module, name) in _ALLOWED_STDLIB


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler whose global lookups go through :func:`_global_allowed`."""

    def find_class(self, module, name):
        if not _global_allowed(module, name):
            raise ProtocolError(
                f"wire frame references disallowed global "
                f"{module}.{name}; repro workers only unpickle "
                f"repro-internal and numpy objects"
            )
        return super().find_class(module, name)


def restricted_loads(payload: bytes):
    """``pickle.loads`` through the wire allowlist (see module docstring).

    Raises :class:`ProtocolError` when the payload names a global outside
    the allowlist — before constructing any object from the frame.
    """
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_msg(sock: socket.socket, obj) -> None:
    """Send one length-prefixed pickled message."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_msg(sock: socket.socket):
    """Receive one length-prefixed pickled message."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {length} bytes exceeds protocol limit")
    return restricted_loads(_recv_exact(sock, length))


def handshake(sock: socket.socket) -> None:
    """Exchange magic tags (both directions); raise on any mismatch."""
    sock.sendall(MAGIC)
    peer = _recv_exact(sock, len(MAGIC))
    if peer != MAGIC:
        raise ProtocolError(
            f"peer is not a compatible repro worker (got {peer!r})"
        )
