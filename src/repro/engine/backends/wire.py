"""Framing for the socket backend's client↔worker protocol.

One tiny, symmetric wire format shared by :class:`SocketBackend` (client
side) and ``python -m repro.engine.worker`` (server side), so the two can
never drift apart:

* on connect both ends exchange :data:`MAGIC` (protocol + version tag) —
  a client talking to the wrong port, or to a worker from an incompatible
  revision, fails immediately with a clear error instead of a pickle
  traceback;
* every message is a length-prefixed pickle: 8 network-order bytes of
  payload length, then the pickled object.  Requests are
  ``("call", fn, args)`` tuples (``fn`` pickled by reference, so the worker
  resolves it against its own installed ``repro``); responses are
  ``("ok", result)`` or ``("err", exception)``.

Pickle implies **trust**: a worker executes whatever the connection sends.
Workers bind to loopback by default and must only ever listen on networks
where every peer is trusted (a lab cluster behind a firewall, an SSH
tunnel) — exactly the trust model of every pickle-based RPC layer
(``multiprocessing.managers`` included).
"""

from __future__ import annotations

import pickle
import socket
import struct

__all__ = ["MAGIC", "send_msg", "recv_msg", "handshake", "ProtocolError"]

#: Protocol tag exchanged on connect; bump the digit on breaking changes.
MAGIC = b"REPRO-WORKER-1\n"

_HEADER = struct.Struct(">Q")

#: Upper bound on one message (defensive: a garbled length prefix must not
#: look like a 2**60-byte allocation).
MAX_MESSAGE_BYTES = 1 << 30


class ProtocolError(ConnectionError):
    """The peer is not a compatible repro worker (bad magic / bad frame)."""


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_msg(sock: socket.socket, obj) -> None:
    """Send one length-prefixed pickled message."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_msg(sock: socket.socket):
    """Receive one length-prefixed pickled message."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {length} bytes exceeds protocol limit")
    return pickle.loads(_recv_exact(sock, length))


def handshake(sock: socket.socket) -> None:
    """Exchange magic tags (both directions); raise on any mismatch."""
    sock.sendall(MAGIC)
    peer = _recv_exact(sock, len(MAGIC))
    if peer != MAGIC:
        raise ProtocolError(
            f"peer is not a compatible repro worker (got {peer!r})"
        )
