"""Process-pool execution: the extracted ``_get_pool``/``starmap`` path.

Pools are expensive to spawn, so they live in a process-wide registry keyed
by worker count and are shared by every :class:`ProcessPoolBackend` (and
therefore every :class:`~repro.engine.executor.Engine`) in the process —
exactly the lifetime the old module-global ``_POOLS`` dict gave the
executor.

Unlike the old registry, a **broken pool is evicted and rebuilt**: when a
worker dies mid-shard (OOM kill, segfault, ``os._exit``), the
``ProcessPoolExecutor`` flips into the broken state and every later submit
raises ``BrokenProcessPool`` forever.  The registry previously kept handing
out that dead pool, so one worker death poisoned every subsequent run in
the process.  Now ``submit`` retries once on a fresh pool, and
:meth:`ProcessPoolBackend.note_failure` (run whenever a shard failure
propagates) drops the broken pool from the registry so the *next* run
starts clean.  The run that lost its worker still fails — its shard results
are unknowable — but it fails once, not forever.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Dict, List, Sequence

from .base import Backend

__all__ = ["ProcessPoolBackend"]


# ----------------------------------------------------------------------
# Process-wide pool registry (shared across backends/engines)
# ----------------------------------------------------------------------
# Guarded by _POOLS_LOCK: engines embedded in threaded hosts (the socket
# worker serves each connection on its own thread) reach this registry
# concurrently, and an unguarded get-or-create can spawn two pools for one
# worker count and leak the loser.
_POOLS: Dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _get_pool(max_workers: int) -> ProcessPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(max_workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=max_workers)
            _POOLS[max_workers] = pool
        return pool


def _evict_pool(max_workers: int) -> None:
    """Drop (and shut down) the registered pool for ``max_workers``."""
    with _POOLS_LOCK:
        pool = _POOLS.pop(max_workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
class ProcessPoolBackend(Backend):
    """Runs shards on a shared ``ProcessPoolExecutor`` of ``max_workers``."""

    name = "process"

    def __init__(self, max_workers: int):
        if max_workers <= 1:
            raise ValueError(
                "ProcessPoolBackend needs max_workers > 1; "
                "use SerialBackend for in-process execution"
            )
        self.max_workers = int(max_workers)

    @property
    def parallel_slots(self) -> int:  # type: ignore[override]
        return self.max_workers

    # ------------------------------------------------------------------
    def submit(self, fn, args: tuple) -> Future:
        try:
            return _get_pool(self.max_workers).submit(fn, *args)
        except BrokenExecutor:
            # The registered pool died some time ago (worker OOM-killed,
            # interpreter crash): rebuild once and retry.  No work is lost
            # — the broken pool rejected the submit outright.
            _evict_pool(self.max_workers)
            return _get_pool(self.max_workers).submit(fn, *args)

    def map(self, fn, jobs: Sequence[tuple]) -> List:
        if len(jobs) <= 1:
            # Pool round-trips cost more than a single job: keep the old
            # starmap shortcut of running it in the submitting process.
            return [fn(*job) for job in jobs]
        return super().map(fn, jobs)

    def note_failure(self, exc: BaseException) -> None:
        if isinstance(exc, BrokenExecutor):
            # The shard died *with* its worker: results for the current run
            # are unknowable (the caller still sees the error), but the
            # registry must stop handing out the corpse.
            _evict_pool(self.max_workers)

    def shutdown(self) -> None:
        """Deliberate no-op: the pool is a process-wide shared resource.

        Every backend (and therefore every engine) at the same worker
        count shares one registry pool, so evicting it here would cancel
        another engine's in-flight shards.  Broken pools are already
        evicted by ``submit``/``note_failure``, and healthy pools are
        reclaimed by the registry's ``atexit`` hook at interpreter exit.
        """
