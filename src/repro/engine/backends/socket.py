"""Multi-host execution over TCP: ship shards to remote worker processes.

The :class:`SocketBackend` fans jobs out to a fixed list of
``python -m repro.engine.worker`` processes (``host:port`` pairs from
``REPRO_HOSTS``).  One connection — and one dispatcher thread — is held per
host entry; each connection runs one job at a time, so a host listed twice
(or running two worker processes) contributes two slots.  Jobs are pickled
``("call", fn, args)`` messages (for LER shards: the frozen task spec, the
shard's ``SeedSequence`` and the shot count — primitives all the way down),
and replies merge back **by slot**, so results are bit-identical to the
serial and process backends regardless of host count or completion order.

The remote workers keep the same warm per-process task memo the local pool
workers do (:func:`repro.engine.executor._context_for` runs wherever the
shard runs), so successive waves of a sweep decode against hot caches on
every host.

Failure model: a connection that dies mid-job fails that job's future with
:class:`BackendError` and retires the connection; when the last connection
retires, queued jobs fail rather than hang, and the next ``submit`` starts
a fresh round of connection attempts (so restarting the workers heals the
backend without rebuilding the engine).  A job that merely *raises* on the
worker fails only its own future — the connection survives, exactly as a
raising shard leaves a process-pool worker alive.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from concurrent.futures import Future
from typing import List, Sequence, Tuple

from .base import Backend, BackendError
from .wire import ProtocolError, handshake, recv_msg, send_msg

__all__ = ["SocketBackend"]

_STOP = object()


class SocketBackend(Backend):
    """Runs shards on remote ``repro.engine.worker`` processes over TCP."""

    name = "socket"
    #: Remote coordinators should not execute trailing shards themselves:
    #: the submitting process may be a thin driver on a laptop while the
    #: workers are the actual compute hosts.
    inline_single_shard = False

    def __init__(
        self,
        hosts: Sequence[Tuple[str, int]],
        *,
        connect_timeout: float = 5.0,
        connect_retries: int = 40,
        retry_delay: float = 0.25,
    ):
        self.hosts: Tuple[Tuple[str, int], ...] = tuple(
            (str(h), int(p)) for h, p in hosts)
        if not self.hosts:
            raise ValueError("SocketBackend needs at least one host:port")
        self.connect_timeout = float(connect_timeout)
        self.connect_retries = int(connect_retries)
        self.retry_delay = float(retry_delay)
        self._lock = threading.Lock()
        # One dispatcher *generation* at a time: each (queue, threads, live)
        # triple is replaced wholesale on shutdown or total connection loss,
        # so a stale _STOP sentinel can never leak into a later generation.
        self._queue: "queue.Queue" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._live = 0
        self._started = False

    @property
    def parallel_slots(self) -> int:  # type: ignore[override]
        return len(self.hosts)

    # ------------------------------------------------------------------
    def submit(self, fn, args: tuple) -> Future:
        fut: Future = Future()
        jobs = self._ensure_started()
        jobs.put((fut, fn, args))
        # Close the submit/retire race: if this generation died (last
        # dispatcher retired, shutdown ran, or a concurrent submit already
        # started a *newer* generation) between _ensure_started and the
        # put, nothing will ever drain this queue — fail the stragglers
        # instead of letting their futures hang.
        with self._lock:
            orphaned = jobs is not self._queue or self._live <= 0
        if orphaned:
            self._fail_queued(jobs, BackendError(
                "all worker connections lost before the job was dispatched"))
        return fut

    def shutdown(self) -> None:
        """Close every connection; the backend reconnects on next use."""
        with self._lock:
            jobs, threads = self._queue, self._threads
            self._threads = []
            self._started = False
            # Mark the generation dead so a concurrent submit that already
            # holds this queue sees it as orphaned instead of hanging.
            self._live = 0
        for _ in threads:
            jobs.put(_STOP)
        for t in threads:
            t.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _ensure_started(self) -> "queue.Queue":
        with self._lock:
            if self._started and self._live > 0:
                return self._queue
            # First use, post-shutdown use, or every connection retired:
            # start a fresh generation (new queue, one dispatcher per
            # host).  Threads that find their worker gone retire again;
            # submitters then see BackendError futures, never a hang.
            jobs: "queue.Queue" = queue.Queue()
            self._queue = jobs
            self._threads = []
            self._live = len(self.hosts)
            self._started = True
            for host, port in self.hosts:
                t = threading.Thread(target=self._serve,
                                     args=(jobs, host, port),
                                     name=f"repro-socket-{host}:{port}",
                                     daemon=True)
                self._threads.append(t)
                t.start()
            return jobs

    def _connect(self, host: str, port: int) -> socket.socket:
        last_error: Exception = ConnectionError("no connection attempted")
        for attempt in range(self.connect_retries):
            try:
                sock = socket.create_connection((host, port),
                                                timeout=self.connect_timeout)
                try:
                    handshake(sock)
                    # Shards can legitimately run for minutes: no read
                    # timeout once the handshake proves we found a worker.
                    sock.settimeout(None)
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    return sock
                except BaseException:
                    sock.close()
                    raise
            except ProtocolError as exc:
                # A deterministic mismatch (wrong service on the port, or a
                # worker from an incompatible protocol revision): retrying
                # cannot help, so fail immediately with the real cause.
                raise BackendError(
                    f"peer at {host}:{port} is not a compatible repro "
                    f"worker: {exc}"
                ) from exc
            except (OSError, ConnectionError) as exc:
                last_error = exc
                if attempt + 1 < self.connect_retries:
                    time.sleep(self.retry_delay)
        raise BackendError(
            f"could not connect to repro worker at {host}:{port}: {last_error!r}"
        )

    # ------------------------------------------------------------------
    def _serve(self, jobs: "queue.Queue", host: str, port: int) -> None:
        """Dispatcher thread: one connection, one in-flight job at a time."""
        try:
            sock = self._connect(host, port)
        except BaseException as exc:
            self._retire(jobs, exc)
            return
        try:
            while True:
                job = jobs.get()
                if job is _STOP:
                    return
                fut, fn, args = job
                if not fut.set_running_or_notify_cancel():
                    continue  # cancelled while queued
                try:
                    send_msg(sock, ("call", fn, args))
                    status, payload = recv_msg(sock)
                except BaseException as exc:
                    fut.set_exception(BackendError(
                        f"worker {host}:{port} dropped mid-job: {exc!r}"))
                    self._retire(jobs, exc)
                    return
                if status == "ok":
                    fut.set_result(payload)
                else:
                    fut.set_exception(payload)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _retire(self, jobs: "queue.Queue", cause: BaseException) -> None:
        """Account a dead connection; fail queued jobs when none are left."""
        with self._lock:
            if jobs is not self._queue:
                return  # a later generation superseded this one
            self._live -= 1
            last_one = self._live <= 0
        if not last_one:
            return
        self._fail_queued(jobs, BackendError(
            f"all worker connections lost (last error: {cause!r})"))

    @staticmethod
    def _fail_queued(jobs: "queue.Queue", error: BackendError) -> None:
        while True:
            try:
                job = jobs.get_nowait()
            except queue.Empty:
                return
            if job is _STOP:
                continue
            fut = job[0]
            if fut.set_running_or_notify_cancel():
                fut.set_exception(error)
