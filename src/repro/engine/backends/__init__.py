"""Pluggable execution backends for the Monte-Carlo engine.

The engine plans *what* runs (tasks → shards → waves) and how results
merge; a :class:`Backend` decides *where* each shard runs:

* :class:`SerialBackend` — inline in the driving process;
* :class:`ProcessPoolBackend` — a shared ``ProcessPoolExecutor`` on this
  host (with broken-pool eviction and rebuild);
* :class:`SocketBackend` — a fleet of ``python -m repro.engine.worker``
  processes reached over TCP (``REPRO_HOSTS``).

Because every shard's RNG stream is addressed by its (task, seed, shard
index) coordinates and merging is slot-ordered, **all backends produce
bit-identical results** — selection is purely an execution-strategy knob
and is therefore excluded from every cache key (like ``max_workers``
always was).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .base import Backend, BackendError
from .process import ProcessPoolBackend
from .serial import SerialBackend
from .socket import SocketBackend

__all__ = [
    "Backend",
    "BackendError",
    "SerialBackend",
    "ProcessPoolBackend",
    "SocketBackend",
    "BACKEND_NAMES",
    "create_backend",
]

#: Valid ``REPRO_BACKEND`` / ``EngineConfig.backend`` values.
BACKEND_NAMES = ("serial", "process", "socket")


def create_backend(
    name: str,
    *,
    max_workers: int = 1,
    hosts: Sequence[Tuple[str, int]] = (),
) -> Backend:
    """Build the backend an :class:`EngineConfig` describes.

    ``"process"`` (the default) preserves the engine's historical
    behaviour exactly: with ``max_workers=1`` there is nothing to pool, so
    it resolves to a :class:`SerialBackend` — which is why a default
    configuration still runs everything in-process with legacy seeding.
    ``"socket"`` requires a non-empty host list.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        if max_workers <= 1:
            return SerialBackend()
        return ProcessPoolBackend(max_workers)
    if name == "socket":
        if not hosts:
            raise ValueError(
                "socket backend needs host:port entries "
                "(set REPRO_HOSTS, e.g. REPRO_HOSTS=hostA:7931,hostB:7931)"
            )
        return SocketBackend(hosts)
    raise ValueError(
        f"unknown backend {name!r}; valid backends: {', '.join(BACKEND_NAMES)}"
    )
