"""The ``Backend`` protocol: pluggable execution strategies for the engine.

A backend answers exactly one question — *where does a shard run?* — and
nothing else.  Scheduling (which shards exist, in which order waves are
planned) belongs to :class:`~repro.engine.scheduler.ShotScheduler`; merging
(how per-shard statistics combine) belongs to the engine.  Because every
unit of work draws its RNG stream from its own (task, seed, shard index)
coordinates, *any* backend produces bit-identical results for any worker or
host count and any completion order — the backend only moves wall-clock.

The contract has three methods:

``submit(fn, args)``
    Schedule one call and return a :class:`concurrent.futures.Future`.
    ``fn`` must be a module-level (picklable) callable.  This is the
    incremental primitive the engine's sweep loop drives: it submits waves
    as earlier waves complete, so a plain batch API is not enough.
``submit_shards(fn, jobs)``
    Stream ``(slot, result)`` pairs **in completion order** — each
    completed shard is yielded with the index of the job that produced it,
    so callers can merge results by slot while later shards are still in
    flight.
``map(fn, jobs)``
    Run ``fn(*job)`` for every job and return results **in job order**,
    cancelling outstanding work when any job fails.  The generic fan-out
    used by :meth:`Engine.starmap` and every non-LER Monte-Carlo layer;
    the default implementation is exactly a slot-merge over
    ``submit_shards``.
``shutdown()``
    Release pool/connection resources.  Idempotent; a backend must be
    usable again after ``shutdown`` (it re-acquires resources lazily).

Failure semantics are shared by all implementations: when a shard raises,
outstanding futures are cancelled (never stranded on the pool), the hook
:meth:`Backend.note_failure` runs (e.g. the process backend evicts a broken
pool there), and the original exception propagates to the caller.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = ["Backend", "BackendError"]


class BackendError(RuntimeError):
    """An execution backend failed for infrastructure (not task) reasons."""


class Backend:
    """Base class of all execution backends (see module docstring)."""

    #: Short identifier ("serial", "process", "socket") used in config/env.
    name: str = "abstract"

    #: How many shards the backend can usefully run at once.  A throughput
    #: hint only (block/wave sizing) — never part of any cache key, because
    #: results are slot-count invariant.
    parallel_slots: int = 1

    #: Whether a trailing single-shard wave with nothing to overlap should
    #: run inline in the submitting process instead of paying a round-trip.
    #: True for in-host backends; False for remote ones, where the
    #: submitting process is a coordinator that may not want the work.
    inline_single_shard: bool = True

    # ------------------------------------------------------------------
    def submit(self, fn, args: tuple) -> Future:
        """Schedule ``fn(*args)``; the returned future resolves to its result."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release resources; safe to call twice, safe to use again after."""

    def note_failure(self, exc: BaseException) -> None:
        """Hook run before a shard failure propagates (pool-health triage)."""

    # ------------------------------------------------------------------
    def submit_shards(self, fn, jobs: Sequence[tuple]) -> Iterator[Tuple[int, object]]:
        """Yield ``(slot, result)`` pairs as shards complete, in any order."""
        pending = {self.submit(fn, job): slot for slot, job in enumerate(jobs)}
        try:
            while pending:
                done = self.wait_any(pending)
                for fut in done:
                    yield pending.pop(fut), fut.result()
        except BaseException as exc:
            self._cancel(pending, exc)
            raise

    def map(self, fn, jobs: Sequence[tuple]) -> List:
        """Run every job and return results in job order (cancel on failure)."""
        results: List = [None] * len(jobs)
        for slot, result in self.submit_shards(fn, jobs):
            results[slot] = result
        return results

    def wait_any(self, futures: Iterable[Future]) -> Set[Future]:
        """Block until at least one future completes; return the done set."""
        done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
        return done

    # ------------------------------------------------------------------
    def _cancel(self, futures: Iterable[Future], exc: BaseException) -> None:
        """Shared failure path: triage the error, then cancel the rest."""
        self.note_failure(exc)
        for f in futures:
            f.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} slots={self.parallel_slots}>"
