"""In-process execution: the extracted serial path of the old executor.

Every submitted call runs immediately in the submitting process; the
returned future is already resolved.  This is the default for
``max_workers=1`` configurations and the reference implementation the
parity suite measures the other backends against — any backend must
reproduce its numbers bit-for-bit.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import List, Sequence

from .base import Backend

__all__ = ["SerialBackend"]


class SerialBackend(Backend):
    """Runs every shard inline in the submitting process."""

    name = "serial"
    parallel_slots = 1

    def submit(self, fn, args: tuple) -> Future:
        fut: Future = Future()
        fut.set_running_or_notify_cancel()
        try:
            fut.set_result(fn(*args))
        except BaseException as exc:
            # Deliver through the future so callers see one uniform failure
            # path (``.result()`` raises) across all backends.
            fut.set_exception(exc)
        return fut

    def map(self, fn, jobs: Sequence[tuple]) -> List:
        # The plain loop, not submit-then-collect: a failing job must stop
        # the batch at once instead of eagerly running the remaining jobs
        # (the historical serial-starmap semantics).
        return [fn(*job) for job in jobs]
