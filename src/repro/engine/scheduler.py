"""Adaptive shot allocation: submit shards in waves, stop when targets are met.

At low physical error rates logical failures are rare, so a fixed shot budget
either wastes compute (millions of shots for a point whose failure count
saturated long ago) or under-samples (zero failures, useless error bars).
The scheduler closes the loop: shots are planned in geometrically growing
*waves* of shards, and after each wave the merged failure count decides
whether to continue.

Determinism: the plan depends only on the policy, the shard size and the
*merged* statistics after complete waves - never on which worker (or which
host: the scheduler is equally blind to every execution backend) produced
which shard - so the sequence of (shard index, shard shots) pairs, and hence
the result, is identical for any worker count.

The same property is what makes **cross-task interleaving** safe
(:meth:`repro.engine.executor.Engine.run_sweep`): each task in a sweep owns
one scheduler, shards of every task share one pool, and because a scheduler
only ever sees its own task's merged wave statistics, its plan is
independent of what other tasks are running — interleaving changes
wall-clock, never numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.stats import wilson_interval

__all__ = ["ShotPolicy", "ShotScheduler", "Shard", "rng_mode_shot_cost"]

# One unit of work handed to a worker: (global shard index, shots to run).
Shard = Tuple[int, int]

#: Relative per-shot cost of each sampler RNG mode, as an exact fraction
#: ``(num, den)``.  Bitgen draws ~4x fewer random bytes and skips the float
#: compare/pack passes entirely, which measures out to roughly a third of
#: the exact per-shot cost in the sampler benchmarks (BENCH_fast_rng.json).
#: Ranking and fusion-grouping heuristic only — never part of any payload
#: or cache key, and never a factor in results.
_RNG_MODE_COST = {"exact": (1, 1), "bitgen": (1, 3)}


def rng_mode_shot_cost(rng_mode: str, shots: int) -> int:
    """``shots`` weighted by the mode's relative per-shot cost (ceiling).

    Exact mode returns ``shots`` unchanged; bitgen prices at ~1/3 of exact,
    rounded up so a nonzero request never prices at zero.  Unknown modes
    raise a ``ValueError`` so a typo'd task field fails at ranking time
    instead of silently mis-sorting jobs.
    """
    try:
        num, den = _RNG_MODE_COST[rng_mode]
    except KeyError:
        raise ValueError(
            f"unknown rng_mode {rng_mode!r}; "
            f"valid modes: {', '.join(sorted(_RNG_MODE_COST))}") from None
    if shots <= 0:
        return 0
    return -(-shots * num // den)


@dataclass(frozen=True)
class ShotPolicy:
    """How many shots to spend on a task and when to stop early.

    Attributes
    ----------
    max_shots:
        Hard budget; sampling never exceeds it.
    min_shots:
        Guaranteed minimum before any early stop is considered.  Defaults to
        ``max_shots`` for fixed policies and to one wave for adaptive ones.
    target_failures:
        Stop once this many failures have been observed (the classic
        "collect N events" rule; N ~ 100 gives ~10% relative error).
    target_rel_halfwidth:
        Stop once the Wilson 95% CI half-width falls below this fraction of
        the estimated rate (requires at least one failure).
    growth:
        Geometric factor between consecutive wave sizes.
    """

    max_shots: int
    min_shots: Optional[int] = None
    target_failures: Optional[int] = None
    target_rel_halfwidth: Optional[float] = None
    z: float = 1.96
    growth: float = 2.0

    def __post_init__(self) -> None:
        if self.max_shots <= 0:
            raise ValueError("max_shots must be positive")
        if self.min_shots is not None and not 0 < self.min_shots <= self.max_shots:
            raise ValueError("min_shots must lie in (0, max_shots]")
        if self.target_failures is not None and self.target_failures <= 0:
            raise ValueError("target_failures must be positive")
        if self.target_rel_halfwidth is not None and self.target_rel_halfwidth <= 0:
            raise ValueError("target_rel_halfwidth must be positive")
        if self.growth < 1.0:
            raise ValueError("growth must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def fixed(cls, shots: int) -> "ShotPolicy":
        """Exactly ``shots`` shots, no early stopping (the legacy behaviour)."""
        return cls(max_shots=shots, min_shots=shots)

    @classmethod
    def adaptive(
        cls,
        max_shots: int,
        *,
        min_shots: Optional[int] = None,
        target_failures: Optional[int] = 100,
        target_rel_halfwidth: Optional[float] = None,
        growth: float = 2.0,
    ) -> "ShotPolicy":
        """Stop early once the statistical target is met (default: 100 failures)."""
        return cls(max_shots=max_shots, min_shots=min_shots,
                   target_failures=target_failures,
                   target_rel_halfwidth=target_rel_halfwidth, growth=growth)

    @property
    def is_adaptive(self) -> bool:
        return (self.target_failures is not None
                or self.target_rel_halfwidth is not None
                or (self.min_shots or self.max_shots) < self.max_shots)

    def payload(self) -> dict:
        """Canonical description for cache keys (anything affecting results)."""
        return {
            "max_shots": self.max_shots,
            "min_shots": self.min_shots,
            "target_failures": self.target_failures,
            "target_rel_halfwidth": self.target_rel_halfwidth,
            "z": self.z,
            "growth": self.growth,
        }

    def estimated_cost(self, shard_size: int = 4096,
                       expected_rate: float = 0.0,
                       rng_mode: str = "exact") -> int:
        """Expected execution cost in exact-shot equivalents (ranking metric).

        Drives a real :class:`ShotScheduler` through its wave plan, crediting
        each wave with the failures a task of logical error rate
        ``expected_rate`` would be expected to produce (cumulative count
        rounded down, so the estimate is a deterministic integer), and
        prices the shots spent when the plan stops.  With the conservative
        default ``expected_rate=0.0`` no early-stop target is ever met, so
        the estimate is the policy's worst case — exactly ``max_shots`` for
        exact mode — while a positive rate prices in adaptive early
        stopping.  ``rng_mode`` weights the result by the sampler mode's
        relative per-shot cost (:func:`rng_mode_shot_cost`): a bitgen task
        prices at ~1/3 of an exact task with the same plan, so the service
        priority scheduler and the fusion grouping budget rank it where its
        wall-clock actually lands.  The exact-mode number is what the actual
        scheduler would spend on a task whose merged waves produced those
        failure counts, which is what the unit tests pin it against.
        """
        if expected_rate < 0.0:
            raise ValueError("expected_rate must be non-negative")
        sched = ShotScheduler(self, shard_size)
        credited = 0
        while True:
            wave = sched.next_wave()
            if not wave:
                return rng_mode_shot_cost(rng_mode, sched.shots_done)
            wave_shots = sum(n for _, n in wave)
            expected = int(expected_rate * (sched.shots_done + wave_shots))
            failures = min(max(expected - credited, 0), wave_shots)
            credited += failures
            sched.record(failures, wave_shots)


class ShotScheduler:
    """Stateful wave planner for one task.

    Usage::

        sched = ShotScheduler(policy, shard_size)
        while True:
            wave = sched.next_wave()
            if not wave:
                break
            ... run every shard of the wave, merge counts ...
            sched.record(wave_failures, wave_shots)
    """

    def __init__(self, policy: ShotPolicy, shard_size: int):
        if shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self.policy = policy
        self.shard_size = shard_size
        self.failures = 0
        self.shots_done = 0
        self._next_shard = 0
        self._planned = 0
        if policy.min_shots is not None:
            first = policy.min_shots
        elif policy.is_adaptive:
            first = min(shard_size, policy.max_shots)
        else:
            first = policy.max_shots
        self._wave_size = first
        self._min_shots = first if policy.min_shots is None else policy.min_shots

    # ------------------------------------------------------------------
    def should_stop(self) -> bool:
        """Decide, from merged statistics only, whether sampling can end."""
        if self.shots_done < self._min_shots:
            return False
        if self.shots_done >= self.policy.max_shots:
            return True
        tf = self.policy.target_failures
        if tf is not None and self.failures >= tf:
            return True
        trh = self.policy.target_rel_halfwidth
        if trh is not None and self.failures > 0:
            low, high = wilson_interval(self.failures, self.shots_done,
                                        z=self.policy.z)
            rate = self.failures / self.shots_done
            if (high - low) / 2.0 <= trh * rate:
                return True
        return False

    def next_wave(self) -> List[Shard]:
        """Plan the next wave of shards (empty when sampling is finished)."""
        if self.should_stop():
            return []
        remaining = self.policy.max_shots - self._planned
        if remaining <= 0:
            return []
        wave_shots = min(self._wave_size, remaining)
        shards: List[Shard] = []
        left = wave_shots
        while left > 0:
            n = min(self.shard_size, left)
            shards.append((self._next_shard, n))
            self._next_shard += 1
            left -= n
        self._planned += wave_shots
        self._wave_size = max(1, int(self._wave_size * self.policy.growth))
        return shards

    def record(self, failures: int, shots: int) -> None:
        """Merge the outcome of a completed wave."""
        if failures < 0 or shots < 0 or failures > shots:
            raise ValueError("invalid wave statistics")
        self.failures += failures
        self.shots_done += shots
