"""Remote shard worker: the server side of the socket backend.

Run one of these per compute host (or several per host for more slots)::

    python -m repro.engine.worker --host 0.0.0.0 --port 7931

then point a driver at the fleet::

    REPRO_BACKEND=socket REPRO_HOSTS=hostA:7931,hostB:7931 \\
        python examples/quickstart.py

The worker accepts connections from
:class:`~repro.engine.backends.socket.SocketBackend`, and serves each one
on its own thread: read a pickled ``("call", fn, args)`` message, run
``fn(*args)`` (e.g. :func:`repro.engine.executor._run_ler_shard` with a
frozen task spec, a ``SeedSequence`` and a shot count), reply ``("ok",
result)`` or ``("err", exception)``.  Because the shard functions key their
warm context off the task content hash
(:func:`repro.engine.executor._context_for`), a worker process keeps hot
circuits/decoders/geodesic caches across every wave of a sweep, exactly
like a local pool worker.

``--port 0`` binds an OS-assigned port; the worker always prints one
machine-readable line — ``REPRO_WORKER_LISTENING <host> <port>`` — once it
is accepting, which is what the test harness and the CI smoke job parse.

Trust model: messages are pickles, so a worker executes what it is sent.
Bind to loopback (the default) or to networks where every peer is trusted;
see :mod:`repro.engine.backends.wire`.
"""

from __future__ import annotations

import argparse
import pickle
import socket
import sys
import threading
import traceback
from typing import Optional

from ..env import env_str
from .backends.wire import MAGIC, ProtocolError, recv_msg, send_msg
from .pipeline import memo_preload

__all__ = ["serve", "main"]


def _recv_magic(conn: socket.socket) -> bool:
    """Server half of the handshake; False when the peer is incompatible."""
    got = b""
    while len(got) < len(MAGIC):
        chunk = conn.recv(len(MAGIC) - len(got))
        if not chunk:
            return False
        got += chunk
    return got == MAGIC


def _serve_connection(conn: socket.socket, peer) -> None:
    """Run one client's jobs until it disconnects."""
    try:
        if not _recv_magic(conn):
            return
        conn.sendall(MAGIC)
        while True:
            try:
                message = recv_msg(conn)
            except ProtocolError as exc:
                # A desynced stream or an over-limit frame is *not* a normal
                # disconnect: leave a diagnostic in the worker log instead
                # of vanishing silently (the client only ever sees a generic
                # dropped-connection error).
                print(f"repro.engine.worker: protocol error from {peer}: "
                      f"{exc}", file=sys.stderr, flush=True)
                return
            except ConnectionError:
                return  # client went away between jobs: normal shutdown
            if not (isinstance(message, tuple) and len(message) == 3
                    and message[0] == "call"):
                print(f"repro.engine.worker: unexpected message from {peer}; "
                      f"closing connection", file=sys.stderr, flush=True)
                return
            _, fn, args = message
            try:
                reply = ("ok", fn(*args))
            except Exception as exc:  # job error: report it, keep serving
                reply = ("err", _portable_error(exc))
            send_msg(conn, reply)
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _portable_error(exc: Exception) -> Exception:
    """The exception itself when it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(
            "worker-side error (original exception not picklable):\n"
            + "".join(traceback.format_exception(type(exc), exc,
                                                 exc.__traceback__))
        )


def serve(host: str = "127.0.0.1", port: int = 0, *,
          cache_dir: Optional[str] = None,
          ready_event: Optional[threading.Event] = None,
          bound: Optional[list] = None) -> None:
    """Listen forever, serving each connection on its own thread.

    ``cache_dir`` (or the ``REPRO_CACHE`` environment fallback) points the
    worker's decoding pipelines at the shared result cache, so the first
    shard of each task imports any persisted syndrome memo instead of
    re-decoding from cold.

    ``ready_event``/``bound`` exist for in-process tests: ``bound`` receives
    ``(host, port)`` once the socket is listening and ``ready_event`` is
    then set.
    """
    cache = cache_dir or env_str("REPRO_CACHE")
    if cache is not None:
        # Process-wide preload target; only touch it when this worker was
        # actually given a cache (in-process test servers must not clobber
        # their host process's setting).
        memo_preload(cache)
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen()
    actual_host, actual_port = server.getsockname()[:2]
    if bound is not None:
        bound.append((actual_host, actual_port))
    if ready_event is not None:
        ready_event.set()
    # The one line launchers parse; flush so pipes see it immediately.
    print(f"REPRO_WORKER_LISTENING {actual_host} {actual_port}", flush=True)
    try:
        while True:
            conn, peer = server.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=_serve_connection, args=(conn, peer),
                             name=f"repro-worker-{peer}", daemon=True).start()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.close()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.worker",
        description="Serve repro engine shards to a SocketBackend over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: loopback; only "
                             "expose to trusted networks — jobs are pickles)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = OS-assigned, printed "
                             "as REPRO_WORKER_LISTENING)")
    parser.add_argument("--cache", default=None,
                        help="result-cache directory for syndrome-memo "
                             "warm-up (default: $REPRO_CACHE)")
    args = parser.parse_args(argv)
    serve(args.host, args.port, cache_dir=args.cache)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    main()
