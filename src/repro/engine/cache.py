"""Content-addressed on-disk JSON cache for engine results.

Entries are keyed by a SHA-256 hex digest computed by the executor from the
task's content hash plus everything else that determines the numbers (seed
fingerprint, shot policy, shard size).  Each record is a single JSON file
under ``<root>/<key[:2]>/<key>.json`` carrying a ``schema_version``; entries
written under a different schema version are silently treated as misses, so
bumping :data:`repro.engine.tasks.ENGINE_SCHEMA_VERSION` (or constructing the
cache with a different version) invalidates the whole store without deleting
anything.

Writes are atomic (temp file + ``os.replace``), so a crashed or concurrent
run can never leave a half-written record that later parses as valid.
Unparseable files are treated as misses, never as errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from .tasks import ENGINE_SCHEMA_VERSION

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of JSON result records addressed by hex-digest key."""

    def __init__(self, root, schema_version: int = ENGINE_SCHEMA_VERSION):
        self.root = Path(root)
        self.schema_version = int(schema_version)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be hex digests, got {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the cached record, or None on miss/corruption/schema skew."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("schema_version") != self.schema_version:
            return None
        return record

    def put(self, key: str, record: dict) -> None:
        """Crash-safely persist a record under the current schema version.

        The record is written to a ``.tmp`` file in the cache root, flushed
        and fsynced, and only then :func:`os.replace`-d into place — so a
        worker killed at *any* instant (including mid-``write``, or between
        write and rename) can never leave a torn JSON file under the
        record's final name for other workers or service processes to read.
        Leftover ``.tmp`` files from killed writers are invisible to
        :meth:`get`/:meth:`keys` and are swept by :meth:`clear`.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = dict(record)
        body["schema_version"] = self.schema_version
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(body, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns True if it existed."""
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    @staticmethod
    def _is_record_name(sub_name: str, stem: str) -> bool:
        """Whether ``<sub_name>/<stem>.json`` is a cache record of ours.

        Records live at ``<key[:2]>/<key>.json`` with a hex-digest key, so
        anything else under the cache root — the service's SQLite database,
        its ``-wal``/``-shm`` siblings, editor temp files, a stray README —
        is a *foreign file* that must be invisible to :meth:`keys` and
        untouched by :meth:`clear`.
        """
        return (len(sub_name) == 2
                and len(stem) > 2
                and stem[:2] == sub_name
                and all(c in "0123456789abcdef" for c in stem))

    def keys(self) -> Iterator[str]:
        """All record keys currently on disk (any schema version).

        Foreign files living under the cache root (e.g. a co-located
        service database or editor droppings) are skipped, not yielded as
        pseudo-keys that would later crash :meth:`path_for`.
        """
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir():
                for f in sorted(sub.glob("*.json")):
                    if self._is_record_name(sub.name, f.stem):
                        yield f.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        """True when a *readable, schema-current* record exists for ``key``."""
        return self.get(key) is not None

    def clear(self) -> int:
        """Remove every record (plus orphaned ``.tmp`` files from killed
        writers); returns the number of records removed.  Foreign files are
        left alone."""
        removed = 0
        for key in list(self.keys()):
            if self.invalidate(key):
                removed += 1
        if self.root.is_dir():
            # sorted(): directory iteration order is filesystem-dependent;
            # deterministic walk order keeps deletion logs/tracing stable.
            for sub in sorted(self.root.iterdir()):
                if sub.is_dir() and len(sub.name) == 2:
                    for tmp in sorted(sub.glob("tmp*.tmp")):
                        try:
                            os.unlink(tmp)
                        except OSError:
                            pass
        return removed
