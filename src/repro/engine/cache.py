"""Content-addressed on-disk JSON cache for engine results.

Entries are keyed by a SHA-256 hex digest computed by the executor from the
task's content hash plus everything else that determines the numbers (seed
fingerprint, shot policy, shard size).  Each record is a single JSON file
under ``<root>/<key[:2]>/<key>.json`` carrying a ``schema_version``; entries
written under a different schema version are silently treated as misses, so
bumping :data:`repro.engine.tasks.ENGINE_SCHEMA_VERSION` (or constructing the
cache with a different version) invalidates the whole store without deleting
anything.

Writes are atomic (temp file + ``os.replace``), so a crashed or concurrent
run can never leave a half-written record that later parses as valid.
Unparseable files are treated as misses, never as errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from .tasks import ENGINE_SCHEMA_VERSION

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of JSON result records addressed by hex-digest key."""

    def __init__(self, root, schema_version: int = ENGINE_SCHEMA_VERSION):
        self.root = Path(root)
        self.schema_version = int(schema_version)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be hex digests, got {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Return the cached record, or None on miss/corruption/schema skew."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("schema_version") != self.schema_version:
            return None
        return record

    def put(self, key: str, record: dict) -> None:
        """Atomically persist a record under the current schema version."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = dict(record)
        body["schema_version"] = self.schema_version
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(body, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns True if it existed."""
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """All keys currently on disk (any schema version)."""
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir():
                for f in sorted(sub.glob("*.json")):
                    yield f.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        """True when a *readable, schema-current* record exists for ``key``."""
        return self.get(key) is not None

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            if self.invalidate(key):
                removed += 1
        return removed
