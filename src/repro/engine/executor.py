"""Sharded Monte-Carlo executor: the single entry point for engine work.

The executor takes a :class:`~repro.engine.tasks.TaskSpec`, splits the
requested shots (or sample attempts) into shards, runs the shards serially or
on a ``concurrent.futures.ProcessPoolExecutor``, and merges the per-shard
statistics with the binomial pooling from :mod:`repro.analysis.stats`.

Determinism contract
--------------------
Shard ``i`` of a task always draws its generator from RNG child stream ``i``
of the run's root seed (:func:`repro.engine.rng.child_stream`), and merged
statistics are plain sums, so results are **bit-identical for any
``max_workers``** and for repeated runs with the same seed.  As a special
case, a fixed-policy run that fits in a single shard seeds the simulator with
the *raw* user seed - exactly what the pre-engine experiment drivers did - so
legacy seeds keep producing legacy numbers.

Workers memoise a warm :class:`~repro.engine.pipeline.DecodingPipeline`
(circuit, DEM, decoder, geodesic/syndrome caches) per task content hash, so a
task's expensive setup is paid once per process, not once per shard — and
successive shards and scheduler waves of the same task decode against
already-cached geodesics and memoised syndromes.
"""

from __future__ import annotations

import atexit
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import BinomialEstimate
from ..core.patch import AdaptedPatch
from ..env import env_int
from ..decoder.matching import MatchingGraph, MwpmDecoder
from ..decoder.unionfind import UnionFindDecoder
from ..stabilizer.dem import build_detector_error_model
from .cache import ResultCache
from .pipeline import DecodingPipeline
from .rng import Seed, as_seed_sequence, child_stream, from_fingerprint, seed_fingerprint
from .scheduler import ShotPolicy, ShotScheduler
from .tasks import LerPointTask, PatchSampleTask, canonical_json

__all__ = [
    "EngineConfig",
    "LerResult",
    "Engine",
    "default_engine",
    "set_default_engine",
]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineConfig:
    """Execution knobs (none of them may change the numbers a task produces).

    Attributes
    ----------
    max_workers:
        Process-pool width; ``1`` (the default) runs everything in-process.
    shard_size:
        Maximum shots per shard.  Runs that fit in one shard follow the
        legacy single-stream seeding, so the default is chosen above the
        laptop-scale shot counts used by the tests and benchmarks.
    cache_dir:
        Root of the on-disk result cache; ``None`` disables caching.
    """

    max_workers: int = 1
    shard_size: int = 4096
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")

    @classmethod
    def from_env(cls, env=None) -> "EngineConfig":
        """Read ``REPRO_WORKERS`` / ``REPRO_CACHE`` / ``REPRO_SHARD_SIZE``.

        Integer variables are validated up front (:func:`repro.env.env_int`):
        garbage or non-positive values raise a ``ValueError`` naming the
        variable instead of surfacing later as a bare ``int()`` traceback.
        """
        env = os.environ if env is None else env
        workers = env_int("REPRO_WORKERS", 1, minimum=1, env=env)
        cache = env.get("REPRO_CACHE") or None
        shard = env_int("REPRO_SHARD_SIZE", 4096, minimum=1, env=env)
        return cls(max_workers=workers, shard_size=shard, cache_dir=cache)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LerResult:
    """Merged outcome of one LER task run through the engine."""

    task: LerPointTask
    failures: int
    shots: int
    num_detectors: int
    num_dem_errors: int
    num_shards: int
    from_cache: bool = False

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(failures=self.failures, shots=self.shots)

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots

    def to_memory_result(self):
        """Adapt to the legacy :class:`MemoryExperimentResult` shape."""
        from ..experiments.memory import MemoryExperimentResult

        return MemoryExperimentResult(
            physical_error_rate=self.task.physical_error_rate,
            rounds=self.task.rounds,
            shots=self.shots,
            failures=self.failures,
            num_detectors=self.num_detectors,
            num_dem_errors=self.num_dem_errors,
            decoder=self.task.decoder,
        )


# ----------------------------------------------------------------------
# Worker-side execution (top-level so ProcessPoolExecutor can pickle it)
# ----------------------------------------------------------------------
_MEMO_LIMIT = 8
_TASK_MEMO: Dict[str, tuple] = {}


def _context_for(task: LerPointTask) -> tuple:
    """Build (or reuse) the warm decoding pipeline for a task in this process.

    The pipeline carries the circuit, the decoder and its geodesic/syndrome
    caches, keyed by the task's DEM-determining content hash; scheduler waves
    that re-enter the same task decode against warm caches.
    """
    key = task.content_hash()
    ctx = _TASK_MEMO.get(key)
    if ctx is None:
        circuit = task.build_circuit()
        dem = build_detector_error_model(circuit)
        graph = MatchingGraph(dem)
        if task.decoder == "mwpm":
            decoder = MwpmDecoder(graph)
        else:
            decoder = UnionFindDecoder(graph)
        ctx = (DecodingPipeline(circuit, decoder), len(dem))
        if len(_TASK_MEMO) >= _MEMO_LIMIT:
            _TASK_MEMO.pop(next(iter(_TASK_MEMO)))
        _TASK_MEMO[key] = ctx
    return ctx


def _run_ler_shard(task: LerPointTask, seed: Seed, shots: int) -> Tuple[int, int, int]:
    """Sample + decode one shard; returns (failures, detectors, dem errors)."""
    pipeline, dem_size = _context_for(task)
    stats = pipeline.run(shots, seed=seed)
    return (int(stats.failures), int(pipeline.circuit.num_detectors),
            int(dem_size))


def _run_patch_attempts(task: PatchSampleTask, root_fp, start: int, stop: int) -> list:
    """Evaluate attempt indices [start, stop); return accepted defect sets.

    ``root_fp`` is the (entropy, spawn_key) fingerprint of the root seed, or
    ``None`` for OS entropy (in which case attempts use fresh entropy and the
    run is not reproducible - same as the legacy behaviour with seed=None).
    """
    from ..core.adaptation import adapt_patch
    from ..core.metrics import evaluate_patch

    layout = task.layout()
    model = task.defect_model()
    root = from_fingerprint(root_fp)
    accepted = []
    for idx in range(start, stop):
        stream = None if root is None else child_stream(root, idx)
        rng = np.random.default_rng(stream)
        defects = model.sample(layout, rng)
        patch = adapt_patch(layout, defects)
        if task.require_valid:
            if not patch.valid:
                continue
            if evaluate_patch(patch).distance < task.min_distance:
                continue
        accepted.append((idx,
                         sorted(tuple(q) for q in defects.faulty_qubits),
                         sorted((tuple(a), tuple(b))
                                for a, b in defects.faulty_links)))
    return accepted


def _ler_cache_record(task: LerPointTask, result: "LerResult") -> dict:
    """The on-disk record for one LER result (single shape for all writers)."""
    return {
        "kind": task.kind,
        "task_hash": task.content_hash(),
        "task": task.payload(),
        "failures": result.failures,
        "shots": result.shots,
        "num_detectors": result.num_detectors,
        "num_dem_errors": result.num_dem_errors,
        "num_shards": result.num_shards,
    }


# ----------------------------------------------------------------------
# Process-pool lifecycle
# ----------------------------------------------------------------------
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _get_pool(max_workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        _POOLS[max_workers] = pool
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class Engine:
    """Runs task specs: sharding, scheduling, caching, result merging."""

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self._cache = (ResultCache(self.config.cache_dir)
                       if self.config.cache_dir else None)

    # ------------------------------------------------------------------
    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    def _cache_key(self, task, seed: Seed, policy: ShotPolicy) -> Optional[str]:
        """Key covering everything that determines the numbers.

        ``max_workers`` is deliberately excluded (results are worker-count
        invariant); ``shard_size`` is included because the multi-shard stream
        split depends on it.
        """
        fp = seed_fingerprint(seed)
        if fp is None:
            return None
        body = {
            "task": task.content_hash(),
            "seed": [list(fp[0]), list(fp[1])],
            "policy": policy.payload(),
            "shard_size": self.config.shard_size,
        }
        return hashlib.sha256(canonical_json(body).encode()).hexdigest()

    def starmap(self, fn, jobs: Sequence[tuple]) -> List:
        """Run ``fn(*job)`` for every job, in order, serially or on the pool.

        ``fn`` must be a module-level callable (picklable).  This is the
        generic fan-out primitive other Monte-Carlo layers (e.g. the chiplet
        yield estimator) build on; result order always matches job order.
        """
        if self.config.max_workers <= 1 or len(jobs) <= 1:
            return [fn(*job) for job in jobs]
        pool = _get_pool(self.config.max_workers)
        futures = [pool.submit(fn, *job) for job in jobs]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # LER tasks
    # ------------------------------------------------------------------
    def run_ler(
        self,
        task: LerPointTask,
        *,
        shots: Optional[int] = None,
        policy: Optional[ShotPolicy] = None,
        seed: Seed = None,
    ) -> LerResult:
        """Run one LER task to completion under a shot policy.

        Exactly one of ``shots`` (fixed budget) or ``policy`` must be given.
        """
        policy = self._resolve_policy(shots, policy)
        key = self._cache_key(task, seed, policy) if self._cache is not None else None
        if key is not None:
            hit = self._load_cached_ler(task, key)
            if hit is not None:
                return hit
        result = self._run_ler_live(task, policy, seed)
        if key is not None:
            self._cache.put(key, _ler_cache_record(task, result))
        return result

    def run_ler_many(
        self,
        tasks: Sequence[LerPointTask],
        *,
        shots: Optional[int] = None,
        policy: Optional[ShotPolicy] = None,
        seed: Seed = None,
    ) -> List[LerResult]:
        """Run a batch of LER tasks; task ``i`` uses RNG child stream ``i``.

        Single-shard fixed-policy batches (the common laptop-scale sweep) are
        fanned out across the pool at *task* granularity, so curves
        parallelise even when each point fits in one shard.
        """
        policy = self._resolve_policy(shots, policy)
        if seed is None:
            # Unseeded batches keep the legacy fresh-entropy-per-task
            # semantics; passing None through also keeps them out of the
            # cache (a key minted from OS entropy could never hit again).
            seeds: List[Seed] = [None] * len(tasks)
        else:
            root = as_seed_sequence(seed)
            seeds = [child_stream(root, i) for i in range(len(tasks))]

        single_shard = (not policy.is_adaptive
                        and policy.max_shots <= self.config.shard_size)
        if not single_shard:
            return [self.run_ler(task, policy=policy, seed=s)
                    for task, s in zip(tasks, seeds)]

        results: List[Optional[LerResult]] = [None] * len(tasks)
        pending: List[Tuple[int, Optional[str]]] = []
        for i, task in enumerate(tasks):
            key = self._cache_key(task, seeds[i], policy) if self._cache is not None else None
            hit = self._load_cached_ler(task, key) if key is not None else None
            if hit is not None:
                results[i] = hit
            else:
                pending.append((i, key))

        outs = self.starmap(
            _run_ler_shard,
            [(tasks[i], seeds[i], policy.max_shots) for i, _ in pending],
        )
        for (i, key), (failures, num_det, num_dem) in zip(pending, outs):
            res = LerResult(task=tasks[i], failures=failures,
                            shots=policy.max_shots, num_detectors=num_det,
                            num_dem_errors=num_dem, num_shards=1)
            results[i] = res
            if key is not None:
                self._cache.put(key, _ler_cache_record(tasks[i], res))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _resolve_policy(self, shots: Optional[int],
                        policy: Optional[ShotPolicy]) -> ShotPolicy:
        if (shots is None) == (policy is None):
            raise ValueError("specify exactly one of shots= or policy=")
        return policy if policy is not None else ShotPolicy.fixed(shots)

    def _load_cached_ler(self, task: LerPointTask, key: str) -> Optional[LerResult]:
        record = self._cache.get(key)
        if record is None or record.get("task_hash") != task.content_hash():
            return None
        try:
            return LerResult(
                task=task,
                failures=int(record["failures"]),
                shots=int(record["shots"]),
                num_detectors=int(record["num_detectors"]),
                num_dem_errors=int(record["num_dem_errors"]),
                num_shards=int(record["num_shards"]),
                from_cache=True,
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _run_ler_live(self, task: LerPointTask, policy: ShotPolicy,
                      seed: Seed) -> LerResult:
        sched = ShotScheduler(policy, self.config.shard_size)
        root = as_seed_sequence(seed)
        # Legacy-compatible path: a fixed budget that fits in one shard is
        # seeded with the raw user seed, matching the pre-engine drivers.
        single_shard = (not policy.is_adaptive
                        and policy.max_shots <= self.config.shard_size)
        failures = 0
        num_detectors = num_dem = 0
        num_shards = 0
        while True:
            wave = sched.next_wave()
            if not wave:
                break
            jobs = []
            for idx, n in wave:
                shard_seed: Seed = seed if single_shard else child_stream(root, idx)
                jobs.append((task, shard_seed, n))
            outs = self.starmap(_run_ler_shard, jobs)
            wave_failures = sum(o[0] for o in outs)
            num_detectors, num_dem = outs[0][1], outs[0][2]
            failures += wave_failures
            num_shards += len(wave)
            sched.record(wave_failures, sum(n for _, n in wave))
        return LerResult(task=task, failures=failures, shots=sched.shots_done,
                         num_detectors=num_detectors, num_dem_errors=num_dem,
                         num_shards=num_shards)

    # ------------------------------------------------------------------
    # Patch-sample tasks
    # ------------------------------------------------------------------
    def sample_patches(self, task: PatchSampleTask, *,
                       seed: Seed = None) -> List[AdaptedPatch]:
        """Draw defective patches; deterministic in ``max_workers`` (see tasks).

        Workers return accepted *defect sets* (JSON-able coordinates); the
        adapted patches are rebuilt in the parent so nothing heavyweight
        crosses the process boundary or lands in the cache.
        """
        fp = seed_fingerprint(seed)
        key = None
        if self._cache is not None and fp is not None:
            body = {"task": task.content_hash(), "seed": [list(fp[0]), list(fp[1])]}
            key = hashlib.sha256(canonical_json(body).encode()).hexdigest()
            record = self._cache.get(key)
            if record is not None and record.get("task_hash") == task.content_hash():
                try:
                    return self._rebuild_patches(task, record["accepted"])
                except (KeyError, TypeError, ValueError):
                    pass

        accepted = self._sample_patch_specs(task, fp)
        if key is not None:
            self._cache.put(key, {
                "kind": task.kind,
                "task_hash": task.content_hash(),
                "task": task.payload(),
                "accepted": [[idx, [list(q) for q in qubits],
                              [[list(a), list(b)] for a, b in links]]
                             for idx, qubits, links in accepted],
            })
        return self._rebuild_patches(task, accepted)

    def _sample_patch_specs(self, task: PatchSampleTask, fp) -> list:
        """First ``num_patches`` acceptances in attempt-index order."""
        max_attempts = task.max_attempts
        # Block = contiguous attempt range; sized so one wave of blocks
        # plausibly yields the whole batch while still splitting across the
        # pool.  Purely a throughput knob - results only depend on indices.
        block = max(1, min(64, (task.num_patches + 1) // 2 + 1))
        wave_blocks = max(2 * self.config.max_workers, 2)
        accepted: list = []
        start = 0
        while start < max_attempts and len(accepted) < task.num_patches:
            stops = []
            s = start
            for _ in range(wave_blocks):
                if s >= max_attempts:
                    break
                e = min(s + block, max_attempts)
                stops.append((s, e))
                s = e
            outs = self.starmap(
                _run_patch_attempts,
                [(task, fp, a, b) for a, b in stops],
            )
            for out in outs:
                accepted.extend(out)
            start = s
        accepted.sort(key=lambda item: item[0])
        return accepted[: task.num_patches]

    @staticmethod
    def _rebuild_patches(task: PatchSampleTask, accepted) -> List[AdaptedPatch]:
        from ..core.adaptation import adapt_patch
        from ..noise.fabrication import DefectSet

        layout = task.layout()
        patches = []
        for _idx, qubits, links in accepted:
            defects = DefectSet.of(qubits=[tuple(q) for q in qubits],
                                   links=[(tuple(a), tuple(b)) for a, b in links])
            patches.append(adapt_patch(layout, defects))
        return patches


# ----------------------------------------------------------------------
# Process-wide default engine (configured from the environment)
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The engine used when drivers are not handed one explicitly.

    Configured once per process from ``REPRO_WORKERS`` / ``REPRO_CACHE`` /
    ``REPRO_SHARD_SIZE``; with no environment overrides it is a serial,
    cache-less engine whose numbers match the pre-engine code paths.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine(EngineConfig.from_env())
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> None:
    """Install (or with ``None``, reset) the process-wide default engine."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
